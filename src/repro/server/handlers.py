"""Route handlers: the REST surface over an :class:`~repro.lms.lms.Lms`.

Each handler is a plain function ``(ctx, params, body, query) ->
payload | (status, payload)`` — no HTTP types leak in; the app layer
owns sockets, headers, and error rendering.  The full route table lives
in :func:`build_router`; ``docs/server.md`` documents every endpoint
with its JSON schema.

Handlers never lock explicitly: the :class:`Lms` itself is
concurrency-safe (every public method takes ``lms.lock``), so a handler
is free to make several LMS calls — the only multi-call sequences here
are read-only.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional
from urllib.parse import parse_qs, urlencode

from repro import obs
from repro.bank.exambank import exam_from_record, exam_to_record
from repro.core.export import report_to_dict
from repro.lms.learners import Learner
from repro.lms.lms import Lms
from repro.server.errors import ApiError
from repro.server.router import Router
from repro.server.serialize import (
    BodySpec,
    analysis_to_dict,
    graded_to_dict,
    learner_to_dict,
    scored_to_dict,
)

__all__ = ["ServerContext", "build_router"]


@dataclass
class ServerContext:
    """What every handler can reach: the LMS and the server's registry."""

    lms: Lms
    registry: "obs.Registry" = field(default_factory=lambda: obs.Registry())
    started_at: float = field(default_factory=time.time)
    #: filled by the app layer so /metrics can report live saturation
    in_flight: Optional[object] = None
    #: filled by the app layer when periodic snapshotting is configured
    snapshot: Optional[object] = None
    #: filled by the app layer when a WAL is configured: a zero-arg
    #: callable running one checkpoint pass (POST /admin/checkpoint)
    checkpoint: Optional[object] = None
    #: filled by the app layer when a WAL is configured: a zero-arg
    #: callable returning journal/checkpoint stats for /metrics
    store_info: Optional[object] = None
    #: hard cap on answers per ``answers:batch`` request (413 above it)
    max_batch_answers: int = 500
    #: the worker's :class:`~repro.cluster.context.ClusterContext` in a
    #: sharded deployment; None means the classic single process.
    #: Cohort-level handlers (analysis, results, roster) scatter-gather
    #: across shards when this is set.
    cluster: Optional[object] = None
    #: the :class:`~repro.readmodel.service.ReadModelService` behind the
    #: ``/admin/analytics`` surface; None when ``--readmodel`` is off
    readmodel: Optional[object] = None
    #: filled by the app layer when a WAL is configured: a zero-arg
    #: callable scanning the calibration snapshot directory and
    #: hot-swapping any newer parameter sets (POST /admin/calibration/
    #: reload); None without durable state
    calibration: Optional[object] = None

    def uptime_seconds(self) -> float:
        """Seconds since the context (≈ server) came up."""
        return time.time() - self.started_at


# -- meta ---------------------------------------------------------------------


def _healthz(ctx: ServerContext, params, body, query):
    return {
        "status": "ok",
        "uptime_seconds": round(ctx.uptime_seconds(), 3),
        "exams_offered": len(ctx.lms.offered_exams()),
    }


def _metrics(ctx: ServerContext, params, body, query):
    snapshot = ctx.registry.snapshot()
    payload = {
        "uptime_seconds": round(ctx.uptime_seconds(), 3),
        "counters": snapshot["counters"],
        "gauges": snapshot["gauges"],
        "monitor": ctx.lms.monitor.metrics(),
        "locks": ctx.lms.lock_stats.snapshot(),
    }
    if ctx.in_flight is not None:
        payload["in_flight"] = ctx.in_flight()
    if ctx.store_info is not None:
        payload["store"] = ctx.store_info()
    if ctx.readmodel is not None:
        payload["readmodel"] = ctx.readmodel.info()
    if ctx.cluster is not None:
        payload["cluster"] = ctx.cluster.describe()
    return payload


# -- catalog ------------------------------------------------------------------

_OFFER_SPEC = BodySpec(
    required={"exam_id": str, "title": str, "items": list},
    optional={
        "display_type": str,
        "time_limit_seconds": object,
        "resumable": bool,
        "groups": list,
        "adaptive": dict,
    },
)


def _offer_exam(ctx: ServerContext, params, body, query):
    exam = exam_from_record(_OFFER_SPEC.validate(body))
    ctx.lms.offer_exam(exam)
    if ctx.cluster is not None:
        # the catalog is replicated: every shard must know the exam
        # before its learners' requests arrive.  Peers already holding
        # it answer 409, which broadcast() counts as success — offers
        # are idempotent, so a retried broadcast converges.
        import json as _json

        ctx.cluster.broadcast(
            "POST", "/internal/exams", _json.dumps(body).encode("utf-8")
        )
    return 201, {"exam_id": exam.exam_id, "items": len(exam.items)}


def _offer_exam_local(ctx: ServerContext, params, body, query):
    """The broadcast leg of an offer: apply here, never re-broadcast."""
    exam = exam_from_record(_OFFER_SPEC.validate(body))
    ctx.lms.offer_exam(exam)
    return 201, {"exam_id": exam.exam_id, "items": len(exam.items)}


def _list_exams(ctx: ServerContext, params, body, query):
    return {"exams": ctx.lms.offered_exams()}


def _get_exam(ctx: ServerContext, params, body, query):
    return exam_to_record(ctx.lms.exam(params["exam_id"]))


# -- learners & enrollment ----------------------------------------------------

_REGISTER_SPEC = BodySpec(
    required={"learner_id": str},
    optional={"name": str, "email": str},
)


def _register_learner(ctx: ServerContext, params, body, query):
    body = _REGISTER_SPEC.validate(body)
    learner = Learner(
        learner_id=body["learner_id"],
        name=str(body.get("name", "")),
        email=str(body.get("email", "")),
    )
    ctx.lms.register_learner(learner)
    return 201, {"learner_id": learner.learner_id}


def _get_learner(ctx: ServerContext, params, body, query):
    return learner_to_dict(ctx.lms.learners.get(params["learner_id"]))


_ENROLL_SPEC = BodySpec(required={"learner_id": str})


def _enroll(ctx: ServerContext, params, body, query):
    body = _ENROLL_SPEC.validate(body)
    ctx.lms.enroll(body["learner_id"], params["exam_id"])
    return 201, {
        "learner_id": body["learner_id"],
        "exam_id": params["exam_id"],
    }


def _roster(ctx: ServerContext, params, body, query):
    exam_id = params["exam_id"]
    ctx.lms.exam(exam_id)  # 404 for unknown exams, not an empty roster
    enrolled = ctx.lms.enrolled(exam_id)
    if ctx.cluster is not None:
        # each shard only knows its own learners: union the fleet
        merged = set(enrolled)
        for partial in ctx.cluster.gather(
            f"/internal/exams/{exam_id}/enrollments:local"
        ):
            merged.update(partial["enrolled"])
        enrolled = sorted(merged)
    return {"exam_id": exam_id, "enrolled": enrolled}


def _roster_local(ctx: ServerContext, params, body, query):
    """One shard's slice of the roster (the gather leg of ``_roster``)."""
    exam_id = params["exam_id"]
    ctx.lms.exam(exam_id)
    return {"exam_id": exam_id, "enrolled": ctx.lms.enrolled(exam_id)}


# -- sitting lifecycle --------------------------------------------------------


def _start(ctx: ServerContext, params, body, query):
    sitting = ctx.lms.start_exam(params["learner_id"], params["exam_id"])
    return 201, {
        "learner_id": sitting.learner_id,
        "exam_id": sitting.exam_id,
        "state": sitting.session.state.value,
        "item_order": list(sitting.item_order),
        "time_limit_seconds": sitting.session.exam.time_limit_seconds,
    }


_ANSWER_SPEC = BodySpec(required={"item_id": str, "response": object})


def _answer(ctx: ServerContext, params, body, query):
    body = _ANSWER_SPEC.validate(body)
    scored = ctx.lms.answer(
        params["learner_id"],
        params["exam_id"],
        body["item_id"],
        body["response"],
    )
    return {"item_id": body["item_id"], "scored": scored_to_dict(scored)}


_BATCH_SPEC = BodySpec(
    required={"answers": list},
    optional={"submit": bool},
    elements={"answers": _ANSWER_SPEC},
)


def _answers_batch(ctx: ServerContext, params, body, query):
    """K answers in one request — and optionally the submit too.

    All-or-nothing: the first invalid answer rejects the whole batch
    with a 4xx naming its index (``answers[i]``), and nothing — not the
    sitting, not the journal — is touched.  With ``"submit": true`` the
    sitting is graded in the same critical section and the grade rides
    the same durable journal append (the whole-sitting variant).
    """
    body = _BATCH_SPEC.validate(body)
    answers = body["answers"]
    if len(answers) > ctx.max_batch_answers:
        raise ApiError(
            413,
            "payload_too_large",
            f"batch of {len(answers)} answers exceeds the per-request "
            f"limit of {ctx.max_batch_answers}",
        )
    scored, graded = ctx.lms.answer_batch(
        params["learner_id"],
        params["exam_id"],
        [(entry["item_id"], entry["response"]) for entry in answers],
        submit=bool(body.get("submit", False)),
    )
    payload = {
        "count": len(scored),
        "scored": [
            {"item_id": entry["item_id"], "scored": scored_to_dict(one)}
            for entry, one in zip(answers, scored)
        ],
        "submitted": graded is not None,
    }
    if graded is not None:
        payload["graded"] = graded_to_dict(graded)
    return payload


def _sitting_status(ctx: ServerContext, params, body, query):
    sitting = ctx.lms.sitting(params["learner_id"], params["exam_id"])
    session = sitting.session
    return {
        "learner_id": sitting.learner_id,
        "exam_id": sitting.exam_id,
        "state": session.state.value,
        "answered": session.answered_item_ids(),
        "elapsed_seconds": session.elapsed_seconds(),
        "remaining_seconds": session.remaining_seconds(),
    }


def _next_item(ctx: ServerContext, params, body, query):
    """The adaptive policy's choice for this sitting.

    Pure table lookup on the hot path (no IRT evaluation); 409s for
    exams without an adaptive policy.  ``done: true`` with a ``reason``
    means the stopping rules fired — the client should submit.
    """
    payload = ctx.lms.next_item(params["learner_id"], params["exam_id"])
    payload["learner_id"] = params["learner_id"]
    payload["exam_id"] = params["exam_id"]
    return payload


def _suspend(ctx: ServerContext, params, body, query):
    ctx.lms.suspend(params["learner_id"], params["exam_id"])
    return {"state": "suspended"}


def _resume(ctx: ServerContext, params, body, query):
    ctx.lms.resume(params["learner_id"], params["exam_id"])
    return {"state": "in_progress"}


def _submit(ctx: ServerContext, params, body, query):
    graded = ctx.lms.submit(params["learner_id"], params["exam_id"])
    return graded_to_dict(graded)


# -- results & analysis -------------------------------------------------------


def _results(ctx: ServerContext, params, body, query):
    exam_id = params["exam_id"]
    ctx.lms.exam(exam_id)
    results = [
        graded_to_dict(graded) for graded in ctx.lms.results_for(exam_id)
    ]
    if ctx.cluster is not None:
        # per-shard lists are in local submission order; the merged view
        # is put in canonical (learner id) order so it is a pure
        # function of who submitted, not of shard layout
        for partial in ctx.cluster.gather(
            f"/internal/exams/{exam_id}/results:local"
        ):
            results.extend(partial["results"])
        results.sort(key=lambda graded: graded["learner_id"])
    return {"exam_id": exam_id, "results": results}


def _results_local(ctx: ServerContext, params, body, query):
    """One shard's graded sittings (the gather leg of ``_results``)."""
    exam_id = params["exam_id"]
    ctx.lms.exam(exam_id)
    return {
        "exam_id": exam_id,
        "results": [
            graded_to_dict(graded) for graded in ctx.lms.results_for(exam_id)
        ],
    }


def _analysis(ctx: ServerContext, params, body, query):
    exam_id = params["exam_id"]
    if ctx.cluster is None:
        return analysis_to_dict(ctx.lms.live_analysis(exam_id))
    # scatter-gather: every shard exports its warm columnar partial;
    # the merge (canonical learner order) analyzes bit-identically to a
    # single process that held the whole cohort
    from repro.core.columnar import merge_partials

    exam = ctx.lms.exam(exam_id)
    partials = [ctx.lms.analysis_partial(exam_id)]
    partials.extend(
        ctx.cluster.gather(f"/internal/exams/{exam_id}/analysis:partial")
    )
    matrix = merge_partials(exam.question_specs(), partials)
    return analysis_to_dict(matrix.analyze())


def _analysis_partial(ctx: ServerContext, params, body, query):
    """This shard's columnar partial (the gather leg of ``_analysis``)."""
    return ctx.lms.analysis_partial(params["exam_id"])


def _report(ctx: ServerContext, params, body, query):
    if ctx.cluster is not None:
        raise ApiError(
            501,
            "not_implemented",
            "the full report is not yet available in sharded mode; "
            "use /exams/{exam_id}/analysis (scatter-gathered) instead",
        )
    return report_to_dict(ctx.lms.report_for(params["exam_id"]))


def _monitor_metrics(ctx: ServerContext, params, body, query):
    return ctx.lms.monitor.metrics()


# -- admin --------------------------------------------------------------------


def _snapshot_now(ctx: ServerContext, params, body, query):
    if ctx.snapshot is None:
        raise ApiError(
            409,
            "invalid_state",
            "server was started without a snapshot path",
        )
    path = ctx.snapshot()
    return {"snapshot": str(path)}


def _checkpoint_payload(result) -> Dict[str, object]:
    return {
        "checkpoint": str(result.path),
        "covered_lsn": result.covered_lsn,
        "retired_segments": [
            path.name for path in result.retired_segments
        ],
        "pruned_checkpoints": [
            path.name for path in result.pruned_checkpoints
        ],
    }


def _checkpoint_now(ctx: ServerContext, params, body, query):
    if ctx.checkpoint is None:
        raise ApiError(
            409,
            "invalid_state",
            "server was started without a WAL directory (--wal-dir)",
        )
    result = ctx.checkpoint()
    payload = _checkpoint_payload(result)
    if ctx.cluster is not None:
        # every shard compacts its own WAL; the admin call fans out
        payload["peers_checkpointed"] = ctx.cluster.broadcast(
            "POST", "/internal/admin/checkpoint"
        )
    return payload


def _checkpoint_local(ctx: ServerContext, params, body, query):
    """The broadcast leg of a cluster checkpoint: this shard only."""
    if ctx.checkpoint is None:
        raise ApiError(
            409,
            "invalid_state",
            "server was started without a WAL directory (--wal-dir)",
        )
    return _checkpoint_payload(ctx.checkpoint())


def _calibration_reload(ctx: ServerContext, params, body, query):
    """Re-scan the calibration snapshot directory and hot-swap any exam
    whose newest persisted parameter set is newer than the installed one
    (the on-demand flavor of the boot-time pickup)."""
    if ctx.calibration is None:
        raise ApiError(
            409,
            "invalid_state",
            "server was started without a WAL directory (--wal-dir), "
            "so there is no calibration snapshot directory to reload",
        )
    return ctx.calibration()


# -- analytics (the read-model tier) ------------------------------------------


def _require_readmodel(ctx: ServerContext):
    if ctx.readmodel is None:
        raise ApiError(
            409,
            "invalid_state",
            "read models are not enabled (serve --readmodel)",
        )
    return ctx.readmodel


def _as_of_target(query: str):
    """``(lsn, ts)`` from an ``as_of_lsn=``/``as_of_ts=`` query string."""
    options = parse_qs(query or "")
    lsn = options.get("as_of_lsn", [None])[0]
    ts = options.get("as_of_ts", [None])[0]
    if lsn is not None and ts is not None:
        raise ApiError(
            400, "bad_request", "pass as_of_lsn or as_of_ts, not both"
        )
    try:
        return (
            int(lsn) if lsn is not None else None,
            float(ts) if ts is not None else None,
        )
    except ValueError:
        raise ApiError(
            400, "bad_request", "as_of_lsn/as_of_ts must be numeric"
        ) from None


def _readmodel_at(service, lsn, ts):
    """The service's live model, or a bounded time-travel fold."""
    if lsn is None and ts is None:
        service.sync()
        return service.model, None
    from repro.readmodel.checkpoint import as_of

    model, replayed = as_of(service.directory, lsn=lsn, ts=ts)
    return model, {"applied_lsn": model.applied_lsn, "replayed": replayed}


def _analytics_overview(ctx: ServerContext, params, body, query):
    payload = _analytics_overview_local(ctx, params, body, query)
    if ctx.cluster is None:
        return payload
    shards = [payload]
    shards.extend(ctx.cluster.gather("/internal/admin/analytics:overview"))
    shards.sort(key=lambda entry: entry["shard"])
    merged = {
        "applied_events": sum(s["applied_events"] for s in shards),
        "learners": sum(s["learners"] for s in shards),
        "open_sittings": sum(s["open_sittings"] for s in shards),
        "events": {},
        "exams": {},
        "shards": [
            {
                "shard": s["shard"],
                "applied_lsn": s["applied_lsn"],
                "lag": s["follower"].get("lag"),
            }
            for s in shards
        ],
    }
    for shard in shards:
        for type_, count in shard["events"].items():
            merged["events"][type_] = merged["events"].get(type_, 0) + count
        for entry in shard["exams"]:
            rollup = merged["exams"].setdefault(
                entry["exam_id"],
                {"exam_id": entry["exam_id"], "submits": 0, "enrolled": 0},
            )
            rollup["submits"] += entry["submits"]
            rollup["enrolled"] += entry["enrolled"]
    merged["events"] = dict(sorted(merged["events"].items()))
    merged["exams"] = [
        merged["exams"][exam_id] for exam_id in sorted(merged["exams"])
    ]
    return merged


def _analytics_overview_local(ctx: ServerContext, params, body, query):
    """One process's fold state (also the gather leg of the overview)."""
    service = _require_readmodel(ctx)
    service.sync()
    with service.lock:
        payload = service.model.overview()
    payload["follower"] = service.info()
    payload["shard"] = ctx.cluster.shard if ctx.cluster is not None else ""
    return payload


def _analytics_summary(ctx: ServerContext, params, body, query):
    payload = _analytics_summary_local(ctx, params, body, query)
    if ctx.cluster is None:
        return payload
    from repro.readmodel.model import merge_summaries

    exam_id = params["exam_id"]
    summaries = [payload]
    summaries.extend(
        ctx.cluster.gather(
            f"/internal/admin/analytics/{exam_id}/summary:local"
        )
    )
    return merge_summaries(summaries)


def _analytics_summary_local(ctx: ServerContext, params, body, query):
    """One shard's exam aggregates (the gather leg of the summary)."""
    service = _require_readmodel(ctx)
    service.sync()
    with service.lock:
        return service.model.exam(params["exam_id"]).summary()


def _analytics_analysis(ctx: ServerContext, params, body, query):
    """The read-model cohort analysis, bit-identical to the live
    ``/exams/{exam_id}/analysis`` over the same journaled history.

    ``?as_of_lsn=N`` / ``?as_of_ts=T`` time-travels: the answer is the
    fold at that journal position, built from the nearest read-model
    checkpoint plus a bounded suffix replay.  LSNs are per-shard
    coordinates, so a sharded deployment only accepts ``as_of_ts``
    (one wall clock spans the fleet).
    """
    service = _require_readmodel(ctx)
    exam_id = params["exam_id"]
    lsn, ts = _as_of_target(query)
    if ctx.cluster is None:
        model, as_of_info = _readmodel_at(service, lsn, ts)
        with service.lock:
            payload = analysis_to_dict(model.exam(exam_id).analysis())
        if as_of_info is not None:
            return {"as_of": as_of_info, "analysis": payload}
        return payload
    if lsn is not None:
        raise ApiError(
            400,
            "bad_request",
            "as_of_lsn is a per-shard coordinate; use as_of_ts "
            "against a cluster",
        )
    from repro.core.columnar import merge_partials

    model, as_of_info = _readmodel_at(service, None, ts)
    with service.lock:
        exam_model = model.exam(exam_id)
        exam = exam_model.exam
        partials = [exam_model.partial()]
    # urlencode, not an f-string: a float's repr can carry '+' (1e+18),
    # which would decode to a space on the receiving shard
    suffix = "?" + urlencode({"as_of_ts": ts}) if ts is not None else ""
    partials.extend(
        ctx.cluster.gather(
            f"/internal/admin/analytics/{exam_id}/analysis:partial{suffix}"
        )
    )
    matrix = merge_partials(exam.question_specs(), partials)
    payload = analysis_to_dict(matrix.analyze())
    if as_of_info is not None:
        return {"as_of": as_of_info, "analysis": payload}
    return payload


def _analytics_partial(ctx: ServerContext, params, body, query):
    """This shard's read-model partial (the gather leg of the analysis)."""
    service = _require_readmodel(ctx)
    lsn, ts = _as_of_target(query)
    model, _ = _readmodel_at(service, lsn, ts)
    with service.lock:
        return model.exam(params["exam_id"]).partial()


def _analytics_blueprint(ctx: ServerContext, params, body, query):
    payload = _analytics_summary(ctx, params, body, query)
    return {
        "exam_id": payload["exam_id"],
        "blueprint": payload["blueprint"],
    }


def _analytics_spec_table(ctx: ServerContext, params, body, query):
    """The static concept × level aggregate (replicated catalog: any
    shard's copy is the fleet's)."""
    service = _require_readmodel(ctx)
    service.sync()
    with service.lock:
        payload = service.model.exam(params["exam_id"]).spec_table()
    payload["exam_id"] = params["exam_id"]
    return payload


# -- cluster ------------------------------------------------------------------


def _shard_lsns(ctx: ServerContext) -> Dict[str, object]:
    """One shard's WAL coordinates for the topology payload."""
    payload: Dict[str, object] = {
        "shard": ctx.cluster.shard if ctx.cluster is not None else ""
    }
    if ctx.store_info is not None:
        info = ctx.store_info()
        payload["last_lsn"] = info.get("last_lsn")
        payload["durable_lsn"] = info.get("durable_lsn")
    if ctx.readmodel is not None:
        payload["readmodel_lsn"] = ctx.readmodel.info()["applied_lsn"]
    return payload


def _topology_local(ctx: ServerContext, params, body, query):
    """This worker's LSN coordinates (the gather leg of the topology)."""
    return _shard_lsns(ctx)


def _topology(ctx: ServerContext, params, body, query):
    if ctx.cluster is None:
        raise ApiError(
            409,
            "invalid_state",
            "this server is not part of a cluster (serve --workers N)",
        )
    payload = ctx.cluster.describe()
    local = _shard_lsns(ctx)
    lsns = {local["shard"]: local}
    for peer in ctx.cluster.gather("/internal/cluster/topology:local"):
        lsns[peer["shard"]] = peer
    for entry in payload["shards"]:
        info = lsns.get(entry["shard"])
        if info is not None:
            for key in ("last_lsn", "durable_lsn", "readmodel_lsn"):
                if key in info:
                    entry[key] = info[key]
    return payload


def build_router() -> Router:
    """The service's full route table."""
    router = Router()
    router.add("GET", "/healthz", _healthz, "healthz")
    router.add("GET", "/metrics", _metrics, "metrics")
    router.add("GET", "/exams", _list_exams, "exams.list")
    router.add("POST", "/exams", _offer_exam, "exams.offer")
    router.add("GET", "/exams/{exam_id}", _get_exam, "exams.get")
    router.add("POST", "/learners", _register_learner, "learners.register")
    router.add("GET", "/learners/{learner_id}", _get_learner, "learners.get")
    router.add(
        "POST", "/exams/{exam_id}/enrollments", _enroll, "enrollments.create"
    )
    router.add(
        "GET", "/exams/{exam_id}/enrollments", _roster, "enrollments.list"
    )
    sitting = "/exams/{exam_id}/sittings/{learner_id}"
    router.add("POST", sitting + "/start", _start, "sittings.start")
    router.add("POST", sitting + "/answer", _answer, "sittings.answer")
    router.add(
        "POST",
        sitting + "/answers:batch",
        _answers_batch,
        "sittings.answers_batch",
    )
    router.add(
        "GET", sitting + "/next-item", _next_item, "sittings.next_item"
    )
    router.add("POST", sitting + "/suspend", _suspend, "sittings.suspend")
    router.add("POST", sitting + "/resume", _resume, "sittings.resume")
    router.add("POST", sitting + "/submit", _submit, "sittings.submit")
    router.add("GET", sitting, _sitting_status, "sittings.status")
    router.add("GET", "/exams/{exam_id}/results", _results, "results")
    router.add("GET", "/exams/{exam_id}/analysis", _analysis, "analysis")
    router.add("GET", "/exams/{exam_id}/report", _report, "report")
    router.add(
        "GET", "/monitor/metrics", _monitor_metrics, "monitor.metrics"
    )
    router.add("POST", "/admin/snapshot", _snapshot_now, "admin.snapshot")
    router.add(
        "POST", "/admin/checkpoint", _checkpoint_now, "admin.checkpoint"
    )
    router.add(
        "POST",
        "/admin/calibration/reload",
        _calibration_reload,
        "admin.calibration_reload",
    )
    # the read-model analytics surface (read-only; 409 without
    # --readmodel).  Answers come from the journal-fed fold, never from
    # the live LMS, so the cost is O(aggregate) regardless of history.
    router.add(
        "GET", "/admin/analytics", _analytics_overview, "analytics.overview"
    )
    analytics = "/admin/analytics/exams/{exam_id}"
    router.add("GET", analytics, _analytics_summary, "analytics.summary")
    router.add(
        "GET",
        analytics + "/analysis",
        _analytics_analysis,
        "analytics.analysis",
    )
    router.add(
        "GET",
        analytics + "/blueprint",
        _analytics_blueprint,
        "analytics.blueprint",
    )
    router.add(
        "GET",
        analytics + "/spec-table",
        _analytics_spec_table,
        "analytics.spec_table",
    )
    # cluster-internal peer routes: the gather/broadcast legs of the
    # scatter-gather handlers above.  They carry no learner affinity
    # (never proxied) and never fan out themselves — that is what keeps
    # a scatter from recursing.  Harmless on a single server too.
    router.add("GET", "/cluster/topology", _topology, "cluster.topology")
    router.add(
        "GET",
        "/internal/exams/{exam_id}/analysis:partial",
        _analysis_partial,
        "internal.analysis_partial",
    )
    router.add(
        "GET",
        "/internal/exams/{exam_id}/results:local",
        _results_local,
        "internal.results_local",
    )
    router.add(
        "GET",
        "/internal/exams/{exam_id}/enrollments:local",
        _roster_local,
        "internal.roster_local",
    )
    router.add(
        "POST", "/internal/exams", _offer_exam_local, "internal.offer"
    )
    router.add(
        "POST",
        "/internal/admin/checkpoint",
        _checkpoint_local,
        "internal.checkpoint",
    )
    router.add(
        "GET",
        "/internal/admin/analytics:overview",
        _analytics_overview_local,
        "internal.analytics_overview",
    )
    router.add(
        "GET",
        "/internal/admin/analytics/{exam_id}/summary:local",
        _analytics_summary_local,
        "internal.analytics_summary",
    )
    router.add(
        "GET",
        "/internal/admin/analytics/{exam_id}/analysis:partial",
        _analytics_partial,
        "internal.analytics_partial",
    )
    router.add(
        "GET",
        "/internal/cluster/topology:local",
        _topology_local,
        "internal.topology_local",
    )
    return router
