"""HTTP error mapping for :mod:`repro.server`.

Every error a handler can produce becomes an :class:`ApiError` carrying
an HTTP status, a stable machine-readable ``code``, and a human
``message`` — rendered as a JSON body, never a stack trace.  Library
exceptions (:class:`~repro.core.errors.AssessmentError` subclasses) map
onto 4xx families here, so the service boundary exposes the same
taxonomy the in-process API raises:

* not-found lookups → 404;
* duplicate offers/registrations → 409 ``conflict``;
* sitting lifecycle violations (double submit, answering a closed
  sitting, resuming a non-resumable exam) → 409 ``invalid_state``;
* the exam's test-time limit expiring → 409 ``time_expired``;
* malformed response payloads / bank records → 400 ``bad_request``;
* analysis over unusable cohorts (empty, bad split) → 422
  ``unprocessable``.

Anything unrecognized becomes a 500 with a generic body; the detail goes
to the server's log hook, not the wire.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.errors import (
    AnalysisError,
    AssessmentError,
    BankError,
    DuplicateIdError,
    ItemError,
    NotFoundError,
    ResponseError,
    SessionStateError,
    TimeLimitExceeded,
)

__all__ = ["ApiError", "api_error_from_exception"]


class ApiError(Exception):
    """An HTTP-mappable request failure."""

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        retry_after: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        #: seconds for a ``Retry-After`` header (503 backpressure)
        self.retry_after = retry_after

    def body(self) -> Dict[str, object]:
        """The JSON error body the client receives."""
        return {"error": {"code": self.code, "message": self.message}}


#: exception class -> (status, code); order matters (subclasses first).
_MAPPING = (
    (NotFoundError, (404, "not_found")),
    (DuplicateIdError, (409, "conflict")),
    (TimeLimitExceeded, (409, "time_expired")),
    (SessionStateError, (409, "invalid_state")),
    (ResponseError, (400, "bad_request")),
    (ItemError, (400, "bad_request")),
    (BankError, (400, "bad_request")),
    (AnalysisError, (422, "unprocessable")),
    (AssessmentError, (400, "bad_request")),
)


def api_error_from_exception(exc: BaseException) -> ApiError:
    """Translate a library exception into its HTTP shape.

    Unknown exception types become an opaque 500 — their message is NOT
    leaked to the client (it may contain paths or internals); callers
    log the original exception separately.
    """
    if isinstance(exc, ApiError):
        return exc
    for exc_type, (status, code) in _MAPPING:
        if isinstance(exc, exc_type):
            return ApiError(status, code, str(exc))
    return ApiError(500, "internal_error", "internal server error")
