"""``repro.server`` — HTTP exam delivery and analysis over the LMS.

The paper's deployment shape (Fig. 1): learners take exams from a
browser against a web LMS while the on-line exam monitor watches.  This
package is that serving layer, dependency-free (stdlib ``http.server``):

* :class:`~repro.server.app.ExamServer` — a threaded REST service over
  one :class:`~repro.lms.lms.Lms`: offerings, enrollment, the full
  sitting lifecycle, live analysis, reports, and monitor metrics, with
  per-route observability, bounded-queue backpressure, graceful
  drain, and atomic state snapshots;
* :mod:`~repro.server.loadgen` — a load-generation client that drives
  seeded simulated cohorts (the :mod:`repro.sim` learner and
  response-time models) through the HTTP API concurrently and reports
  throughput and latency percentiles.

See ``docs/server.md`` for the endpoint table and JSON schemas, and
``mine-assess serve`` / ``mine-assess loadgen`` for the CLI front ends.
"""

from repro.server.app import ExamServer
from repro.server.errors import ApiError, api_error_from_exception
from repro.server.handlers import ServerContext, build_router
from repro.server.loadgen import LoadgenReport, run_loadgen
from repro.server.router import Route, RouteMatch, Router
from repro.server.serialize import analysis_to_dict

__all__ = [
    "ExamServer",
    "ApiError",
    "api_error_from_exception",
    "ServerContext",
    "build_router",
    "LoadgenReport",
    "run_loadgen",
    "Route",
    "RouteMatch",
    "Router",
    "analysis_to_dict",
]
