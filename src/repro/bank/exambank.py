"""The exam database (paper §5: the "problem & exam database" stores both).

:class:`ExamBank` stores assembled exams with the same CRUD discipline as
:class:`~repro.bank.itembank.ItemBank`, plus JSON persistence that reuses
the item record format of :mod:`repro.bank.storage`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterator, List

from repro.core.errors import BankError, DuplicateIdError, NotFoundError
from repro.core.metadata import DisplayType
from repro.bank.storage import item_from_record, item_to_record
from repro.exams.exam import Exam, ExamGroup

__all__ = ["ExamBank", "exam_to_record", "exam_from_record", "save_exams", "load_exams"]


class ExamBank:
    """An in-memory exam database."""

    def __init__(self) -> None:
        self._exams: Dict[str, Exam] = {}

    def add(self, exam: Exam) -> None:
        """Add a validated exam; identifiers must be unique."""
        if exam.exam_id in self._exams:
            raise DuplicateIdError(f"exam {exam.exam_id!r} already exists")
        exam.validate()
        self._exams[exam.exam_id] = exam

    def get(self, exam_id: str) -> Exam:
        """The exam with this id; NotFoundError otherwise."""
        try:
            return self._exams[exam_id]
        except KeyError:
            raise NotFoundError(f"no exam {exam_id!r} in the bank") from None

    def remove(self, exam_id: str) -> Exam:
        """Delete and return an exam."""
        try:
            return self._exams.pop(exam_id)
        except KeyError:
            raise NotFoundError(f"no exam {exam_id!r} to remove") from None

    def update(self, exam: Exam) -> None:
        """Replace an existing exam (same identifier)."""
        if exam.exam_id not in self._exams:
            raise NotFoundError(f"no exam {exam.exam_id!r} to update")
        exam.validate()
        self._exams[exam.exam_id] = exam

    def __len__(self) -> int:
        return len(self._exams)

    def __contains__(self, exam_id: str) -> bool:
        return exam_id in self._exams

    def __iter__(self) -> Iterator[Exam]:
        return iter(self._exams.values())

    def ids(self) -> List[str]:
        """Every exam id, in insertion order."""
        return list(self._exams)


def exam_to_record(exam: Exam) -> Dict[str, object]:
    """Serialize one exam (with embedded items) to a JSON record.

    The adaptive policy (when present) rides the record too, so an
    adaptive exam replicates everywhere records travel: ``offer``
    journal events, HTTP offer bodies, cluster broadcasts, snapshots.
    """
    record = {
        "exam_id": exam.exam_id,
        "title": exam.title,
        "display_type": exam.display_type.value,
        "time_limit_seconds": exam.time_limit_seconds,
        "resumable": exam.resumable,
        "items": [item_to_record(item) for item in exam.items],
        "groups": [
            {
                "name": group.name,
                "item_ids": list(group.item_ids),
                "template_name": group.template_name,
            }
            for group in exam.groups
        ],
    }
    if exam.adaptive is not None:
        record["adaptive"] = exam.adaptive.to_record()
    return record


def exam_from_record(record: Dict[str, object]) -> Exam:
    """Restore an exam from its JSON record."""
    try:
        display = DisplayType(record.get("display_type", "fixed_order"))
    except ValueError:
        raise BankError(
            f"unknown display type: {record.get('display_type')!r}"
        ) from None
    adaptive = None
    if record.get("adaptive") is not None:
        # lazy: the bank layer sits below repro.adaptive, and most exams
        # never pay for the import
        from repro.adaptive.online import AdaptivePolicy

        adaptive = AdaptivePolicy.from_record(record["adaptive"])
    exam = Exam(
        exam_id=record.get("exam_id", ""),
        title=record.get("title", ""),
        items=[item_from_record(r) for r in record.get("items", [])],
        groups=[
            ExamGroup(
                name=g["name"],
                item_ids=list(g.get("item_ids", [])),
                template_name=g.get("template_name"),
            )
            for g in record.get("groups", [])
        ],
        display_type=display,
        time_limit_seconds=record.get("time_limit_seconds"),
        resumable=bool(record.get("resumable", True)),
        adaptive=adaptive,
    )
    exam.validate()
    return exam


def save_exams(bank: ExamBank, path: "str | Path") -> None:
    """Write an exam bank to a JSON file."""
    records = [exam_to_record(exam) for exam in bank]
    Path(path).write_text(
        json.dumps({"format": "mine-exams-v1", "exams": records}, indent=2),
        encoding="utf-8",
    )


def load_exams(path: "str | Path") -> ExamBank:
    """Read an exam bank from a JSON file."""
    file_path = Path(path)
    if not file_path.exists():
        raise BankError(f"exam file does not exist: {file_path}")
    try:
        payload = json.loads(file_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise BankError(f"exam file is not valid JSON: {exc}") from exc
    if payload.get("format") != "mine-exams-v1":
        raise BankError(f"unrecognized exam format: {payload.get('format')!r}")
    bank = ExamBank()
    for record in payload.get("exams", []):
        bank.add(exam_from_record(record))
    return bank
