"""Bank-level QTI exchange (paper §2.3).

"IMS Question & Test Interoperability (Q&TI) specification allows systems
to exchange questions and tests."  This module moves whole *banks* (not
just single items) across the QTI boundary: export a bank to a zip of
QTI item XML files with a small index, and import such a zip back —
including zips produced by other MINE-compatible tools, since each item
file stands alone.
"""

from __future__ import annotations

import io
import json
import zipfile
from pathlib import Path
from typing import List, Optional

from repro.core.errors import BankError
from repro.bank.itembank import ItemBank
from repro.items.qti import item_from_qti_xml, item_to_qti_xml

__all__ = ["export_bank_qti", "import_bank_qti"]

_INDEX_FILE = "qti_index.json"


def export_bank_qti(bank: ItemBank, path: "Optional[str | Path]" = None) -> bytes:
    """Export every bank item as QTI XML inside a zip.

    The zip holds one ``items/<id>.xml`` per item plus an index listing
    the files; returns the zip bytes, optionally also written to
    ``path``.
    """
    if len(bank) == 0:
        raise BankError("cannot export an empty bank")
    buffer = io.BytesIO()
    filenames: List[str] = []
    with zipfile.ZipFile(buffer, "w", zipfile.ZIP_DEFLATED) as archive:
        for item in bank:
            filename = f"items/{item.item_id}.xml"
            archive.writestr(filename, item_to_qti_xml(item))
            filenames.append(filename)
        archive.writestr(
            _INDEX_FILE,
            json.dumps({"format": "mine-qti-v1", "items": filenames}, indent=2),
        )
    payload = buffer.getvalue()
    if path is not None:
        Path(path).write_bytes(payload)
    return payload


def import_bank_qti(data: bytes) -> ItemBank:
    """Import a bank from a QTI zip.

    Reads the index when present; otherwise imports every ``.xml`` file
    in the archive (so zips from foreign tools work too).  Item
    identifiers must be unique across the archive.
    """
    try:
        archive = zipfile.ZipFile(io.BytesIO(data))
    except zipfile.BadZipFile as exc:
        raise BankError(f"not a zip archive: {exc}") from exc
    names = archive.namelist()
    if _INDEX_FILE in names:
        try:
            index = json.loads(archive.read(_INDEX_FILE).decode("utf-8"))
        except json.JSONDecodeError as exc:
            raise BankError(f"corrupt QTI index: {exc}") from exc
        filenames = list(index.get("items", []))
        missing = [name for name in filenames if name not in names]
        if missing:
            raise BankError(f"index references missing files: {missing}")
    else:
        filenames = [name for name in names if name.endswith(".xml")]
    if not filenames:
        raise BankError("archive contains no QTI item files")
    bank = ItemBank()
    for filename in filenames:
        text = archive.read(filename).decode("utf-8")
        bank.add(item_from_qti_xml(text))
    return bank
