"""Problem search (paper §5: "They can search similar or specific subject
or related problems from problem & exam database").

:class:`Query` is a composable filter over the item bank: subject,
question style, cognition level, difficulty band (from the item's stored
Item Difficulty Index metadata), and free-text keywords over the stem.
``Query`` objects are immutable; each ``with_*`` method returns a narrowed
copy, so queries compose fluently::

    results = search(bank, Query().with_subject("sorting")
                                  .with_style(QuestionStyle.MULTIPLE_CHOICE)
                                  .with_difficulty(0.3, 0.7))
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from repro.core.cognition import CognitionLevel
from repro.core.errors import BankError
from repro.core.metadata import QuestionStyle
from repro.bank.itembank import ItemBank
from repro.items.base import Item

__all__ = ["Query", "search", "find_similar"]


@dataclass(frozen=True)
class Query:
    """An immutable conjunction of search criteria (None = don't care)."""

    subject: Optional[str] = None
    style: Optional[QuestionStyle] = None
    cognition_level: Optional[CognitionLevel] = None
    min_difficulty: Optional[float] = None
    max_difficulty: Optional[float] = None
    keywords: Tuple[str, ...] = ()

    def with_subject(self, subject: str) -> "Query":
        """Narrow to items with exactly this subject."""
        return replace(self, subject=subject)

    def with_style(self, style: QuestionStyle) -> "Query":
        """Narrow to items of one question style."""
        return replace(self, style=style)

    def with_cognition_level(self, level: CognitionLevel) -> "Query":
        """Narrow to items tagged with this Bloom level."""
        return replace(self, cognition_level=level)

    def with_difficulty(self, minimum: float, maximum: float) -> "Query":
        """Restrict to items whose stored difficulty P lies in
        [minimum, maximum].  Items without a recorded difficulty never
        match a difficulty-constrained query."""
        if not 0.0 <= minimum <= maximum <= 1.0:
            raise BankError(
                f"difficulty band must satisfy 0 <= min <= max <= 1, got "
                f"[{minimum}, {maximum}]"
            )
        return replace(self, min_difficulty=minimum, max_difficulty=maximum)

    def with_keywords(self, *keywords: str) -> "Query":
        """Require every keyword in the stem or hint (case-insensitive)."""
        cleaned = tuple(keyword.strip().lower() for keyword in keywords if keyword.strip())
        return replace(self, keywords=self.keywords + cleaned)

    # -- matching -------------------------------------------------------------

    def matches(self, item: Item) -> bool:
        """True when the item satisfies every criterion."""
        if self.subject is not None and item.subject != self.subject:
            return False
        if self.style is not None and item.style() is not self.style:
            return False
        if (
            self.cognition_level is not None
            and item.cognition_level is not self.cognition_level
        ):
            return False
        if self.min_difficulty is not None or self.max_difficulty is not None:
            difficulty = (
                item.metadata.assessment.individual_test.item_difficulty_index
            )
            if difficulty is None:
                return False
            low = self.min_difficulty if self.min_difficulty is not None else 0.0
            high = self.max_difficulty if self.max_difficulty is not None else 1.0
            if not low <= difficulty <= high:
                return False
        if self.keywords:
            haystack = (item.question + " " + item.hint).lower()
            if not all(keyword in haystack for keyword in self.keywords):
                return False
        return True


def search(bank: ItemBank, query: Query) -> List[Item]:
    """All bank items matching the query, in insertion order."""
    return bank.items_matching(query.matches)


def find_similar(bank: ItemBank, item: Item, limit: int = 10) -> List[Item]:
    """Items "similar" to a given one: same subject first, then same
    style, ranked by shared stem words.

    This implements the paper's "search similar ... problems" affordance
    with a simple lexical similarity — adequate for an authoring aid.
    """
    if limit < 1:
        raise BankError(f"limit must be positive, got {limit}")
    reference_words = _stem_words(item)
    scored: List[Tuple[float, int, Item]] = []
    for position, candidate in enumerate(bank):
        if candidate.item_id == item.item_id:
            continue
        score = 0.0
        if item.subject and candidate.subject == item.subject:
            score += 2.0
        if candidate.style() is item.style():
            score += 1.0
        overlap = reference_words & _stem_words(candidate)
        if reference_words:
            score += len(overlap) / len(reference_words)
        if score > 0:
            scored.append((score, position, candidate))
    scored.sort(key=lambda entry: (-entry[0], entry[1]))
    return [candidate for _, _, candidate in scored[:limit]]


_STOP_WORDS = frozenset(
    "a an and are be by for in is it of on or the to what which".split()
)


def _stem_words(item: Item) -> frozenset:
    words = (
        word.strip(".,?!:;()[]\"'").lower() for word in item.question.split()
    )
    return frozenset(word for word in words if word and word not in _STOP_WORDS)
