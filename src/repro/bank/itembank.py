"""The problem database (paper §5: "problem & exam database").

The assessment authoring system stores problems in an internal database
that authors search for "similar or specific subject or related problems"
before editing their own.  :class:`ItemBank` is that database: CRUD with
unique identifiers, plus the query interface in
:mod:`repro.bank.search`.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List

from repro.core.errors import DuplicateIdError, NotFoundError
from repro.items.base import Item

__all__ = ["ItemBank"]


class ItemBank:
    """An in-memory problem database with unique item identifiers.

    Persistence lives in :mod:`repro.bank.storage`; the bank itself is a
    plain dictionary-backed store so tests and simulations stay fast.
    """

    def __init__(self) -> None:
        self._items: Dict[str, Item] = {}

    # -- CRUD -----------------------------------------------------------------

    def add(self, item: Item) -> None:
        """Add a validated item; identifiers must be unique."""
        if item.item_id in self._items:
            raise DuplicateIdError(
                f"item {item.item_id!r} already exists in the bank"
            )
        item.validate()
        self._items[item.item_id] = item

    def get(self, item_id: str) -> Item:
        """The item with this id; NotFoundError otherwise."""
        try:
            return self._items[item_id]
        except KeyError:
            raise NotFoundError(f"no item {item_id!r} in the bank") from None

    def update(self, item: Item) -> None:
        """Replace an existing item (same identifier)."""
        if item.item_id not in self._items:
            raise NotFoundError(f"no item {item.item_id!r} to update")
        item.validate()
        self._items[item.item_id] = item

    def remove(self, item_id: str) -> Item:
        """Delete and return an item."""
        try:
            return self._items.pop(item_id)
        except KeyError:
            raise NotFoundError(f"no item {item_id!r} to remove") from None

    def add_or_update(self, item: Item) -> None:
        """Insert or replace, validating either way."""
        item.validate()
        self._items[item.item_id] = item

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item_id: str) -> bool:
        return item_id in self._items

    def __iter__(self) -> Iterator[Item]:
        return iter(self._items.values())

    def ids(self) -> List[str]:
        """Every item id, in insertion order."""
        return list(self._items)

    def items_matching(self, predicate: Callable[[Item], bool]) -> List[Item]:
        """All items satisfying a predicate, in insertion order."""
        return [item for item in self._items.values() if predicate(item)]

    def subjects(self) -> List[str]:
        """Distinct non-empty subjects, in first-seen order."""
        seen: Dict[str, None] = {}
        for item in self._items.values():
            if item.subject:
                seen.setdefault(item.subject, None)
        return list(seen)
