"""The problem & exam database (paper §5) with search and persistence."""

from repro.bank.exambank import (
    ExamBank,
    exam_from_record,
    exam_to_record,
    load_exams,
    save_exams,
)
from repro.bank.itembank import ItemBank
from repro.bank.versioning import Revision, VersionedItemBank
from repro.bank.qti_io import export_bank_qti, import_bank_qti
from repro.bank.search import Query, find_similar, search
from repro.bank.storage import (
    item_from_record,
    item_to_record,
    load_bank,
    save_bank,
)

__all__ = [
    "VersionedItemBank",
    "Revision",
    "ItemBank",
    "ExamBank",
    "Query",
    "search",
    "find_similar",
    "export_bank_qti",
    "import_bank_qti",
    "item_to_record",
    "item_from_record",
    "save_bank",
    "load_bank",
    "exam_to_record",
    "exam_from_record",
    "save_exams",
    "load_exams",
]
