"""File persistence for the problem database.

Items are serialized to JSON documents (one list of records) so a bank
survives process restarts — the paper's system keeps its problem & exam
database on disk behind the authoring tool.  The QTI XML binding
(:mod:`repro.items.qti`) remains the *exchange* format; JSON is the
internal storage format because it round-trips the full item object
cheaply.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict

from repro.core.cognition import CognitionLevel
from repro.core.errors import BankError
from repro.core.metadata import DisplayType
from repro.bank.itembank import ItemBank
from repro.items.base import Item, Picture
from repro.items.choice import Choice, MultipleChoiceItem
from repro.items.completion import CompletionItem
from repro.items.essay import EssayItem
from repro.items.matching import MatchItem
from repro.items.questionnaire import QuestionnaireItem
from repro.items.truefalse import TrueFalseItem

__all__ = ["item_to_record", "item_from_record", "save_bank", "load_bank"]

_STYLE_TO_CLASS = {
    "multiple_choice": MultipleChoiceItem,
    "true_false": TrueFalseItem,
    "essay": EssayItem,
    "match": MatchItem,
    "completion": CompletionItem,
    "questionnaire": QuestionnaireItem,
}


def item_to_record(item: Item) -> Dict[str, object]:
    """Serialize one item to a JSON-compatible record."""
    record: Dict[str, object] = {
        "style": item.style().value,
        "item_id": item.item_id,
        "subject": item.subject,
        "hint": item.hint,
        "cognition_level": (
            item.cognition_level.name.lower()
            if item.cognition_level is not None
            else None
        ),
        "pictures": [
            {"resource": picture.resource, "x": picture.x, "y": picture.y}
            for picture in item.pictures
        ],
        "content": item.content_fields(),
        "difficulty": item.metadata.assessment.individual_test.item_difficulty_index,
        "discrimination": (
            item.metadata.assessment.individual_test.item_discrimination_index
        ),
    }
    return record


def item_from_record(record: Dict[str, object]) -> Item:
    """Restore an item from its JSON record."""
    style = record.get("style")
    cls = _STYLE_TO_CLASS.get(style)
    if cls is None:
        raise BankError(f"unknown item style in record: {style!r}")
    content = dict(record.get("content") or {})
    level_raw = record.get("cognition_level")
    common = dict(
        item_id=record.get("item_id", ""),
        question=content.pop("question", ""),
        hint=content.pop("hint", ""),
        subject=record.get("subject", ""),
        cognition_level=(
            CognitionLevel.parse(level_raw) if level_raw else None
        ),
        pictures=[
            Picture(resource=p["resource"], x=p.get("x", 0), y=p.get("y", 0))
            for p in record.get("pictures", [])
        ],
    )
    if cls is MultipleChoiceItem:
        item: Item = MultipleChoiceItem(
            choices=[
                Choice(label=o["label"], text=o["text"])
                for o in content.get("options", [])
            ],
            correct_label=content.get("correct_label", ""),
            **common,
        )
    elif cls is TrueFalseItem:
        item = TrueFalseItem(correct_value=bool(content.get("correct_value")), **common)
    elif cls is EssayItem:
        item = EssayItem(
            model_answer=content.get("model_answer", ""),
            max_points=float(content.get("max_points", 1.0)),
            min_length=int(content.get("min_length", 0)),
            **common,
        )
    elif cls is MatchItem:
        item = MatchItem(
            premises=list(content.get("premises", [])),
            options=list(content.get("options", [])),
            key=dict(content.get("key", {})),
            **common,
        )
    elif cls is CompletionItem:
        item = CompletionItem(
            accepted_answers=[list(a) for a in content.get("accepted_answers", [])],
            case_sensitive=bool(content.get("case_sensitive", False)),
            **common,
        )
    else:  # QuestionnaireItem
        item = QuestionnaireItem(
            scale=list(content.get("scale", [])),
            resumable=bool(content.get("resumable", True)),
            display_type=DisplayType(content.get("display_type", "fixed_order")),
            **common,
        )
    ind = item.metadata.assessment.individual_test
    ind.item_difficulty_index = record.get("difficulty")
    ind.item_discrimination_index = record.get("discrimination")
    item.validate()
    return item


def save_bank(bank: ItemBank, path: "str | Path") -> None:
    """Write a bank to a JSON file."""
    records = [item_to_record(item) for item in bank]
    Path(path).write_text(
        json.dumps({"format": "mine-bank-v1", "items": records}, indent=2),
        encoding="utf-8",
    )


def load_bank(path: "str | Path") -> ItemBank:
    """Read a bank from a JSON file written by :func:`save_bank`."""
    file_path = Path(path)
    if not file_path.exists():
        raise BankError(f"bank file does not exist: {file_path}")
    try:
        payload = json.loads(file_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise BankError(f"bank file is not valid JSON: {exc}") from exc
    if payload.get("format") != "mine-bank-v1":
        raise BankError(
            f"unrecognized bank format: {payload.get('format')!r}"
        )
    bank = ItemBank()
    for record in payload.get("items", []):
        bank.add(item_from_record(record))
    return bank
