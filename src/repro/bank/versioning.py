"""Item revision history.

The paper's workflow has teachers *fixing* problematic questions ("Some
of the information is useful for correcting the improper questions"),
which means an item changes over time while old exams still reference the
text learners actually saw.  :class:`VersionedItemBank` wraps the bank
with per-item revision history: every update stores the previous
revision, any revision can be recalled, and an audit trail records who
changed what and why.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.errors import NotFoundError
from repro.bank.itembank import ItemBank
from repro.bank.storage import item_from_record, item_to_record
from repro.items.base import Item

__all__ = ["Revision", "VersionedItemBank"]


@dataclass(frozen=True)
class Revision:
    """One stored revision of an item."""

    revision: int
    record: Dict[str, object]
    author: str
    note: str

    def restore(self) -> Item:
        """Materialize this revision as an item object."""
        return item_from_record(self.record)


class VersionedItemBank:
    """An :class:`ItemBank` with per-item revision history.

    The latest revision of every item lives in the inner bank (and is
    what search/assembly sees); the full history is kept here.  Revisions
    are 1-based and append-only.
    """

    def __init__(self) -> None:
        self.bank = ItemBank()
        self._history: Dict[str, List[Revision]] = {}

    # -- lifecycle ------------------------------------------------------------

    def add(self, item: Item, author: str = "", note: str = "created") -> int:
        """Add a new item as revision 1; returns the revision number."""
        self.bank.add(item)
        revision = Revision(
            revision=1, record=item_to_record(item), author=author, note=note
        )
        self._history[item.item_id] = [revision]
        return 1

    def update(self, item: Item, author: str = "", note: str = "") -> int:
        """Store a new revision of an existing item."""
        self.bank.update(item)
        history = self._history[item.item_id]
        revision = Revision(
            revision=len(history) + 1,
            record=item_to_record(item),
            author=author,
            note=note,
        )
        history.append(revision)
        return revision.revision

    def remove(self, item_id: str) -> None:
        """Remove an item; its history is retained for audit."""
        self.bank.remove(item_id)

    # -- history --------------------------------------------------------------

    def history(self, item_id: str) -> List[Revision]:
        """Every stored revision of an item, oldest first."""
        try:
            return list(self._history[item_id])
        except KeyError:
            raise NotFoundError(f"no history for item {item_id!r}") from None

    def revision(self, item_id: str, number: int) -> Revision:
        """One stored revision by its 1-based number."""
        history = self.history(item_id)
        if not 1 <= number <= len(history):
            raise NotFoundError(
                f"item {item_id!r} has revisions 1..{len(history)}, "
                f"not {number}"
            )
        return history[number - 1]

    def current_revision(self, item_id: str) -> int:
        """The newest revision number of an item."""
        return len(self.history(item_id))

    def rollback(self, item_id: str, number: int, author: str = "") -> Item:
        """Re-publish an old revision as the newest one."""
        target = self.revision(item_id, number)
        item = target.restore()
        self.update(item, author=author, note=f"rollback to r{number}")
        return item

    def audit_trail(self, item_id: str) -> List[str]:
        """Human-readable one-liner per revision."""
        return [
            f"r{revision.revision}: {revision.note}"
            + (f" ({revision.author})" if revision.author else "")
            for revision in self.history(item_id)
        ]
