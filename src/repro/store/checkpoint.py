"""Checkpointing and WAL compaction.

A write-ahead log grows without bound; the checkpoint engine bounds it.
:meth:`Checkpointer.checkpoint` writes a consistent LMS snapshot
(:func:`repro.lms.persistence.save_lms`, which includes in-flight
sittings — a checkpoint must never truncate a learner mid-exam) stamped
with the highest LSN it covers, seals the active segment, and then
**retires** every sealed segment whose records are all ``<=`` that LSN.
Recovery from the newest snapshot plus the surviving suffix reproduces
the exact live state (:func:`repro.store.recovery.recover`), so deleting
covered history is safe by construction — the compaction property tests
replay from every checkpoint a run produced and assert convergence.

The LSN is read and the snapshot collected in one critical section on
:attr:`Lms.lock` — the same lock every mutator appends under — so a
snapshot covers *exactly* the records up to its stamp, never a torn
prefix of a mutation.

Snapshots are named ``checkpoint-<lsn>.json`` next to the WAL segments;
the newest ``keep`` (default 2) are retained so one corrupted snapshot
file never strands a deployment.

Compaction is wire-format agnostic: segments are retired by the LSN in
their *name*, so after a mid-stream upgrade (JSONL v1 tail sealed,
binary v2 segments growing) the first checkpoint that covers the old
v1 files retires them exactly as it would same-format ones — the
natural path for aging a v1 directory out entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

from repro import obs
from repro.core.errors import StoreError

__all__ = [
    "Checkpointer",
    "CheckpointResult",
    "checkpoint_files",
    "latest_checkpoint",
]

_CHECKPOINT_PREFIX = "checkpoint-"
_CHECKPOINT_SUFFIX = ".json"


def _checkpoint_name(covered_lsn: int) -> str:
    return f"{_CHECKPOINT_PREFIX}{covered_lsn:020d}{_CHECKPOINT_SUFFIX}"


def _checkpoint_lsn(path: Path) -> int:
    stem = path.name[len(_CHECKPOINT_PREFIX):-len(_CHECKPOINT_SUFFIX)]
    try:
        return int(stem)
    except ValueError:
        raise StoreError(f"not a checkpoint name: {path.name}") from None


def checkpoint_files(directory: "str | Path") -> List[Path]:
    """Every checkpoint snapshot in the directory, oldest first."""
    base = Path(directory)
    if not base.is_dir():
        return []
    found = [
        path
        for path in base.iterdir()
        if path.name.startswith(_CHECKPOINT_PREFIX)
        and path.name.endswith(_CHECKPOINT_SUFFIX)
    ]
    return sorted(found, key=_checkpoint_lsn)


def latest_checkpoint(directory: "str | Path") -> Optional[Path]:
    """The newest checkpoint snapshot, or None when none exists."""
    files = checkpoint_files(directory)
    return files[-1] if files else None


@dataclass
class CheckpointResult:
    """One checkpoint pass: what was written and what it freed."""

    #: the snapshot file written
    path: Path
    #: highest journal LSN the snapshot covers
    covered_lsn: int
    #: WAL segments deleted because the snapshot covers them fully
    retired_segments: List[Path] = field(default_factory=list)
    #: older snapshot files pruned by the retention bound
    pruned_checkpoints: List[Path] = field(default_factory=list)


class Checkpointer:
    """Periodic/on-demand snapshot-and-compact for one LMS + journal."""

    def __init__(
        self,
        lms,
        journal,
        directory: "str | Path | None" = None,
        *,
        keep: int = 2,
    ) -> None:
        if keep < 1:
            raise StoreError(f"must keep at least 1 checkpoint, got {keep}")
        self.lms = lms
        self.journal = journal
        self.directory = (
            Path(directory) if directory is not None else journal.directory
        )
        self.keep = int(keep)
        self.checkpoints_taken = 0
        #: highest LSN any checkpoint this instance wrote has covered
        self.last_covered_lsn = 0

    def checkpoint(self) -> CheckpointResult:
        """Snapshot now, then retire covered segments and old snapshots."""
        from repro.lms.persistence import save_lms

        with obs.span("store.checkpoint"):
            self.directory.mkdir(parents=True, exist_ok=True)
            # one critical section: the LSN stamp and the state snapshot
            # see the same instant, so the snapshot covers exactly the
            # records up to `covered`
            with self.lms.lock:
                covered = self.journal.last_lsn
                path = self.directory / _checkpoint_name(covered)
                save_lms(self.lms, path, wal_lsn=covered)
            # seal the active segment so the *next* checkpoint can
            # retire everything written up to this one
            self.journal.rotate()
            retired = self.journal.retire_covered(covered)
            pruned = self._prune()
            self.checkpoints_taken += 1
            self.last_covered_lsn = max(self.last_covered_lsn, covered)
        obs.count("store.checkpoints")
        return CheckpointResult(
            path=path,
            covered_lsn=covered,
            retired_segments=retired,
            pruned_checkpoints=pruned,
        )

    def maybe_checkpoint(
        self, min_new_records: int = 1
    ) -> Optional[CheckpointResult]:
        """Checkpoint only if the WAL grew enough since the last one.

        Embedders (the exam server's checkpoint timer) call this on a
        cadence; a quiet LMS then never churns identical snapshots.
        """
        if self.journal.last_lsn - self.last_covered_lsn < min_new_records:
            return None
        return self.checkpoint()

    def _prune(self) -> List[Path]:
        files = checkpoint_files(self.directory)
        pruned: List[Path] = []
        for path in files[: -self.keep]:
            path.unlink()
            pruned.append(path)
        if pruned:
            obs.count("store.checkpoints.pruned", len(pruned))
        return pruned
