"""The compact binary WAL encoding (``format=2`` segments).

Version-1 segments are JSON lines — readable, but every record pays two
``json.dumps`` passes (one canonical for the CRC, one with the CRC
folded in) and the reader re-canonicalizes to verify.  Version-2
segments replace that with a length-prefixed binary layout built from
nothing but :mod:`struct` and a varint — no third-party codec:

Segment layout::

    +--------------------------------------------------+
    | header: b"MAWL" | u16 version (=2) | u16 reserved |   8 bytes
    +--------------------------------------------------+
    | record: varint body_len | u32 crc32(body) | body  |   repeated
    +--------------------------------------------------+

Record body::

    varint lsn | value(type) | value(data)

where ``value`` is the tag-prefixed encoding below.  All fixed-width
integers are little-endian; varints are unsigned LEB128 (7 bits per
byte, high bit = continuation).

Value encoding (one tag byte, then the payload)::

    0x00 null | 0x01 false | 0x02 true
    0x03 int        zigzag varint (arbitrary magnitude)
    0x04 float      8-byte IEEE-754 double, little-endian
    0x05 str        varint byte-length + UTF-8 bytes
    0x06 list       varint count + elements
    0x07 dict       varint count + (str-encoded key, value) pairs

The CRC32 covers the raw body bytes, so verification is a single
:func:`zlib.crc32` over a slice — no re-canonicalization.  A record cut
short by a crash fails the length or CRC check and marks the torn tail,
exactly like a torn JSONL line does in a v1 segment; the framing layer
(:func:`repro.store.journal.scan_segment`) auto-detects the format per
segment, so directories that mix v1 and v2 files — e.g. after a
mid-stream format upgrade — replay seamlessly.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Tuple

__all__ = [
    "SEGMENT_MAGIC",
    "SEGMENT_HEADER_LEN",
    "segment_header",
    "check_segment_header",
    "encode_varint",
    "decode_varint",
    "encode_value",
    "decode_value",
    "encode_body",
    "decode_body",
]

#: the four bytes every binary segment starts with
SEGMENT_MAGIC = b"MAWL"
#: full header: magic + u16 version + u16 reserved
SEGMENT_HEADER_LEN = 8

_VERSION = 2

_TAG_NULL = 0x00
_TAG_FALSE = 0x01
_TAG_TRUE = 0x02
_TAG_INT = 0x03
_TAG_FLOAT = 0x04
_TAG_STR = 0x05
_TAG_LIST = 0x06
_TAG_DICT = 0x07

_DOUBLE = struct.Struct("<d")


def segment_header(version: int = _VERSION) -> bytes:
    """The 8-byte header a binary segment begins with."""
    return SEGMENT_MAGIC + struct.pack("<HH", version, 0)


def check_segment_header(raw: bytes) -> None:
    """Validate a segment's leading bytes; ValueError on any defect."""
    if len(raw) < SEGMENT_HEADER_LEN:
        raise ValueError(
            f"segment header truncated ({len(raw)} of "
            f"{SEGMENT_HEADER_LEN} bytes)"
        )
    if raw[:4] != SEGMENT_MAGIC:
        raise ValueError(f"bad segment magic {raw[:4]!r}")
    (version,) = struct.unpack_from("<H", raw, 4)
    if version != _VERSION:
        raise ValueError(
            f"unsupported binary segment version {version}; "
            f"this WAL needs a newer reader"
        )


# -- varints -------------------------------------------------------------------


def encode_varint(value: int) -> bytes:
    """Unsigned LEB128."""
    if value < 0:
        raise ValueError(f"varint must be non-negative, got {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(raw: bytes, offset: int) -> Tuple[int, int]:
    """``(value, next_offset)``; ValueError when the bytes run out."""
    result = 0
    shift = 0
    while True:
        if offset >= len(raw):
            raise ValueError("varint truncated")
        byte = raw[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 70:  # > 10 continuation bytes: corrupt, not just big
            raise ValueError("varint too long")


def _zigzag(value: int) -> int:
    return (value << 1) ^ (value >> 63) if -(2**63) <= value < 2**63 else (
        (value << 1) if value >= 0 else ((-value << 1) - 1)
    )


def _encode_zigzag(value: int) -> bytes:
    # classic zigzag without a width assumption: fold sign into bit 0
    return encode_varint((value << 1) if value >= 0 else ((-value << 1) - 1))


def _decode_zigzag(raw: bytes, offset: int) -> Tuple[int, int]:
    encoded, offset = decode_varint(raw, offset)
    value = encoded >> 1
    return (-((encoded + 1) >> 1) if encoded & 1 else value), offset


# -- values --------------------------------------------------------------------


def _encode_into(out: bytearray, value: object) -> None:
    if value is None:
        out.append(_TAG_NULL)
    elif value is True:
        out.append(_TAG_TRUE)
    elif value is False:
        out.append(_TAG_FALSE)
    elif isinstance(value, int):
        out.append(_TAG_INT)
        out += _encode_zigzag(value)
    elif isinstance(value, float):
        out.append(_TAG_FLOAT)
        out += _DOUBLE.pack(value)
    elif isinstance(value, str):
        encoded = value.encode("utf-8")
        out.append(_TAG_STR)
        out += encode_varint(len(encoded))
        out += encoded
    elif isinstance(value, (list, tuple)):
        out.append(_TAG_LIST)
        out += encode_varint(len(value))
        for element in value:
            _encode_into(out, element)
    elif isinstance(value, dict):
        out.append(_TAG_DICT)
        out += encode_varint(len(value))
        for key, element in value.items():
            if not isinstance(key, str):
                raise ValueError(
                    f"dict keys must be str, got {type(key).__name__}"
                )
            encoded = key.encode("utf-8")
            out += encode_varint(len(encoded))
            out += encoded
            _encode_into(out, element)
    else:
        raise ValueError(
            f"value of type {type(value).__name__} is not journal-encodable"
        )


def encode_value(value: object) -> bytes:
    """One JSON-compatible value as tag-prefixed binary."""
    out = bytearray()
    _encode_into(out, value)
    return bytes(out)


def decode_value(raw: bytes, offset: int = 0) -> Tuple[object, int]:
    """``(value, next_offset)``; ValueError on any malformed byte."""
    if offset >= len(raw):
        raise ValueError("value truncated: no tag byte")
    tag = raw[offset]
    offset += 1
    if tag == _TAG_NULL:
        return None, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag == _TAG_INT:
        return _decode_zigzag(raw, offset)
    if tag == _TAG_FLOAT:
        if offset + 8 > len(raw):
            raise ValueError("float truncated")
        return _DOUBLE.unpack_from(raw, offset)[0], offset + 8
    if tag == _TAG_STR:
        length, offset = decode_varint(raw, offset)
        end = offset + length
        if end > len(raw):
            raise ValueError("string truncated")
        return raw[offset:end].decode("utf-8"), end
    if tag == _TAG_LIST:
        count, offset = decode_varint(raw, offset)
        items: List[object] = []
        for _ in range(count):
            element, offset = decode_value(raw, offset)
            items.append(element)
        return items, offset
    if tag == _TAG_DICT:
        count, offset = decode_varint(raw, offset)
        mapping: Dict[str, object] = {}
        for _ in range(count):
            length, offset = decode_varint(raw, offset)
            end = offset + length
            if end > len(raw):
                raise ValueError("dict key truncated")
            key = raw[offset:end].decode("utf-8")
            element, offset = decode_value(raw, end)
            mapping[key] = element
        return mapping, offset
    raise ValueError(f"unknown value tag 0x{tag:02x}")


# -- record bodies -------------------------------------------------------------


def encode_body(lsn: int, type_: str, data: Dict[str, object]) -> bytes:
    """A record body: varint lsn + value(type) + value(data)."""
    out = bytearray(encode_varint(lsn))
    _encode_into(out, type_)
    _encode_into(out, data)
    return bytes(out)


def decode_body(body: bytes) -> Tuple[int, str, Dict[str, object]]:
    """``(lsn, type, data)``; ValueError on any structural defect."""
    lsn, offset = decode_varint(body, 0)
    type_, offset = decode_value(body, offset)
    data, offset = decode_value(body, offset)
    if offset != len(body):
        raise ValueError(
            f"{len(body) - offset} trailing byte(s) after record body"
        )
    if not isinstance(lsn, int) or lsn < 1:
        raise ValueError(f"bad lsn: {lsn!r}")
    if not isinstance(type_, str) or not type_:
        raise ValueError(f"bad type: {type_!r}")
    if not isinstance(data, dict):
        raise ValueError("record data is not an object")
    return lsn, type_, data
