"""Tail-following WAL reader: the feed under the analytics read models.

:class:`JournalTailer` reads a journal directory the way ``tail -f``
reads a log file: position once at any LSN (binary-searching the
segment by its filename prefix — no decoding of prior segments), then
:meth:`poll` repeatedly (or iterate :meth:`follow`) to receive every
record appended since, **exactly once**, in LSN order.  The tailer is a
pure reader — it opens segment files read-only, keeps a byte offset
into the active one, and never touches the writer's :class:`~repro.
store.journal.Journal` instance — so it can run in the serving process
(the read-model thread) or in a completely separate one.

What it survives, by design:

* **mid-read segment rotation** — a sealed segment is drained to its
  last record, then the successor (named ``wal-<last_lsn + 1>``) is
  picked up in the same poll;
* **seal-and-continue format upgrade** — a v1 JSONL tail sealed by a
  ``format=2`` reopen is followed into the binary successor segment
  transparently (the format is re-detected per segment);
* **a torn tail** — a half-written record at the tip is *not* an
  error: the tailer holds its offset at the last whole record and
  retries, so a group-committed batch is seen exactly once, never as a
  duplicate or a mangled prefix;
* **checkpoint retirement behind it** — segments the tailer has fully
  consumed may be deleted underneath it; it re-locates by filename.
  Retirement *ahead* of its position means records it never saw are
  gone, which raises :class:`TailTruncatedError` — the caller must
  restart from a newer read-model checkpoint.
"""

from __future__ import annotations

import struct
import threading
import time
import zlib
from pathlib import Path
from typing import Iterator, List, Optional

from repro import obs
from repro.core.errors import JournalCorruptError, StoreError
from repro.store import format as binfmt
from repro.store.journal import (
    JournalRecord,
    _decode_line,
    segment_files,
    segment_first_lsn,
    segment_format,
    start_segment_index,
)

__all__ = ["JournalTailer", "TailTruncatedError", "DEFAULT_POLL_INTERVAL"]

#: how long :meth:`JournalTailer.follow` sleeps when the tip is quiet
DEFAULT_POLL_INTERVAL = 0.02

_CRC32 = struct.Struct("<I")


class TailTruncatedError(StoreError):
    """Records between the tailer's position and the oldest surviving
    segment were retired by checkpoint compaction; the follower cannot
    continue without losing history and must restart from a newer
    read-model checkpoint."""


class JournalTailer:
    """An incremental, restartable reader over a journal directory.

    ``start_lsn`` is the consumer's high-water mark: the first record
    yielded is the first with ``lsn > start_lsn``.  Not thread-safe —
    one tailer, one consumer thread (the read-model service wraps it).
    """

    def __init__(
        self,
        directory: "str | Path",
        start_lsn: int = 0,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
    ) -> None:
        self.directory = Path(directory)
        self.poll_interval = float(poll_interval)
        self._lsn = int(start_lsn)
        self._segment: Optional[Path] = None
        self._format = 2
        self._offset = 0
        #: lifetime totals
        self.records_read = 0
        self.polls = 0
        self.segments_followed = 0

    @property
    def position(self) -> int:
        """The LSN of the last record yielded (the consumer's mark)."""
        return self._lsn

    # -- the poll loop --------------------------------------------------------

    def poll(self) -> List[JournalRecord]:
        """Every record appended since the last poll, possibly empty.

        Drains across segment boundaries in one call; returns with the
        tailer parked at the current tip (or at a torn final record,
        which the next poll retries).
        """
        self.polls += 1
        records: List[JournalRecord] = []
        while True:
            if self._segment is None and not self._locate():
                break
            if not self._scan_active(records):
                break
        if records:
            self.records_read += len(records)
            obs.count("tail.records", len(records))
        return records

    def follow(
        self, stop: Optional[threading.Event] = None
    ) -> Iterator[JournalRecord]:
        """Block at the tip, yielding records as they are appended.

        Runs until ``stop`` is set (checked between polls); with no
        event, runs forever — the read-model service's thread body.
        """
        while stop is None or not stop.is_set():
            batch = self.poll()
            if batch:
                for record in batch:
                    yield record
                continue  # drain hot: no sleep while records flow
            if stop is not None:
                stop.wait(self.poll_interval)
            else:  # pragma: no cover - unbounded variant
                time.sleep(self.poll_interval)

    # -- positioning ----------------------------------------------------------

    def _locate(self) -> bool:
        """Pick the segment holding ``lsn + 1`` by filename binary
        search; False when the directory has no segments yet."""
        segments = segment_files(self.directory)
        if not segments:
            return False
        if segment_first_lsn(segments[0]) > self._lsn + 1:
            raise TailTruncatedError(
                f"records after lsn {self._lsn} were retired: the oldest "
                f"surviving segment is {segments[0].name}; restart the "
                f"follower from a newer checkpoint"
            )
        index = start_segment_index(segments, self._lsn)
        self._enter_segment(segments[index])
        return True

    def _enter_segment(self, path: Path) -> None:
        self._segment = path
        self._format = segment_format(path)
        self._offset = 0
        self.segments_followed += 1

    def _advance_if_sealed(self) -> bool:
        """Move to the successor segment when the current one is sealed
        exactly at our position; True when the tailer advanced."""
        segments = segment_files(self.directory)
        for path in segments:
            if segment_first_lsn(path) == self._lsn + 1 and (
                path != self._segment
            ):
                self._enter_segment(path)
                return True
        return False

    # -- scanning -------------------------------------------------------------

    def _scan_active(self, records: List[JournalRecord]) -> bool:
        """Decode what the active segment holds past our offset; True
        when the poll loop should spin again (more may be readable)."""
        path = self._segment
        try:
            with path.open("rb") as stream:
                stream.seek(self._offset)
                raw = stream.read()
        except FileNotFoundError:
            # retired underneath us after we drained it; re-locate (the
            # gap check in _locate catches retirement *ahead* of us)
            self._segment = None
            return True
        if self._format == 2:
            clean = self._scan_v2(raw, records)
        else:
            clean = self._scan_v1(raw, records)
        if not clean:
            # torn final record: hold position, retry on the next poll
            # (a *sealed* segment can only end torn after a crash the
            # writer has not repaired yet — waiting is correct there
            # too, since Journal.open truncates before appending more)
            return False
        # cleanly at EOF: sealed-and-rotated segments hand over here
        return self._advance_if_sealed()

    def _scan_v1(self, raw: bytes, records: List[JournalRecord]) -> bool:
        pos = 0
        while pos < len(raw):
            newline = raw.find(b"\n", pos)
            if newline < 0:
                # unterminated (torn or mid-write) final record
                self._offset += pos
                return False
            line = raw[pos:newline]
            if line:
                try:
                    record = _decode_line(line)
                except ValueError:
                    self._offset += pos
                    return False
                if record.lsn > self._lsn:
                    records.append(record)
                    self._lsn = record.lsn
            pos = newline + 1
        self._offset += pos
        return True

    def _scan_v2(self, raw: bytes, records: List[JournalRecord]) -> bool:
        pos = 0
        if self._offset == 0:
            if len(raw) < binfmt.SEGMENT_HEADER_LEN:
                return False  # header still being written
            try:
                binfmt.check_segment_header(raw)
            except ValueError as exc:
                raise JournalCorruptError(
                    f"segment {self._segment.name}: {exc}"
                ) from exc
            pos = binfmt.SEGMENT_HEADER_LEN
        while pos < len(raw):
            try:
                body_len, body_start = binfmt.decode_varint(raw, pos)
                body_start += _CRC32.size
                end = body_start + body_len
                if end > len(raw):
                    raise ValueError("record truncated")
                (crc,) = _CRC32.unpack_from(raw, body_start - _CRC32.size)
                body = raw[body_start:end]
                if zlib.crc32(body) & 0xFFFFFFFF != crc:
                    raise ValueError("crc mismatch")
                lsn, type_, data = binfmt.decode_body(body)
            except ValueError:
                self._offset += pos
                return False
            if lsn > self._lsn:
                records.append(JournalRecord(lsn=lsn, type=type_, data=data))
                self._lsn = lsn
            pos = end
        self._offset += pos
        return True
