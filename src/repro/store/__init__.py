"""``repro.store`` — the durable event journal under the LMS.

An append-only, checksummed write-ahead log plus a snapshot/compaction
engine (see ``docs/durability.md``):

* :class:`Journal` — segmented WAL with per-record CRC32 and monotonic
  LSNs, configurable fsync policy, torn-tail repair, batched appends
  with group commit, and two auto-detected wire formats (JSONL v1 and
  the compact binary v2 of :mod:`repro.store.format`);
* :mod:`repro.store.events` — one journaled event per LMS mutation,
  emitted under the LMS lock, replayed through the same public
  mutators;
* :func:`recover` — latest checkpoint + WAL suffix → an
  :class:`~repro.lms.lms.Lms` provably equal to the one that crashed;
* :class:`Checkpointer` — periodic/on-demand snapshots that retire
  fully-covered WAL segments, bounding disk without ever dropping the
  unreplayed suffix.

Resolution is lazy (PEP 562): :mod:`repro.lms.lms` imports the event
schema at module load, and the recovery side imports the LMS — laziness
is what keeps that mutual reference acyclic.
"""

from typing import TYPE_CHECKING

_EXPORTS = {
    "FSYNC_POLICIES": ("repro.store.journal", "FSYNC_POLICIES"),
    "JOURNAL_FORMATS": ("repro.store.journal", "JOURNAL_FORMATS"),
    "Journal": ("repro.store.journal", "Journal"),
    "JournalRecord": ("repro.store.journal", "JournalRecord"),
    "read_records": ("repro.store.journal", "read_records"),
    "scan_segment": ("repro.store.journal", "scan_segment"),
    "segment_files": ("repro.store.journal", "segment_files"),
    "segment_first_lsn": ("repro.store.journal", "segment_first_lsn"),
    "segment_format": ("repro.store.journal", "segment_format"),
    "start_segment_index": ("repro.store.journal", "start_segment_index"),
    "JournalTailer": ("repro.store.tail", "JournalTailer"),
    "TailTruncatedError": ("repro.store.tail", "TailTruncatedError"),
    "recover": ("repro.store.recovery", "recover"),
    "RecoveryReport": ("repro.store.recovery", "RecoveryReport"),
    "ReplayClock": ("repro.store.recovery", "ReplayClock"),
    "state_fingerprint": ("repro.store.recovery", "state_fingerprint"),
    "Checkpointer": ("repro.store.checkpoint", "Checkpointer"),
    "CheckpointResult": ("repro.store.checkpoint", "CheckpointResult"),
    "checkpoint_files": ("repro.store.checkpoint", "checkpoint_files"),
    "latest_checkpoint": ("repro.store.checkpoint", "latest_checkpoint"),
    "apply_event": ("repro.store.events", "apply_event"),
    "EVENT_TYPES": ("repro.store.events", "EVENT_TYPES"),
}

__all__ = sorted(_EXPORTS)


def __getattr__(name):
    try:
        module_name, attribute = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    value = getattr(importlib.import_module(module_name), attribute)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))


if TYPE_CHECKING:  # pragma: no cover - static-analysis eyes only
    from repro.store.checkpoint import (  # noqa: F401
        Checkpointer,
        CheckpointResult,
        checkpoint_files,
        latest_checkpoint,
    )
    from repro.store.events import EVENT_TYPES, apply_event  # noqa: F401
    from repro.store.journal import (  # noqa: F401
        FSYNC_POLICIES,
        JOURNAL_FORMATS,
        Journal,
        JournalRecord,
        read_records,
        scan_segment,
        segment_files,
        segment_first_lsn,
        segment_format,
        start_segment_index,
    )
    from repro.store.tail import (  # noqa: F401
        JournalTailer,
        TailTruncatedError,
    )
    from repro.store.recovery import (  # noqa: F401
        RecoveryReport,
        ReplayClock,
        recover,
        state_fingerprint,
    )
