"""Crash recovery: checkpoint + WAL suffix → the LMS that crashed.

:func:`recover` rebuilds an :class:`~repro.lms.lms.Lms` from a directory
of durable state: load the newest snapshot (if any), then replay every
journal record past the snapshot's covered LSN **through the same public
LMS mutators a live client drove** (:func:`repro.store.events.
apply_event`).  Replay is not a parallel deserializer that can drift
from the live code path; it *is* the live code path, re-run under a
:class:`ReplayClock` pinned to each event's recorded timestamp — so the
recovered state is bit-identical to the pre-crash LMS (the differential
property tests in ``tests/store/`` assert exactly this via
:func:`state_fingerprint`).

Idempotence / dedup: records with ``lsn <=`` the snapshot's ``wal_lsn``
are already folded into the snapshot and are skipped, so recovering
from any checkpoint plus the remaining WAL suffix converges on the same
state — the invariant that makes compaction
(:mod:`repro.store.checkpoint`) safe.

A torn tail (a record cut short by the crash) is *expected*, not
corruption: the journal reader stops at the first damaged record of the
final segment, and the report says how many bytes were dropped.  Damage
anywhere else raises
:class:`~repro.core.errors.JournalCorruptError`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.store import events as store_events
from repro.store.journal import scan_segment, segment_files

__all__ = ["ReplayClock", "RecoveryReport", "recover", "state_fingerprint"]


class ReplayClock:
    """A clock scripted by the replayer, then released to real time.

    During replay, :meth:`pin` fixes ``now()`` to the journaled
    timestamp of the event being applied (never moving backwards, so
    untimed catalog events cannot rewind it).  After the last record,
    :meth:`go_live` anchors the clock to keep ticking from the replayed
    timeline's high-water mark — the recovered LMS continues serving on
    the same timeline the crashed process was using.
    """

    def __init__(self, origin: float = 0.0) -> None:
        self._now = float(origin)
        self._base: Optional[float] = None  # set by go_live()

    def pin(self, timestamp: float) -> None:
        """Script ``now()`` for the next event (monotonic: max wins)."""
        if self._base is not None:
            raise RuntimeError("cannot pin a ReplayClock after go_live()")
        self._now = max(self._now, float(timestamp))

    def now(self) -> float:
        """The pinned timestamp, or live re-anchored time after go_live."""
        if self._base is not None:
            return self._base + time.monotonic()
        return self._now

    def go_live(self) -> None:
        """Switch from scripted to real time, continuing the timeline."""
        if self._base is None:
            self._base = self._now - time.monotonic()


@dataclass
class RecoveryReport:
    """What :func:`recover` rebuilt, and from which artifacts."""

    #: the recovered LMS, clock already live, no journal attached
    lms: object
    #: snapshot file the recovery started from (None = WAL-only replay)
    checkpoint_path: Optional[Path] = None
    #: highest LSN the snapshot covered (0 without a snapshot)
    checkpoint_lsn: int = 0
    #: journal records re-applied through the public mutators
    records_replayed: int = 0
    #: records skipped as already covered by the snapshot
    records_skipped: int = 0
    #: highest LSN seen in the journal (0 when empty)
    last_lsn: int = 0
    #: bytes dropped from the final segment's torn tail (0 = clean)
    torn_bytes: int = 0
    #: individual answers replayed via batched ``answers`` events —
    #: each such record fans out through the Lms batch fast-path, so
    #: records_replayed alone understates the replayed work
    batched_answers: int = 0

    def summary(self) -> str:
        """One human line, for the CLI and server boot log."""
        source = (
            f"checkpoint {self.checkpoint_path.name} (lsn {self.checkpoint_lsn})"
            if self.checkpoint_path is not None
            else "empty state (no checkpoint)"
        )
        torn = (
            f", dropped {self.torn_bytes} torn byte(s)"
            if self.torn_bytes
            else ""
        )
        batched = (
            f", {self.batched_answers} answer(s) via batch events"
            if self.batched_answers
            else ""
        )
        return (
            f"recovered from {source} + {self.records_replayed} WAL "
            f"record(s) (skipped {self.records_skipped} already covered, "
            f"last lsn {self.last_lsn}){batched}{torn}"
        )


def recover(
    wal_dir: "str | Path",
    checkpoint_dir: "str | Path | None" = None,
) -> RecoveryReport:
    """Rebuild the LMS from ``wal_dir``'s checkpoint + journal suffix.

    ``checkpoint_dir`` defaults to ``wal_dir`` (the
    :class:`~repro.store.checkpoint.Checkpointer` writes snapshots next
    to the segments).  The returned LMS has **no journal attached**;
    callers that will keep serving open the
    :class:`~repro.store.journal.Journal` afterwards and
    :meth:`~repro.lms.lms.Lms.attach_journal` it — attaching before
    replay would re-journal every replayed event.
    """
    # local imports: this module is reached lazily via the package
    # facade precisely so repro.lms ←→ repro.store stays acyclic
    from repro.lms.lms import Lms
    from repro.lms.persistence import load_payload, lms_from_payload
    from repro.store.checkpoint import latest_checkpoint

    wal_path = Path(wal_dir)
    checkpoint_path = latest_checkpoint(
        Path(checkpoint_dir) if checkpoint_dir is not None else wal_path
    )
    clock = ReplayClock()
    if checkpoint_path is not None:
        payload = load_payload(checkpoint_path)
        checkpoint_lsn = int(payload.get("wal_lsn", 0))
        anchor = payload.get("clock")
        if isinstance(anchor, (int, float)):
            clock.pin(float(anchor))
        lms = lms_from_payload(payload, clock=clock)
    else:
        checkpoint_lsn = 0
        lms = Lms(clock=clock)
    report = RecoveryReport(
        lms=lms,
        checkpoint_path=checkpoint_path,
        checkpoint_lsn=checkpoint_lsn,
        last_lsn=checkpoint_lsn,
    )
    for record in _journal_records(wal_path, report):
        if record.lsn <= checkpoint_lsn:
            report.records_skipped += 1
            continue
        clock.pin(store_events.event_timestamp(record.type, record.data))
        store_events.apply_event(lms, record.type, record.data)
        report.records_replayed += 1
        if record.type == "answers":
            report.batched_answers += len(record.data.get("answers", ()))
        report.last_lsn = record.lsn
    clock.go_live()
    return report


def _journal_records(wal_path: Path, report: RecoveryReport):
    """Every decodable record, LSN order; accounts the torn tail.

    Matches :func:`repro.store.journal.read_records` semantics — damage
    in a non-final segment raises, damage in the final one ends the log
    — but keeps the dropped-byte count for the report.
    """
    from repro.core.errors import JournalCorruptError

    segments = segment_files(wal_path)
    for index, segment in enumerate(segments):
        scan = scan_segment(segment)
        if scan.error is not None and index < len(segments) - 1:
            raise JournalCorruptError(
                f"segment {segment.name} is damaged mid-log "
                f"(offset {scan.valid_bytes}): {scan.error}"
            )
        if scan.error is not None:
            report.torn_bytes = scan.torn_bytes
        for record in scan.records:
            yield record


# -- differential equality ------------------------------------------------------


def _adaptive_digest(session) -> Optional[Dict[str, object]]:
    """An adaptive sitting's full observable state (None = fixed exam).

    Raw floats, not rounded: the replay property is **bit** identity of
    the item sequence and the theta/SE trajectory.
    """
    if session is None:
        return None
    return {
        "administered": list(session.administered),
        "responses": list(session.responses),
        "trajectory": [list(point) for point in session.trajectory],
        "theta": session.theta,
        "standard_error": session.standard_error,
        "next_item": session.next_item(),
        "stop_reason": session.stop_reason(),
        "table_version": session.table.version,
    }


def _cmi_digest(snapshot: Dict[str, object]) -> Dict[str, object]:
    """A CMI snapshot minus the suspend-history keys (see above)."""
    digest = dict(snapshot)
    digest.pop("suspend_data", None)
    core = digest.get("core")
    if isinstance(core, dict):
        core = dict(core)
        core.pop("exit", None)
        digest["core"] = core
    return digest


def state_fingerprint(lms) -> Dict[str, object]:
    """A canonical, comparable digest of everything the LMS serves.

    Two LMS instances with equal fingerprints are observably identical:
    catalog, enrollment, learner records, graded results, the tracking
    log, the monitor's proctoring record, every in-flight sitting
    (delivery state *and* its SCORM CMI conversation), and the §4.1
    live analysis per exam.  The crash-recovery and hypothesis tests
    compare ``state_fingerprint(recovered) == state_fingerprint(live)``
    — the acceptance bar of the durability subsystem.

    One documented exclusion: ``cmi.core.exit`` and
    ``cmi.suspend_data`` record *when* a sitting was last suspended,
    history a snapshot of a since-resumed session cannot carry (see
    ``docs/durability.md``), so they are left out of the CMI digest.
    """
    from repro.bank.exambank import exam_to_record

    from repro.core.errors import AssessmentError

    with lms.lock:
        analyses = {}
        for exam_id in lms.offered_exams():
            try:
                analysis = lms.live_analysis(exam_id)
            except AssessmentError as exc:
                # a cohort too small to analyze is itself part of the
                # state: both sides must refuse identically
                analyses[exam_id] = {"unanalyzable": str(exc)}
                continue
            analyses[exam_id] = {
                "rows": [list(q.number_row()) for q in analysis.questions],
                "signals": [s.value for s in analysis.signals],
                "scores": dict(analysis.scores),
                "high_group": list(analysis.high_group),
                "low_group": list(analysis.low_group),
            }
        return {
            "exams": [
                exam_to_record(lms.exam(e)) for e in lms.offered_exams()
            ],
            "enrollment": {
                exam_id: sorted(lms.enrolled(exam_id))
                for exam_id in lms.offered_exams()
            },
            "learners": [
                {
                    "learner_id": learner.learner_id,
                    "name": learner.name,
                    "email": learner.email,
                    "course_status": dict(learner.course_status),
                    "course_scores": dict(learner.course_scores),
                }
                for learner in lms.learners
            ],
            "results": {
                exam_id: [
                    {
                        "learner_id": sitting.learner_id,
                        "duration_seconds": sitting.duration_seconds,
                        "answer_times": list(sitting.answer_times),
                        "scores": {
                            item_id: {
                                "points": score.points,
                                "max_points": score.max_points,
                                "correct": score.correct,
                                "selected": score.selected,
                                "needs_manual_grading": (
                                    score.needs_manual_grading
                                ),
                            }
                            for item_id, score in sitting.scores.items()
                        },
                    }
                    for sitting in lms.results_for(exam_id)
                ]
                for exam_id in lms.offered_exams()
            },
            "tracking": [
                {
                    "kind": event.kind.value,
                    "learner_id": event.learner_id,
                    "course_id": event.course_id,
                    "timestamp": event.timestamp,
                    "detail": event.detail,
                }
                for event in lms.tracking
            ],
            "monitor": lms.monitor.export_state(),
            "sittings": {
                f"{learner_id}:{exam_id}": {
                    "session": sitting.session.export_state(),
                    "item_order": list(sitting.item_order),
                    "interaction_count": sitting.interaction_count,
                    "cmi": _cmi_digest(sitting.api.datamodel.snapshot()),
                    "adaptive": _adaptive_digest(sitting.adaptive),
                }
                for (learner_id, exam_id), sitting in sorted(
                    lms._sittings.items()
                )
            },
            "calibrations": {
                exam_id: {"version": version, "parameters": {
                    item_id: (params.a, params.b, params.c)
                    for item_id, params in sorted(overlay.items())
                }}
                for exam_id, (version, overlay) in sorted(
                    lms._calibrations.items()
                )
            },
            "live_analysis": analyses,
        }
