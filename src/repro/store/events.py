"""The journaled event schema: one event type per LMS mutation.

Every public :class:`~repro.lms.lms.Lms` mutator emits exactly one
event from inside the LMS lock, *after* the mutation succeeded, so the
journal's LSN order is the authoritative serialization of what happened
(the same order any later reader — recovery, recalibration, audit —
must apply).  Payloads are wire-shaped (JSON scalars and the exam-bank
record format), so a WAL is portable across processes and restarts.

Replay (:func:`apply_event`) drives the **same public mutators** a live
client would: recovery is not a parallel deserializer that can drift
from the real code path — it is the real code path, re-run.  Timestamp
fidelity comes from the recovery clock being pinned to each event's
``ts`` before the mutator runs (see :mod:`repro.store.recovery`);
everything else (presentation order, scoring, monitor frames, SCORM
CMI traffic) is deterministic given the event stream.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.core.errors import StoreError

__all__ = [
    "EVENT_TYPES",
    "apply_event",
    "offer_event",
    "register_event",
    "lifecycle_event",
    "answer_event",
    "answer_batch_event",
    "calibrate_event",
]

#: every event type a Journal written by the LMS can contain
EVENT_TYPES = (
    "offer",
    "register",
    "enroll",
    "start",
    "answer",
    "answers",
    "suspend",
    "resume",
    "submit",
    "monitor",
    "calibrate",
)


# -- builders (called by the Lms, under its lock) ------------------------------


def offer_event(exam_record: Dict[str, object]) -> Dict[str, object]:
    """An exam offering, as its bank record (self-contained replay)."""
    return {"exam": exam_record}


def register_event(
    learner_id: str, name: str, email: str
) -> Dict[str, object]:
    """A learner registration."""
    return {"learner_id": learner_id, "name": name, "email": email}


def lifecycle_event(
    learner_id: str, exam_id: str, ts: float
) -> Dict[str, object]:
    """enroll / start / suspend / resume / submit / monitor payload."""
    return {"learner_id": learner_id, "exam_id": exam_id, "ts": ts}


def answer_event(
    learner_id: str, exam_id: str, item_id: str, response: object, ts: float
) -> Dict[str, object]:
    """One recorded answer, with the wire-shaped response payload."""
    return {
        "learner_id": learner_id,
        "exam_id": exam_id,
        "item_id": item_id,
        "response": response,
        "ts": ts,
    }


def answer_batch_event(
    learner_id: str,
    exam_id: str,
    answers: "list",
    ts: float,
) -> Dict[str, object]:
    """K answers recorded as one durable unit (``answers:batch``).

    ``answers`` is a list of ``[item_id, response]`` pairs — flat pairs
    rather than K per-answer dicts, so a whole batch replays from one
    event without per-record key/dict overhead.
    """
    return {
        "learner_id": learner_id,
        "exam_id": exam_id,
        "answers": [[item_id, response] for item_id, response in answers],
        "ts": ts,
    }


def calibrate_event(
    exam_id: str,
    version: int,
    parameters: Dict[str, Dict[str, float]],
    ts: float,
) -> Dict[str, object]:
    """An adaptive-calibration hot-swap: versioned, wire-shaped 2PL/3PL
    parameters per item id (see :mod:`repro.adaptive.online`).  Replay
    rebuilds the same information table at the same point in history."""
    return {
        "exam_id": exam_id,
        "version": int(version),
        "parameters": parameters,
        "ts": ts,
    }


# -- replay --------------------------------------------------------------------


def _apply_offer(lms, data):
    from repro.bank.exambank import exam_from_record

    lms.offer_exam(exam_from_record(data["exam"]))


def _apply_register(lms, data):
    from repro.lms.learners import Learner

    lms.register_learner(
        Learner(
            learner_id=data["learner_id"],
            name=data.get("name", ""),
            email=data.get("email", ""),
        )
    )


def _apply_enroll(lms, data):
    lms.enroll(data["learner_id"], data["exam_id"])


def _apply_start(lms, data):
    lms.start_exam(data["learner_id"], data["exam_id"])


def _apply_answer(lms, data):
    lms.answer(
        data["learner_id"], data["exam_id"], data["item_id"], data["response"]
    )


def _apply_answer_batch(lms, data):
    # the recovery fast-path: one event -> K answers through the batch
    # mutator, under a single lock/validation pass
    lms.answer_batch(
        data["learner_id"],
        data["exam_id"],
        [(pair[0], pair[1]) for pair in data["answers"]],
    )


def _apply_suspend(lms, data):
    lms.suspend(data["learner_id"], data["exam_id"])


def _apply_resume(lms, data):
    lms.resume(data["learner_id"], data["exam_id"])


def _apply_submit(lms, data):
    lms.submit(data["learner_id"], data["exam_id"])


def _apply_monitor(lms, data):
    lms.capture_frame(data["learner_id"], data["exam_id"])


def _apply_calibrate(lms, data):
    from repro.adaptive.online import parameters_from_record

    lms.apply_calibration(
        data["exam_id"],
        int(data["version"]),
        parameters_from_record(data.get("parameters", {})),
    )


_APPLY: Dict[str, Callable] = {
    "offer": _apply_offer,
    "register": _apply_register,
    "enroll": _apply_enroll,
    "start": _apply_start,
    "answer": _apply_answer,
    "answers": _apply_answer_batch,
    "suspend": _apply_suspend,
    "resume": _apply_resume,
    "submit": _apply_submit,
    "monitor": _apply_monitor,
    "calibrate": _apply_calibrate,
}


def event_timestamp(type_: str, data: Dict[str, object]) -> float:
    """The event's logical timestamp (0.0 for untimed catalog events)."""
    ts = data.get("ts")
    return float(ts) if isinstance(ts, (int, float)) else 0.0


def apply_event(lms, type_: str, data: Dict[str, object]) -> None:
    """Re-apply one journaled event to an LMS via its public mutators.

    The LMS must NOT have a journal attached (recovery attaches it only
    after replay), or every replayed event would be re-journaled.
    """
    try:
        handler = _APPLY[type_]
    except KeyError:
        raise StoreError(
            f"unknown journal event type {type_!r}; "
            f"this WAL needs a newer reader"
        ) from None
    handler(lms, data)
