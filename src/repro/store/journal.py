"""The write-ahead log: a segmented, checksummed, append-only journal.

:class:`Journal` is the durability primitive under the LMS (see
``docs/durability.md``).  Each record carries a monotonically
increasing **LSN** (log sequence number) and a CRC32, so a reader can
tell a valid record from a torn or corrupted one.  The log is
**segmented**: when the active file passes ``segment_bytes`` it is
sealed and a new segment named after the next LSN begins, which is what
lets checkpointing retire history in whole files
(:mod:`repro.store.checkpoint`).

Two wire formats coexist, selected per segment by file suffix and
auto-detected on read, so a directory can mix them (old logs recover
unchanged after an upgrade):

* ``format=1`` — JSON lines (``wal-<lsn>.jsonl``): one canonical JSON
  object per line with an embedded ``crc`` field;
* ``format=2`` — compact binary (``wal-<lsn>.walb``): an 8-byte header
  (magic + version) then length-prefixed records
  (varint length + u32 CRC32 + struct-packed body; see
  :mod:`repro.store.format`).  The default for new journals.

Durability levels (``fsync`` policy):

* ``"always"`` — ``os.fsync`` after every append: survives OS/power
  loss at the cost of one disk flush per record;
* ``"interval"`` — flush to the OS on every append, ``fsync`` at most
  every ``fsync_interval_seconds``: survives process death (SIGKILL)
  with bounded data-at-risk on a machine crash;
* ``"never"`` — flush to the OS only: still SIGKILL-safe (the page
  cache holds the bytes), no protection against power loss.

Every policy flushes Python's userspace buffer per append, so a record
that was acknowledged to a caller is never lost to a killed *process* —
that invariant is what the crash-injection suite proves.

**Group commit** (``group_commit=True``) changes how the ``"always"``
policy pays for its durability: instead of one fsync per append, a
writer that finds another thread's fsync in flight waits for it to
finish and then rides the *next* one, so N concurrent writers share
O(1) flushes instead of issuing N.  An append still never returns
before its record is on disk — the coalescing moves the fsync, never
skips it.  ``group_commit_window_seconds`` optionally holds the leader
back to let more writers pile in (0 = rely on natural batching).
:meth:`append_batch` applies the same idea within one caller: K records
become one write + one flush + one fsync.

Reading tolerates a **torn tail**: a record that fails to parse or
checksum in the *final* segment marks the end of the log (everything
after it is ignored, and :meth:`Journal.open` physically truncates it).
The same failure in an earlier segment is real corruption and raises
:class:`JournalCorruptError`.
"""

from __future__ import annotations

import bisect
import json
import os
import struct
import threading
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro import obs
from repro.core.errors import StoreError, JournalCorruptError
from repro.store import format as binfmt

__all__ = [
    "FSYNC_POLICIES",
    "JOURNAL_FORMATS",
    "Journal",
    "JournalRecord",
    "TailScan",
    "read_records",
    "scan_segment",
    "segment_files",
    "segment_first_lsn",
    "segment_format",
    "start_segment_index",
]

#: accepted values for the Journal fsync policy
FSYNC_POLICIES = ("always", "interval", "never")
#: accepted values for the Journal wire format
JOURNAL_FORMATS = (1, 2)

_SEGMENT_PREFIX = "wal-"
#: per-format segment suffix; the suffix is how readers auto-detect
_FORMAT_SUFFIXES = {1: ".jsonl", 2: ".walb"}
_SUFFIX_FORMATS = {suffix: fmt for fmt, suffix in _FORMAT_SUFFIXES.items()}
#: default segment rotation threshold (bytes)
DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024
#: default fsync coalescing window for the "interval" policy (seconds)
DEFAULT_FSYNC_INTERVAL = 0.05

_CRC32 = struct.Struct("<I")


@dataclass(frozen=True)
class JournalRecord:
    """One decoded WAL record: its LSN, event type, and payload."""

    lsn: int
    type: str
    data: Dict[str, object]


def _canonical(payload: Dict[str, object]) -> str:
    """The canonical encoding the v1 CRC is computed over."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def _encode_record_v1(lsn: int, type_: str, data: Dict[str, object]) -> bytes:
    body = {"lsn": lsn, "type": type_, "data": data}
    crc = zlib.crc32(_canonical(body).encode("utf-8")) & 0xFFFFFFFF
    body["crc"] = crc
    return (_canonical(body) + "\n").encode("utf-8")


def _encode_record_v2(lsn: int, type_: str, data: Dict[str, object]) -> bytes:
    body = binfmt.encode_body(lsn, type_, data)
    return (
        binfmt.encode_varint(len(body))
        + _CRC32.pack(zlib.crc32(body) & 0xFFFFFFFF)
        + body
    )


def _decode_line(line: bytes) -> JournalRecord:
    """Parse and verify one v1 line; raises ValueError on any defect."""
    text = line.decode("utf-8")
    payload = json.loads(text)
    if not isinstance(payload, dict):
        raise ValueError("record is not an object")
    crc = payload.pop("crc", None)
    if not isinstance(crc, int):
        raise ValueError("record has no crc")
    expected = zlib.crc32(_canonical(payload).encode("utf-8")) & 0xFFFFFFFF
    if crc != expected:
        raise ValueError(f"crc mismatch: stored {crc}, computed {expected}")
    lsn = payload.get("lsn")
    type_ = payload.get("type")
    if not isinstance(lsn, int) or lsn < 1:
        raise ValueError(f"bad lsn: {lsn!r}")
    if not isinstance(type_, str) or not type_:
        raise ValueError(f"bad type: {type_!r}")
    data = payload.get("data")
    if not isinstance(data, dict):
        raise ValueError("record data is not an object")
    return JournalRecord(lsn=lsn, type=type_, data=data)


def _segment_name(first_lsn: int, format: int = 1) -> str:
    return f"{_SEGMENT_PREFIX}{first_lsn:020d}{_FORMAT_SUFFIXES[format]}"


def segment_format(path: Path) -> int:
    """The wire format a segment file uses (from its suffix)."""
    fmt = _SUFFIX_FORMATS.get(path.suffix)
    if fmt is None:
        raise StoreError(f"not a WAL segment name: {path.name}")
    return fmt


def segment_first_lsn(path: Path) -> int:
    """The first LSN a segment file can hold (encoded in its name)."""
    stem = path.name[len(_SEGMENT_PREFIX): -len(path.suffix)]
    try:
        return int(stem)
    except ValueError:
        raise StoreError(f"not a WAL segment name: {path.name}") from None


# internal alias kept for callers that predate the public name
_segment_first_lsn = segment_first_lsn


def segment_files(directory: "str | Path") -> List[Path]:
    """The directory's WAL segments (either format), in LSN order."""
    base = Path(directory)
    if not base.is_dir():
        return []
    segments = [
        path
        for path in base.iterdir()
        if path.name.startswith(_SEGMENT_PREFIX)
        and path.suffix in _SUFFIX_FORMATS
    ]
    return sorted(segments, key=_segment_first_lsn)


@dataclass
class TailScan:
    """What scanning one segment found: records and any torn tail."""

    records: List[JournalRecord] = field(default_factory=list)
    #: byte offset of the first bad record (== file size when clean)
    valid_bytes: int = 0
    #: bytes after the first bad record (0 when the segment is clean)
    torn_bytes: int = 0
    #: the decode error that ended the scan, if any
    error: Optional[str] = None


def _scan_v1(raw: bytes, scan: TailScan) -> None:
    offset = 0
    for line in raw.split(b"\n"):
        if offset >= len(raw):
            break
        consumed = len(line) + 1  # the newline
        if not line:
            offset += consumed
            continue
        # a line without its newline is an unterminated (torn) write
        terminated = offset + len(line) < len(raw)
        if not terminated:
            scan.error = "unterminated final record"
            break
        try:
            scan.records.append(_decode_line(line))
        except ValueError as exc:
            scan.error = str(exc)
            break
        offset += consumed
        scan.valid_bytes = offset


def _scan_v2(raw: bytes, scan: TailScan) -> None:
    if not raw:
        # created but never written (crash before the header): clean-empty
        return
    try:
        binfmt.check_segment_header(raw)
    except ValueError as exc:
        # a torn header means no record ever landed; the whole file is
        # the torn tail and repair truncates it back to nothing
        scan.error = str(exc)
        return
    offset = binfmt.SEGMENT_HEADER_LEN
    scan.valid_bytes = offset
    while offset < len(raw):
        try:
            body_len, body_start = binfmt.decode_varint(raw, offset)
            body_start += _CRC32.size
            end = body_start + body_len
            if body_start > len(raw) or end > len(raw):
                raise ValueError("record truncated")
            (crc,) = _CRC32.unpack_from(raw, body_start - _CRC32.size)
            body = raw[body_start:end]
            if zlib.crc32(body) & 0xFFFFFFFF != crc:
                raise ValueError(
                    f"crc mismatch: stored {crc}, "
                    f"computed {zlib.crc32(body) & 0xFFFFFFFF}"
                )
            lsn, type_, data = binfmt.decode_body(body)
        except ValueError as exc:
            scan.error = str(exc)
            break
        scan.records.append(JournalRecord(lsn=lsn, type=type_, data=data))
        offset = end
        scan.valid_bytes = offset


def scan_segment(path: Path) -> TailScan:
    """Read every valid record of one segment, stopping at the first
    bad one (truncate-at-first-bad-record semantics).  The wire format
    is auto-detected from the file suffix."""
    scan = TailScan()
    raw = path.read_bytes()
    if segment_format(path) == 2:
        _scan_v2(raw, scan)
    else:
        _scan_v1(raw, scan)
    scan.torn_bytes = len(raw) - scan.valid_bytes
    return scan


def start_segment_index(segments: Sequence[Path], start_lsn: int) -> int:
    """The index of the first segment that can hold ``lsn > start_lsn``.

    Segment names encode their first LSN, so the right starting point is
    the *last* segment whose first LSN is ``<= start_lsn + 1`` — found by
    binary search on the filename prefix, never by decoding records.
    The ``+ 1`` is the rotation boundary: when ``start_lsn`` is exactly
    the last record of a sealed segment, the next record is the first of
    the following segment, and scanning the sealed one would decode a
    whole file for zero yield (and, before this helper existed, an
    off-by-one here silently re-read the boundary segment).
    """
    firsts = [segment_first_lsn(path) for path in segments]
    index = bisect.bisect_right(firsts, start_lsn + 1) - 1
    return max(index, 0)


def read_records(
    directory: "str | Path", start_lsn: int = 0
) -> Iterator[JournalRecord]:
    """Iterate every record with ``lsn > start_lsn``, in log order.

    Segments of both wire formats are read transparently, and segments
    that cannot contain ``lsn > start_lsn`` are skipped by filename
    (:func:`start_segment_index`) without decoding a byte — opening a
    reader at an arbitrary LSN mid-log costs one segment scan, not the
    whole history.  Tolerates a torn tail on the final segment
    (iteration just ends there); a bad record in any earlier *scanned*
    segment raises :class:`JournalCorruptError` because records after
    it exist — that is data loss in the middle of history, not an
    interrupted append.
    """
    segments = segment_files(directory)
    if not segments:
        return
    first = start_segment_index(segments, start_lsn)
    for index in range(first, len(segments)):
        path = segments[index]
        scan = scan_segment(path)
        if scan.error is not None and index < len(segments) - 1:
            raise JournalCorruptError(
                f"segment {path.name} is corrupt mid-log ({scan.error}); "
                f"{len(segments) - index - 1} newer segment(s) follow"
            )
        for record in scan.records:
            if record.lsn > start_lsn:
                yield record


class Journal:
    """The append side of the WAL (plus bookkeeping for readers).

    Use :meth:`open` rather than the constructor: it scans the
    directory, repairs a torn tail left by a crash, and positions the
    next LSN after the last durable record.  All methods are
    thread-safe; appends additionally happen under the caller's
    (the LMS's) lock so log order is the authoritative serialization of
    mutations.
    """

    def __init__(
        self,
        directory: "str | Path",
        *,
        fsync: str = "interval",
        fsync_interval_seconds: float = DEFAULT_FSYNC_INTERVAL,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        format: int = 2,
        group_commit: bool = False,
        group_commit_window_seconds: float = 0.0,
        registry: Optional["obs.Registry"] = None,
        _last_lsn: int = 0,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise StoreError(
                f"unknown fsync policy {fsync!r}; use one of {FSYNC_POLICIES}"
            )
        if format not in JOURNAL_FORMATS:
            raise StoreError(
                f"unknown journal format {format!r}; "
                f"use one of {JOURNAL_FORMATS}"
            )
        if segment_bytes < 1:
            raise StoreError(f"segment_bytes must be >= 1, got {segment_bytes}")
        self.directory = Path(directory)
        self.fsync_policy = fsync
        self.fsync_interval_seconds = float(fsync_interval_seconds)
        self.segment_bytes = int(segment_bytes)
        self.format = int(format)
        self.group_commit = bool(group_commit)
        self.group_commit_window_seconds = float(group_commit_window_seconds)
        self._encode_one = (
            _encode_record_v2 if self.format == 2 else _encode_record_v1
        )
        self._registry = registry
        self._lock = threading.Lock()
        self._last_lsn = int(_last_lsn)
        # the durable high-water mark: the highest LSN known to have
        # been fsynced to disk (what an external reader may lag behind)
        self._durable_lsn = int(_last_lsn)
        self._stream = None
        self._segment_path: Optional[Path] = None
        self._segment_size = 0
        self._last_fsync = time.monotonic()
        self._closed = False
        # group-commit leader/follower state: _gc_synced is the highest
        # LSN known to be on disk; one leader at a time runs the fsync
        # while followers wait on the condition and re-check
        self._gc_cond = threading.Condition()
        self._gc_synced = 0
        self._gc_leader_active = False
        #: lifetime totals, mirrored into obs counters
        self.records_appended = 0
        self.bytes_appended = 0
        self.fsyncs = 0
        self.rotations = 0
        self.repaired_bytes = 0
        self.batch_appends = 0
        self.group_commits = 0

    # -- construction ---------------------------------------------------------

    @classmethod
    def open(
        cls,
        directory: "str | Path",
        *,
        fsync: str = "interval",
        fsync_interval_seconds: float = DEFAULT_FSYNC_INTERVAL,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        format: int = 2,
        group_commit: bool = False,
        group_commit_window_seconds: float = 0.0,
        registry: Optional["obs.Registry"] = None,
    ) -> "Journal":
        """Open (creating if needed) the WAL in ``directory``.

        An existing log is scanned: the final segment's torn tail, if
        any, is physically truncated away, and appends continue from
        the next LSN.  ``format`` governs segments this journal
        *creates*; existing segments keep their own format, so opening
        an old JSONL directory with ``format=2`` upgrades the log
        mid-stream — the tail segment is sealed as-is and the next
        append starts a binary one.
        """
        base = Path(directory)
        base.mkdir(parents=True, exist_ok=True)
        journal = cls(
            base,
            fsync=fsync,
            fsync_interval_seconds=fsync_interval_seconds,
            segment_bytes=segment_bytes,
            format=format,
            group_commit=group_commit,
            group_commit_window_seconds=group_commit_window_seconds,
            registry=registry,
        )
        segments = segment_files(base)
        if segments:
            tail = segments[-1]
            scan = scan_segment(tail)
            if scan.torn_bytes:
                with tail.open("r+b") as stream:
                    stream.truncate(scan.valid_bytes)
                    stream.flush()
                    os.fsync(stream.fileno())
                journal.repaired_bytes = scan.torn_bytes
                journal._count("store.tail.repaired_bytes", scan.torn_bytes)
            if scan.records:
                journal._last_lsn = scan.records[-1].lsn
            else:
                # an empty (or fully torn) final segment: the previous
                # LSN is one less than the first this file would hold
                journal._last_lsn = _segment_first_lsn(tail) - 1
            # whatever survived the open scan is on disk by definition
            journal._durable_lsn = journal._last_lsn
            if segment_format(tail) == journal.format:
                journal._open_segment(tail, append=True)
            # else: leave the tail sealed; the next append opens a new
            # segment in the configured format (mid-stream upgrade)
        return journal

    # -- appending ------------------------------------------------------------

    @property
    def last_lsn(self) -> int:
        """The LSN of the most recently appended (or recovered) record."""
        with self._lock:
            return self._last_lsn

    @property
    def durable_lsn(self) -> int:
        """The durable high-water mark: the highest LSN fsynced to disk.

        ``last_lsn - durable_lsn`` is the data-at-risk window on a
        machine crash; an external read model computes its own lag
        against this gauge (``/metrics`` exposes both).
        """
        with self._lock:
            return self._durable_lsn

    def append(self, type_: str, data: Dict[str, object]) -> int:
        """Durably append one event; returns its LSN.

        ``data`` must be JSON-serializable — callers (the LMS) journal
        wire-shaped payloads.  The record is flushed to the OS before
        returning under every policy, and fsynced per the policy.
        """
        with self._lock:
            lsn = self._append_locked(((type_, data),))
        if self._gc_enabled():
            self._commit_group(lsn)
        return lsn

    def append_batch(
        self, events: Sequence[Tuple[str, Dict[str, object]]]
    ) -> List[int]:
        """Durably append K events as one write; returns their LSNs.

        The whole batch is encoded, written, flushed, and (per policy)
        fsynced once, so the per-record cost of lock traffic, syscalls,
        and disk flushes is amortized K ways.  Records are contiguous
        in the log: no other writer's record lands between them.
        """
        if not events:
            return []
        with self._lock:
            last = self._append_locked(tuple(events))
            self.batch_appends += 1
            self._count("store.batch_appends")
        if self._gc_enabled():
            self._commit_group(last)
        return list(range(last - len(events) + 1, last + 1))

    def sync(self) -> None:
        """Force an fsync of the active segment (any policy)."""
        with self._lock:
            if self._stream is not None and not self._closed:
                self._stream.flush()
                self._fsync_locked()

    def rotate(self) -> Optional[Path]:
        """Seal the active segment now; returns the sealed path."""
        with self._lock:
            if self._stream is None:
                return None
            sealed = self._segment_path
            self._rotate_locked()
            return sealed

    def close(self) -> None:
        """Flush, fsync (unless policy is ``never``), and close."""
        with self._lock:
            if self._closed:
                return
            if self._stream is not None:
                self._stream.flush()
                if self.fsync_policy != "never":
                    self._fsync_locked()
                self._stream.close()
                self._stream = None
            self._closed = True
        # release any group-commit followers parked on the condition
        with self._gc_cond:
            self._gc_synced = max(self._gc_synced, self._last_lsn)
            self._gc_cond.notify_all()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- reading & retirement -------------------------------------------------

    def segments(self) -> List[Path]:
        """Current segment files, oldest first."""
        return segment_files(self.directory)

    def read(self, start_lsn: int = 0) -> Iterator[JournalRecord]:
        """Records with ``lsn > start_lsn`` (see :func:`read_records`)."""
        return read_records(self.directory, start_lsn)

    def retire_covered(self, covered_lsn: int) -> List[Path]:
        """Delete sealed segments fully covered by a checkpoint.

        A segment is retired when every record it can hold has
        ``lsn <= covered_lsn`` — i.e. the *next* segment's first LSN is
        ``<= covered_lsn + 1``.  The active (final) segment always
        survives, so the unreplayed suffix is never dropped.
        """
        removed: List[Path] = []
        with self._lock:
            segments = segment_files(self.directory)
            for path, following in zip(segments, segments[1:]):
                if self._segment_path is not None and (
                    path == self._segment_path
                ):
                    break
                if _segment_first_lsn(following) - 1 <= covered_lsn:
                    path.unlink()
                    removed.append(path)
                else:
                    break
            if removed:
                self._count("store.segments.retired", len(removed))
        return removed

    # -- internals ------------------------------------------------------------

    def _append_locked(
        self, events: Iterable[Tuple[str, Dict[str, object]]]
    ) -> int:
        """Encode + write + flush ``events`` under ``self._lock``;
        returns the last LSN assigned.  Fsync happens here per policy
        unless group commit will handle it after the lock is released.
        """
        if self._closed:
            raise StoreError("journal is closed")
        lsn = self._last_lsn
        chunks = []
        for type_, data in events:
            lsn += 1
            chunks.append(self._encode_one(lsn, type_, data))
        encoded = b"".join(chunks)
        if self._stream is None:
            self._open_segment(
                self.directory
                / _segment_name(self._last_lsn + 1, self.format),
                append=False,
            )
        self._stream.write(encoded)
        # userspace -> OS page cache: makes the records SIGKILL-safe
        self._stream.flush()
        if not self._gc_enabled():
            self._maybe_fsync()
        appended = lsn - self._last_lsn
        self._last_lsn = lsn
        self._segment_size += len(encoded)
        self.records_appended += appended
        self.bytes_appended += len(encoded)
        if self._segment_size >= self.segment_bytes:
            self._rotate_locked()
        self._count("store.appends", appended)
        self._count("store.bytes", len(encoded))
        return lsn

    def _gc_enabled(self) -> bool:
        # group commit only changes the "always" policy: the other
        # policies already coalesce (or skip) their fsyncs
        return self.group_commit and self.fsync_policy == "always"

    def _commit_group(self, lsn: int) -> None:
        """Block until ``lsn`` is fsynced, coalescing with other
        writers: one leader flushes for everyone who arrived while the
        previous flush was in flight."""
        with self._gc_cond:
            while True:
                if self._gc_synced >= lsn:
                    return  # somebody's flush already covered us
                if not self._gc_leader_active:
                    self._gc_leader_active = True
                    break
                self._gc_cond.wait()
        high = lsn
        try:
            if self.group_commit_window_seconds > 0:
                # optional hold-back so more writers join this flush
                time.sleep(self.group_commit_window_seconds)
            with self._lock:
                if self._stream is not None and not self._closed:
                    self._stream.flush()
                # everything appended so far is covered: sealed
                # segments were fsynced at rotation, the active one by
                # the fsync below
                high = max(high, self._last_lsn)
                self._fsync_locked()
            self.group_commits += 1
            self._count("store.group_commits")
        finally:
            with self._gc_cond:
                self._gc_synced = max(self._gc_synced, high)
                self._gc_leader_active = False
                self._gc_cond.notify_all()

    def _open_segment(self, path: Path, append: bool) -> None:
        self._stream = path.open("ab" if append else "xb")
        self._segment_path = path
        self._segment_size = path.stat().st_size if append else 0
        if segment_format(path) == 2 and self._segment_size == 0:
            header = binfmt.segment_header()
            self._stream.write(header)
            self._stream.flush()
            self._segment_size = len(header)

    def _rotate_locked(self) -> None:
        self._stream.flush()
        if self.fsync_policy != "never":
            self._fsync_locked()
        self._stream.close()
        self._stream = None
        self._segment_path = None
        self._segment_size = 0
        self.rotations += 1
        self._count("store.segments.rotated")
        # the next append opens wal-<last_lsn + 1>

    def _maybe_fsync(self) -> None:
        if self.fsync_policy == "always":
            self._fsync_locked()
        elif self.fsync_policy == "interval":
            now = time.monotonic()
            if now - self._last_fsync >= self.fsync_interval_seconds:
                self._fsync_locked()

    def _fsync_locked(self) -> None:
        if self._stream is None:
            return
        with self._span("store.fsync"):
            os.fsync(self._stream.fileno())
        self._last_fsync = time.monotonic()
        # everything appended before this flush is now on disk
        self._durable_lsn = self._last_lsn
        self.fsyncs += 1
        self._count("store.fsyncs")

    def _count(self, name: str, value: float = 1) -> None:
        if self._registry is not None:
            self._registry.count(name, value)
        else:
            obs.count(name, value)

    def _span(self, name: str):
        if self._registry is not None:
            return self._registry.span(name)
        return obs.span(name)
