"""The write-ahead log: a segmented, checksummed, append-only journal.

:class:`Journal` is the durability primitive under the LMS (see
``docs/durability.md``).  Records are JSON lines — one per mutation —
each carrying a monotonically increasing **LSN** (log sequence number)
and a CRC32 over its canonical encoding, so a reader can tell a valid
record from a torn or corrupted one without any framing beyond the
newline.  The log is **segmented**: when the active file passes
``segment_bytes`` it is sealed and a new segment named after the next
LSN begins, which is what lets checkpointing retire history in whole
files (:mod:`repro.store.checkpoint`).

Durability levels (``fsync`` policy):

* ``"always"`` — ``os.fsync`` after every append: survives OS/power
  loss at the cost of one disk flush per record;
* ``"interval"`` — flush to the OS on every append, ``fsync`` at most
  every ``fsync_interval_seconds``: survives process death (SIGKILL)
  with bounded data-at-risk on a machine crash;
* ``"never"`` — flush to the OS only: still SIGKILL-safe (the page
  cache holds the bytes), no protection against power loss.

Every policy flushes Python's userspace buffer per append, so a record
that was acknowledged to a caller is never lost to a killed *process* —
that invariant is what the crash-injection suite proves.

Reading tolerates a **torn tail**: a record that fails to parse or
checksum in the *final* segment marks the end of the log (everything
after it is ignored, and :meth:`Journal.open` physically truncates it).
The same failure in an earlier segment is real corruption and raises
:class:`JournalCorruptError`.
"""

from __future__ import annotations

import json
import os
import threading
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from repro import obs
from repro.core.errors import StoreError, JournalCorruptError

__all__ = [
    "FSYNC_POLICIES",
    "Journal",
    "JournalRecord",
    "TailScan",
    "read_records",
    "scan_segment",
    "segment_files",
]

#: accepted values for the Journal fsync policy
FSYNC_POLICIES = ("always", "interval", "never")

_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".jsonl"
#: default segment rotation threshold (bytes)
DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024
#: default fsync coalescing window for the "interval" policy (seconds)
DEFAULT_FSYNC_INTERVAL = 0.05


@dataclass(frozen=True)
class JournalRecord:
    """One decoded WAL record: its LSN, event type, and payload."""

    lsn: int
    type: str
    data: Dict[str, object]


def _canonical(payload: Dict[str, object]) -> str:
    """The canonical encoding the CRC is computed over."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def _encode_record(lsn: int, type_: str, data: Dict[str, object]) -> bytes:
    body = {"lsn": lsn, "type": type_, "data": data}
    crc = zlib.crc32(_canonical(body).encode("utf-8")) & 0xFFFFFFFF
    body["crc"] = crc
    return (_canonical(body) + "\n").encode("utf-8")


def _decode_line(line: bytes) -> JournalRecord:
    """Parse and verify one line; raises ValueError on any defect."""
    text = line.decode("utf-8")
    payload = json.loads(text)
    if not isinstance(payload, dict):
        raise ValueError("record is not an object")
    crc = payload.pop("crc", None)
    if not isinstance(crc, int):
        raise ValueError("record has no crc")
    expected = zlib.crc32(_canonical(payload).encode("utf-8")) & 0xFFFFFFFF
    if crc != expected:
        raise ValueError(f"crc mismatch: stored {crc}, computed {expected}")
    lsn = payload.get("lsn")
    type_ = payload.get("type")
    if not isinstance(lsn, int) or lsn < 1:
        raise ValueError(f"bad lsn: {lsn!r}")
    if not isinstance(type_, str) or not type_:
        raise ValueError(f"bad type: {type_!r}")
    data = payload.get("data")
    if not isinstance(data, dict):
        raise ValueError("record data is not an object")
    return JournalRecord(lsn=lsn, type=type_, data=data)


def _segment_name(first_lsn: int) -> str:
    return f"{_SEGMENT_PREFIX}{first_lsn:020d}{_SEGMENT_SUFFIX}"


def _segment_first_lsn(path: Path) -> int:
    stem = path.name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)]
    try:
        return int(stem)
    except ValueError:
        raise StoreError(f"not a WAL segment name: {path.name}") from None


def segment_files(directory: "str | Path") -> List[Path]:
    """The directory's WAL segments, in LSN order."""
    base = Path(directory)
    if not base.is_dir():
        return []
    segments = [
        path
        for path in base.iterdir()
        if path.name.startswith(_SEGMENT_PREFIX)
        and path.name.endswith(_SEGMENT_SUFFIX)
    ]
    return sorted(segments, key=_segment_first_lsn)


@dataclass
class TailScan:
    """What scanning one segment found: records and any torn tail."""

    records: List[JournalRecord] = field(default_factory=list)
    #: byte offset of the first bad record (== file size when clean)
    valid_bytes: int = 0
    #: bytes after the first bad record (0 when the segment is clean)
    torn_bytes: int = 0
    #: the decode error that ended the scan, if any
    error: Optional[str] = None


def scan_segment(path: Path) -> TailScan:
    """Read every valid record of one segment, stopping at the first
    bad one (truncate-at-first-bad-record semantics)."""
    scan = TailScan()
    raw = path.read_bytes()
    offset = 0
    for line in raw.split(b"\n"):
        if offset >= len(raw):
            break
        consumed = len(line) + 1  # the newline
        if not line:
            offset += consumed
            continue
        # a line without its newline is an unterminated (torn) write
        terminated = offset + len(line) < len(raw)
        if not terminated:
            scan.error = "unterminated final record"
            break
        try:
            scan.records.append(_decode_line(line))
        except ValueError as exc:
            scan.error = str(exc)
            break
        offset += consumed
        scan.valid_bytes = offset
    scan.torn_bytes = len(raw) - scan.valid_bytes
    return scan


def read_records(
    directory: "str | Path", start_lsn: int = 0
) -> Iterator[JournalRecord]:
    """Iterate every record with ``lsn > start_lsn``, in log order.

    Tolerates a torn tail on the final segment (iteration just ends
    there); a bad record in any earlier segment raises
    :class:`JournalCorruptError` because records after it exist — that
    is data loss in the middle of history, not an interrupted append.
    """
    segments = segment_files(directory)
    for index, path in enumerate(segments):
        scan = scan_segment(path)
        if scan.error is not None and index < len(segments) - 1:
            raise JournalCorruptError(
                f"segment {path.name} is corrupt mid-log ({scan.error}); "
                f"{len(segments) - index - 1} newer segment(s) follow"
            )
        for record in scan.records:
            if record.lsn > start_lsn:
                yield record


class Journal:
    """The append side of the WAL (plus bookkeeping for readers).

    Use :meth:`open` rather than the constructor: it scans the
    directory, repairs a torn tail left by a crash, and positions the
    next LSN after the last durable record.  All methods are
    thread-safe; appends additionally happen under the caller's
    (the LMS's) lock so log order is the authoritative serialization of
    mutations.
    """

    def __init__(
        self,
        directory: "str | Path",
        *,
        fsync: str = "interval",
        fsync_interval_seconds: float = DEFAULT_FSYNC_INTERVAL,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        registry: Optional["obs.Registry"] = None,
        _last_lsn: int = 0,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise StoreError(
                f"unknown fsync policy {fsync!r}; use one of {FSYNC_POLICIES}"
            )
        if segment_bytes < 1:
            raise StoreError(f"segment_bytes must be >= 1, got {segment_bytes}")
        self.directory = Path(directory)
        self.fsync_policy = fsync
        self.fsync_interval_seconds = float(fsync_interval_seconds)
        self.segment_bytes = int(segment_bytes)
        self._registry = registry
        self._lock = threading.Lock()
        self._last_lsn = int(_last_lsn)
        self._stream = None
        self._segment_path: Optional[Path] = None
        self._segment_size = 0
        self._last_fsync = time.monotonic()
        self._closed = False
        #: lifetime totals, mirrored into obs counters
        self.records_appended = 0
        self.bytes_appended = 0
        self.fsyncs = 0
        self.rotations = 0
        self.repaired_bytes = 0

    # -- construction ---------------------------------------------------------

    @classmethod
    def open(
        cls,
        directory: "str | Path",
        *,
        fsync: str = "interval",
        fsync_interval_seconds: float = DEFAULT_FSYNC_INTERVAL,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        registry: Optional["obs.Registry"] = None,
    ) -> "Journal":
        """Open (creating if needed) the WAL in ``directory``.

        An existing log is scanned: the final segment's torn tail, if
        any, is physically truncated away, and appends continue from
        the next LSN.
        """
        base = Path(directory)
        base.mkdir(parents=True, exist_ok=True)
        journal = cls(
            base,
            fsync=fsync,
            fsync_interval_seconds=fsync_interval_seconds,
            segment_bytes=segment_bytes,
            registry=registry,
        )
        segments = segment_files(base)
        if segments:
            tail = segments[-1]
            scan = scan_segment(tail)
            if scan.torn_bytes:
                with tail.open("r+b") as stream:
                    stream.truncate(scan.valid_bytes)
                    stream.flush()
                    os.fsync(stream.fileno())
                journal.repaired_bytes = scan.torn_bytes
                journal._count("store.tail.repaired_bytes", scan.torn_bytes)
            if scan.records:
                journal._last_lsn = scan.records[-1].lsn
            else:
                # an empty (or fully torn) final segment: the previous
                # LSN is one less than the first this file would hold
                journal._last_lsn = _segment_first_lsn(tail) - 1
            journal._open_segment(tail, append=True)
        return journal

    # -- appending ------------------------------------------------------------

    @property
    def last_lsn(self) -> int:
        """The LSN of the most recently appended (or recovered) record."""
        with self._lock:
            return self._last_lsn

    def append(self, type_: str, data: Dict[str, object]) -> int:
        """Durably append one event; returns its LSN.

        ``data`` must be JSON-serializable — callers (the LMS) journal
        wire-shaped payloads.  The record is flushed to the OS before
        returning under every policy, and fsynced per the policy.
        """
        with self._lock:
            if self._closed:
                raise StoreError("journal is closed")
            lsn = self._last_lsn + 1
            encoded = _encode_record(lsn, type_, data)
            if self._stream is None:
                self._open_segment(
                    self.directory / _segment_name(lsn), append=False
                )
            self._stream.write(encoded)
            # userspace -> OS page cache: makes the record SIGKILL-safe
            self._stream.flush()
            self._maybe_fsync()
            self._last_lsn = lsn
            self._segment_size += len(encoded)
            self.records_appended += 1
            self.bytes_appended += len(encoded)
            if self._segment_size >= self.segment_bytes:
                self._rotate_locked()
            self._count("store.appends")
            self._count("store.bytes", len(encoded))
        return lsn

    def sync(self) -> None:
        """Force an fsync of the active segment (any policy)."""
        with self._lock:
            if self._stream is not None and not self._closed:
                self._stream.flush()
                self._fsync_locked()

    def rotate(self) -> Optional[Path]:
        """Seal the active segment now; returns the sealed path."""
        with self._lock:
            if self._stream is None:
                return None
            sealed = self._segment_path
            self._rotate_locked()
            return sealed

    def close(self) -> None:
        """Flush, fsync (unless policy is ``never``), and close."""
        with self._lock:
            if self._closed:
                return
            if self._stream is not None:
                self._stream.flush()
                if self.fsync_policy != "never":
                    self._fsync_locked()
                self._stream.close()
                self._stream = None
            self._closed = True

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- reading & retirement -------------------------------------------------

    def segments(self) -> List[Path]:
        """Current segment files, oldest first."""
        return segment_files(self.directory)

    def read(self, start_lsn: int = 0) -> Iterator[JournalRecord]:
        """Records with ``lsn > start_lsn`` (see :func:`read_records`)."""
        return read_records(self.directory, start_lsn)

    def retire_covered(self, covered_lsn: int) -> List[Path]:
        """Delete sealed segments fully covered by a checkpoint.

        A segment is retired when every record it can hold has
        ``lsn <= covered_lsn`` — i.e. the *next* segment's first LSN is
        ``<= covered_lsn + 1``.  The active (final) segment always
        survives, so the unreplayed suffix is never dropped.
        """
        removed: List[Path] = []
        with self._lock:
            segments = segment_files(self.directory)
            for path, following in zip(segments, segments[1:]):
                if self._segment_path is not None and (
                    path == self._segment_path
                ):
                    break
                if _segment_first_lsn(following) - 1 <= covered_lsn:
                    path.unlink()
                    removed.append(path)
                else:
                    break
            if removed:
                self._count("store.segments.retired", len(removed))
        return removed

    # -- internals ------------------------------------------------------------

    def _open_segment(self, path: Path, append: bool) -> None:
        self._stream = path.open("ab" if append else "xb")
        self._segment_path = path
        self._segment_size = path.stat().st_size if append else 0

    def _rotate_locked(self) -> None:
        self._stream.flush()
        if self.fsync_policy != "never":
            self._fsync_locked()
        self._stream.close()
        self._stream = None
        self._segment_path = None
        self._segment_size = 0
        self.rotations += 1
        self._count("store.segments.rotated")
        # the next append opens wal-<last_lsn + 1>

    def _maybe_fsync(self) -> None:
        if self.fsync_policy == "always":
            self._fsync_locked()
        elif self.fsync_policy == "interval":
            now = time.monotonic()
            if now - self._last_fsync >= self.fsync_interval_seconds:
                self._fsync_locked()

    def _fsync_locked(self) -> None:
        if self._stream is None:
            return
        with self._span("store.fsync"):
            os.fsync(self._stream.fileno())
        self._last_fsync = time.monotonic()
        self.fsyncs += 1
        self._count("store.fsyncs")

    def _count(self, name: str, value: float = 1) -> None:
        if self._registry is not None:
            self._registry.count(name, value)
        else:
            obs.count(name, value)

    def _span(self, name: str):
        if self._registry is not None:
            return self._registry.span(name)
        return obs.span(name)
