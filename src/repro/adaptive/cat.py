"""Computerized adaptive testing (the paper's stated future work).

:class:`CatSession` administers items one at a time from a calibrated
pool: after each response the ability estimate is updated (EAP) and the
next item is the unused one with **maximum Fisher information** at the
current estimate.  The session stops when the standard error drops below
a target or the item budget is exhausted — the two standard CAT stopping
rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.errors import EstimationError
from repro.adaptive.estimation import estimate_ability_eap
from repro.adaptive.irt import ItemParameters, item_information

__all__ = ["CatConfig", "CatSession", "select_next_item"]


def select_next_item(
    ability: float,
    pool: Dict[str, ItemParameters],
    administered: "set[str]",
) -> Optional[str]:
    """The unused pool item with maximum information at ``ability``."""
    best_id: Optional[str] = None
    best_information = -1.0
    for item_id in sorted(pool):
        if item_id in administered:
            continue
        information = item_information(ability, pool[item_id])
        if information > best_information:
            best_information = information
            best_id = item_id
    return best_id


@dataclass(frozen=True)
class CatConfig:
    """Stopping rules and priors for a CAT session."""

    max_items: int = 20
    min_items: int = 3
    se_target: float = 0.35
    prior_sd: float = 1.0

    def __post_init__(self) -> None:
        if self.max_items < 1:
            raise EstimationError("max_items must be positive")
        if not 1 <= self.min_items <= self.max_items:
            raise EstimationError(
                f"min_items must be in [1, max_items], got {self.min_items}"
            )
        if self.se_target <= 0:
            raise EstimationError("se_target must be positive")


@dataclass
class CatSession:
    """One adaptive sitting over a calibrated item pool."""

    pool: Dict[str, ItemParameters]
    config: CatConfig = field(default_factory=CatConfig)
    administered: List[str] = field(default_factory=list)
    responses: List[bool] = field(default_factory=list)
    ability: float = 0.0
    standard_error: float = float("inf")

    def __post_init__(self) -> None:
        if not self.pool:
            raise EstimationError("CAT pool is empty")
        if len(self.administered) != len(self.responses):
            raise EstimationError(
                f"{len(self.administered)} administered items but "
                f"{len(self.responses)} responses"
            )
        foreign = sorted(set(self.administered) - set(self.pool))
        if foreign:
            # e.g. a session restored against a recalibrated pool that
            # dropped items: without this check, record() would KeyError
            # mid-sitting instead of failing at construction
            raise EstimationError(
                f"administered items not in the pool: {foreign}"
            )

    def next_item(self) -> Optional[str]:
        """The item to administer next, or None when the session is done."""
        if self.is_done():
            return None
        return select_next_item(self.ability, self.pool, set(self.administered))

    def record(self, item_id: str, correct: bool) -> None:
        """Record a response and update the ability estimate."""
        if item_id not in self.pool:
            raise EstimationError(f"item {item_id!r} not in the pool")
        if item_id in self.administered:
            raise EstimationError(f"item {item_id!r} already administered")
        self.administered.append(item_id)
        self.responses.append(correct)
        parameters = [self.pool[administered] for administered in self.administered]
        self.ability, self.standard_error = estimate_ability_eap(
            self.responses, parameters, prior_sd=self.config.prior_sd
        )

    def is_done(self) -> bool:
        """True when a stopping rule is met or the pool is exhausted."""
        return self.stop_reason() is not None

    def stop_reason(self) -> Optional[str]:
        """Why the session stopped, or None while it should continue.

        Every sitting terminates with exactly one defined reason —
        ``"max_items"`` (item budget spent; the deterministic backstop
        for an SE that never converges), ``"pool_exhausted"`` (no unused
        items left to administer), or ``"se_target"`` (precision
        reached after the minimum item count).
        """
        count = len(self.administered)
        if count >= self.config.max_items:
            return "max_items"
        if not set(self.pool) - set(self.administered):
            return "pool_exhausted"
        if count >= self.config.min_items and (
            self.standard_error <= self.config.se_target
        ):
            return "se_target"
        return None

    def run(self, answer) -> Tuple[float, float]:
        """Drive the whole session with an ``answer(item_id) -> bool``
        oracle (e.g. a simulated learner); returns (ability, SE)."""
        while not self.is_done():
            item_id = self.next_item()
            if item_id is None:  # pragma: no cover - stop_reason covers it
                break
            self.record(item_id, bool(answer(item_id)))
        return self.ability, self.standard_error
