"""2PL item-parameter estimation from response matrices (MML/EM).

:mod:`repro.adaptive.calibration` *seeds* a CAT pool from the paper's
classical indices; this module does the real thing: estimate each item's
discrimination ``a`` and difficulty ``b`` from a response matrix by
marginal maximum likelihood with an EM algorithm (Bock & Aitkin 1981):

* **E step** — with current item parameters, compute each examinee's
  posterior over a fixed ability quadrature grid (standard-normal
  prior), then accumulate per item the expected number of examinees
  ``n_k`` and expected correct ``r_k`` at each grid point θ_k;
* **M step** — for each item, fit the 2PL curve to the (θ_k, r_k/n_k)
  pseudo-data by Newton iterations on the logistic-regression
  log-likelihood (which the 2PL M-step is, with θ as the regressor).

The ability metric is identified by the N(0, 1) prior, matching the
simulator's generating distribution, so recovered parameters are
directly comparable to :class:`~repro.sim.learner_model.ItemParameters`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.errors import EstimationError
from repro.adaptive.irt import ItemParameters

__all__ = ["CalibrationResult", "calibrate_2pl"]


@dataclass
class CalibrationResult:
    """Estimated parameters plus fit diagnostics."""

    parameters: List[ItemParameters]
    iterations: int
    converged: bool
    log_likelihood: float

    def as_pool(self, item_ids: Sequence[str]) -> Dict[str, ItemParameters]:
        """Zip the estimates with item ids into a CAT pool dict."""
        if len(item_ids) != len(self.parameters):
            raise EstimationError(
                f"{len(item_ids)} ids for {len(self.parameters)} items"
            )
        return dict(zip(item_ids, self.parameters))


def _grid(points: int, half_width: float) -> Tuple[List[float], List[float]]:
    """Equally spaced quadrature nodes with N(0,1) weights (normalized)."""
    step = 2.0 * half_width / (points - 1)
    nodes = [-half_width + index * step for index in range(points)]
    raw = [math.exp(-0.5 * node * node) for node in nodes]
    total = sum(raw)
    return nodes, [weight / total for weight in raw]


def _p2pl(theta: float, a: float, b: float) -> float:
    exponent = -a * (theta - b)
    if exponent > 700:
        return 1e-9
    if exponent < -700:
        return 1.0 - 1e-9
    return min(max(1.0 / (1.0 + math.exp(exponent)), 1e-9), 1.0 - 1e-9)


def calibrate_2pl(
    correct_matrix: Sequence[Sequence[bool]],
    max_iterations: int = 60,
    tolerance: float = 1e-3,
    grid_points: int = 31,
    grid_half_width: float = 4.0,
    a_bounds: Tuple[float, float] = (0.2, 3.0),
    b_bounds: Tuple[float, float] = (-4.0, 4.0),
) -> CalibrationResult:
    """Estimate 2PL parameters for every item of a response matrix.

    ``correct_matrix[e][i]`` is True when examinee ``e`` answered item
    ``i`` correctly, False when they answered it wrong, and **None when
    the item was never administered** — adaptive sittings serve each
    learner a subset of the pool, and the EM accumulation simply skips
    missing cells (missing-at-random given theta, which CAT's
    theta-driven selection satisfies).  Requires at least 2 items and
    ~100 examinees for stable estimates (fewer work but noisily).
    Estimates are clamped to ``a_bounds``/``b_bounds`` — items everyone
    (or no one) gets right have unbounded MLEs otherwise; items with no
    observed responses at all keep their starting values.

    Returns a :class:`CalibrationResult`; ``converged`` reports whether
    the largest parameter change fell below ``tolerance`` before the
    iteration budget ran out.
    """
    if not correct_matrix:
        raise EstimationError("empty response matrix")
    examinees = len(correct_matrix)
    items = len(correct_matrix[0])
    if items < 2:
        raise EstimationError("need at least two items to calibrate")
    for row in correct_matrix:
        if len(row) != items:
            raise EstimationError("ragged response matrix")
    if grid_points < 5:
        raise EstimationError("need at least 5 quadrature points")

    nodes, weights = _grid(grid_points, grid_half_width)

    # start from neutral parameters: a=1, b from the item's raw difficulty
    # (proportion correct among *observed* responses — None cells are
    # missing, not wrong)
    a_hat: List[float] = [1.0] * items
    b_hat: List[float] = []
    for item in range(items):
        observed = sum(1 for row in correct_matrix if row[item] is not None)
        right = sum(1 for row in correct_matrix if row[item])
        p = right / observed if observed else 0.5
        p = min(max(p, 0.02), 0.98)
        b_hat.append(math.log((1 - p) / p))

    log_likelihood = float("-inf")
    converged = False
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        # E step: posterior weights per examinee over the grid
        expected_n = [[0.0] * grid_points for _ in range(items)]
        expected_r = [[0.0] * grid_points for _ in range(items)]
        new_log_likelihood = 0.0
        # precompute item probabilities at each node
        p_item_node = [
            [_p2pl(node, a_hat[item], b_hat[item]) for node in nodes]
            for item in range(items)
        ]
        for row in correct_matrix:
            posterior = list(weights)
            for item in range(items):
                correct = row[item]
                if correct is None:  # never administered: no likelihood term
                    continue
                probabilities = p_item_node[item]
                for k in range(grid_points):
                    posterior[k] *= (
                        probabilities[k] if correct else 1.0 - probabilities[k]
                    )
            marginal = sum(posterior)
            new_log_likelihood += math.log(max(marginal, 1e-300))
            inverse = 1.0 / max(marginal, 1e-300)
            for k in range(grid_points):
                posterior[k] *= inverse
            for item in range(items):
                correct = row[item]
                if correct is None:  # missing cells carry no pseudo-data
                    continue
                expectation_n = expected_n[item]
                expectation_r = expected_r[item]
                for k in range(grid_points):
                    expectation_n[k] += posterior[k]
                    if correct:
                        expectation_r[k] += posterior[k]

        # M step: per-item 2PL logistic fit to (nodes, r/n) pseudo-data
        biggest_change = 0.0
        for item in range(items):
            a_new, b_new = _m_step(
                nodes,
                expected_n[item],
                expected_r[item],
                a_hat[item],
                b_hat[item],
                a_bounds,
                b_bounds,
            )
            biggest_change = max(
                biggest_change,
                abs(a_new - a_hat[item]),
                abs(b_new - b_hat[item]),
            )
            a_hat[item], b_hat[item] = a_new, b_new
        log_likelihood = new_log_likelihood
        if biggest_change < tolerance:
            converged = True
            break

    parameters = [
        ItemParameters(a=a_hat[item], b=b_hat[item]) for item in range(items)
    ]
    return CalibrationResult(
        parameters=parameters,
        iterations=iteration,
        converged=converged,
        log_likelihood=log_likelihood,
    )


def _m_step(
    nodes: List[float],
    expected_n: List[float],
    expected_r: List[float],
    a_start: float,
    b_start: float,
    a_bounds: Tuple[float, float],
    b_bounds: Tuple[float, float],
    newton_iterations: int = 25,
) -> Tuple[float, float]:
    """Newton-Raphson on the 2PL item log-likelihood.

    Parameterized as logit P = α·θ + β (so a = α, b = −β/α), which makes
    the problem a weighted logistic regression with well-behaved
    Hessian.
    """
    alpha = a_start
    beta = -a_start * b_start
    for _ in range(newton_iterations):
        g_alpha = g_beta = 0.0
        h_aa = h_ab = h_bb = 0.0
        for node, n_k, r_k in zip(nodes, expected_n, expected_r):
            if n_k <= 0:
                continue
            p = _p2pl(node, alpha, -beta / alpha if alpha else 0.0)
            # equivalently logistic(alpha*node + beta); compute directly:
            z = alpha * node + beta
            if z > 700:
                p = 1.0 - 1e-9
            elif z < -700:
                p = 1e-9
            else:
                p = min(max(1.0 / (1.0 + math.exp(-z)), 1e-9), 1.0 - 1e-9)
            residual = r_k - n_k * p
            w = n_k * p * (1.0 - p)
            g_alpha += residual * node
            g_beta += residual
            h_aa += w * node * node
            h_ab += w * node
            h_bb += w
        # solve 2x2 Newton system H [da, db]^T = g
        determinant = h_aa * h_bb - h_ab * h_ab
        if determinant <= 1e-12:
            break
        delta_alpha = (g_alpha * h_bb - g_beta * h_ab) / determinant
        delta_beta = (g_beta * h_aa - g_alpha * h_ab) / determinant
        alpha += delta_alpha
        beta += delta_beta
        alpha = min(max(alpha, a_bounds[0]), a_bounds[1])
        if abs(delta_alpha) < 1e-7 and abs(delta_beta) < 1e-7:
            break
    b = -beta / alpha if alpha else 0.0
    b = min(max(b, b_bounds[0]), b_bounds[1])
    return alpha, b
