"""Assessment feedback for learners (the paper's second future-work item).

Turns a graded sitting into learner-facing feedback: per-concept mastery
(fraction of that concept's points earned), the cognition levels where
the learner struggled, and study suggestions — the learner-side
counterpart of the teacher advice in :mod:`repro.core.advice`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.cognition import CognitionLevel
from repro.core.errors import AnalysisError
from repro.delivery.scoring import GradedSitting
from repro.exams.exam import Exam

__all__ = ["ConceptMastery", "LearnerFeedback", "build_feedback"]


@dataclass(frozen=True)
class ConceptMastery:
    """Earned vs available points on one concept."""

    concept: str
    earned: float
    available: float

    @property
    def fraction(self) -> float:
        """Earned share of the available points on this concept."""
        return self.earned / self.available if self.available else 0.0


@dataclass
class LearnerFeedback:
    """Feedback for one learner's sitting."""

    learner_id: str
    exam_id: str
    percent: float
    mastery: List[ConceptMastery]
    weak_levels: List[CognitionLevel]
    suggestions: List[str]

    def render(self) -> str:
        """Learner-facing text: score, per-concept bars, suggestions."""
        lines = [
            f"Feedback for {self.learner_id} on {self.exam_id}: "
            f"{self.percent:.0f}%"
        ]
        for record in self.mastery:
            bar = "#" * int(record.fraction * 20)
            lines.append(
                f"  {record.concept:<12} {record.fraction:>4.0%} |{bar}"
            )
        if self.weak_levels:
            levels = ", ".join(level.label for level in self.weak_levels)
            lines.append(f"  struggled at: {levels}")
        for suggestion in self.suggestions:
            lines.append(f"  - {suggestion}")
        return "\n".join(lines)


def build_feedback(
    exam: Exam,
    sitting: GradedSitting,
    mastery_threshold: float = 0.6,
) -> LearnerFeedback:
    """Build learner feedback from a graded sitting.

    Concepts and levels come from item tags; untagged items contribute
    to the total but not to any concept row.
    """
    if not 0.0 < mastery_threshold <= 1.0:
        raise AnalysisError(
            f"mastery threshold must be in (0, 1], got {mastery_threshold}"
        )
    concept_points: Dict[str, Tuple[float, float]] = {}
    level_points: Dict[CognitionLevel, Tuple[float, float]] = {}
    for item in exam.items:
        score = sitting.scores.get(item.item_id)
        if score is None or score.max_points == 0:
            continue
        if item.subject:
            earned, available = concept_points.get(item.subject, (0.0, 0.0))
            concept_points[item.subject] = (
                earned + score.points,
                available + score.max_points,
            )
        if item.cognition_level is not None:
            earned, available = level_points.get(
                item.cognition_level, (0.0, 0.0)
            )
            level_points[item.cognition_level] = (
                earned + score.points,
                available + score.max_points,
            )
    mastery = [
        ConceptMastery(concept=concept, earned=earned, available=available)
        for concept, (earned, available) in concept_points.items()
    ]
    mastery.sort(key=lambda record: record.fraction)
    weak_levels = sorted(
        level
        for level, (earned, available) in level_points.items()
        if available and earned / available < mastery_threshold
    )
    suggestions = [
        f"Review {record.concept}: you earned {record.earned:g} of "
        f"{record.available:g} points."
        for record in mastery
        if record.fraction < mastery_threshold
    ]
    if not suggestions:
        suggestions = ["Solid performance across all concepts - keep it up."]
    return LearnerFeedback(
        learner_id=sitting.learner_id,
        exam_id=sitting.exam_id,
        percent=sitting.percent,
        mastery=mastery,
        weak_levels=weak_levels,
        suggestions=suggestions,
    )
