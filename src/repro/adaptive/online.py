"""Online adaptive testing: CAT wired into the delivery tier.

The offline :mod:`repro.adaptive` machinery (IRT, CAT loops, EAP
estimation, 2PL calibration) gains an online consumer here — three
pieces, each designed around the delivery tier's constraints:

* :class:`AdaptivePolicy` — the *authored* adaptive configuration that
  rides on an :class:`~repro.exams.exam.Exam` (stopping rules, prior,
  ability grid, and optional explicit per-item 2PL/3PL parameters).
  Items without explicit parameters are seeded from their stored
  classical indices (difficulty/discrimination → b/a, the ontology-
  difficulty seeding idea), so adaptive sittings work from day one on
  an uncalibrated bank.  The policy round-trips through the exam-bank
  record format, so offering an adaptive exam journals and replicates
  it like any other exam.

* :class:`ItemInformationTable` — the hot-path data structure.  Built
  **once per pool at exam install** (and again on a calibration swap):
  an ability-grid × item matrix of Fisher information plus the matching
  log-P / log-(1−P) matrices.  Online item selection is then an argmax
  over one table row, and the ability update is an **incremental
  log-posterior** accumulation over the same grid — zero IRT function
  evaluations per request.  The grids and clamps match
  :func:`~repro.adaptive.estimation.estimate_ability_eap` exactly, so
  the table argmax equals the exact :func:`~repro.adaptive.irt.
  item_information` argmax at every grid point (a hypothesis property).

* :class:`AdaptiveSession` — the per-sitting state machine: a pure
  deterministic function of (table, recorded response sequence).  The
  LMS replays the same answer events on recovery and rebuilds the same
  item sequence and theta trajectory bit-identically — the WAL needs no
  new per-answer payload, because selection is deterministic.

The calibration loop closes the circle: :func:`collect_calibration_
matrix` harvests completed sittings from a recovered WAL (missing =
never administered, not wrong), :func:`~repro.adaptive.item_calibration.
calibrate_2pl` re-fits, and :func:`write_calibration_snapshot` /
:func:`latest_calibration_snapshot` persist versioned parameter sets
that a restarted server hot-swaps via :meth:`~repro.lms.lms.Lms.
apply_calibration` (journaled as a ``calibrate`` event).
"""

from __future__ import annotations

import json
import math
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.errors import EstimationError
from repro.adaptive.calibration import difficulty_to_b, discrimination_to_a
from repro.adaptive.irt import (
    ItemParameters,
    item_information,
    probability_correct,
)

__all__ = [
    "AdaptivePolicy",
    "ItemInformationTable",
    "AdaptiveSession",
    "collect_calibration_matrix",
    "write_calibration_snapshot",
    "latest_calibration_snapshot",
    "list_calibration_snapshots",
]

#: probability clamp shared with estimate_ability_eap, so table-driven
#: posteriors and the exact estimator agree on degenerate items
_P_CLAMP = 1e-9

_SNAPSHOT_FORMAT = "mine-calibration-v1"
_SNAPSHOT_RE = re.compile(r"^params-(?P<exam>.+)-v(?P<version>\d+)\.json$")


@dataclass
class AdaptivePolicy:
    """The authored adaptive configuration of an exam.

    Stopping rules mirror :class:`~repro.adaptive.cat.CatConfig`; the
    grid settings shape the precomputed information table.  ``parameters``
    optionally pins explicit IRT parameters per item id — analyzable
    items without an entry are seeded from their stored classical
    indices (P → b, D → a) or neutral defaults.
    """

    max_items: int = 10
    min_items: int = 3
    se_target: float = 0.35
    prior_sd: float = 1.0
    grid_points: int = 61
    grid_half_width: float = 4.5
    parameters: Dict[str, ItemParameters] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.max_items < 1:
            raise EstimationError("max_items must be positive")
        if not 1 <= self.min_items <= self.max_items:
            raise EstimationError(
                f"min_items must be in [1, max_items], got {self.min_items}"
            )
        if self.se_target <= 0:
            raise EstimationError("se_target must be positive")
        if self.prior_sd <= 0:
            raise EstimationError("prior_sd must be positive")
        if self.grid_points < 3:
            raise EstimationError(
                f"need at least 3 grid points, got {self.grid_points}"
            )
        if self.grid_half_width <= 0:
            raise EstimationError("grid_half_width must be positive")

    def validate(self, exam) -> None:
        """Check the policy against the exam it is attached to."""
        analyzable = {item.item_id for item in exam.analyzable_items()}
        if not analyzable:
            raise EstimationError(
                f"adaptive exam {exam.exam_id!r} has no analyzable "
                f"(selection-style) items to select from"
            )
        unknown = sorted(set(self.parameters) - analyzable)
        if unknown:
            raise EstimationError(
                f"adaptive policy of {exam.exam_id!r} parameterizes items "
                f"not in the exam's analyzable pool: {unknown}"
            )

    def pool_for(self, exam) -> Dict[str, ItemParameters]:
        """The exam's CAT pool: explicit parameters, else seeded.

        Seeding follows :mod:`repro.adaptive.calibration`: stored
        classical indices (Item Difficulty Index P, Item Discrimination
        Index D) map onto b/a; items with no statistics get neutral
        defaults (a=1, b=0).
        """
        pool: Dict[str, ItemParameters] = {}
        for item in exam.analyzable_items():
            explicit = self.parameters.get(item.item_id)
            if explicit is not None:
                pool[item.item_id] = explicit
                continue
            individual = item.metadata.assessment.individual_test
            p = individual.item_difficulty_index
            d = individual.item_discrimination_index
            pool[item.item_id] = ItemParameters(
                a=discrimination_to_a(d) if d is not None else 1.0,
                b=difficulty_to_b(p) if p is not None else 0.0,
            )
        return pool

    # -- wire format (rides the exam-bank record) --------------------------------

    def to_record(self) -> Dict[str, object]:
        """Serialize for :func:`repro.bank.exambank.exam_to_record`."""
        return {
            "max_items": self.max_items,
            "min_items": self.min_items,
            "se_target": self.se_target,
            "prior_sd": self.prior_sd,
            "grid_points": self.grid_points,
            "grid_half_width": self.grid_half_width,
            "parameters": {
                item_id: {"a": params.a, "b": params.b, "c": params.c}
                for item_id, params in sorted(self.parameters.items())
            },
        }

    @classmethod
    def from_record(cls, record: Dict[str, object]) -> "AdaptivePolicy":
        """Restore from the exam-bank wire record."""
        return cls(
            max_items=int(record.get("max_items", 10)),
            min_items=int(record.get("min_items", 3)),
            se_target=float(record.get("se_target", 0.35)),
            prior_sd=float(record.get("prior_sd", 1.0)),
            grid_points=int(record.get("grid_points", 61)),
            grid_half_width=float(record.get("grid_half_width", 4.5)),
            parameters=parameters_from_record(record.get("parameters", {})),
        )


def parameters_to_record(
    pool: Dict[str, ItemParameters]
) -> Dict[str, Dict[str, float]]:
    """A pool as wire-shaped JSON (sorted for stable files)."""
    return {
        item_id: {"a": params.a, "b": params.b, "c": params.c}
        for item_id, params in sorted(pool.items())
    }


def parameters_from_record(record) -> Dict[str, ItemParameters]:
    """The inverse of :func:`parameters_to_record`."""
    pool: Dict[str, ItemParameters] = {}
    for item_id, entry in dict(record).items():
        pool[str(item_id)] = ItemParameters(
            a=float(entry.get("a", 1.0)),
            b=float(entry.get("b", 0.0)),
            c=float(entry.get("c", 0.0)),
        )
    return pool


class ItemInformationTable:
    """Precomputed ability-grid × item tables for O(1) online CAT.

    Three matrices, all ``grid_points × n_items`` with items in sorted-id
    order:

    * ``info[k][i]`` — Fisher information of item *i* at grid theta *k*
      (drives selection: argmax over one row);
    * ``logp[k][i]`` / ``logq[k][i]`` — clamped log P(correct) and
      log P(wrong) (drive the incremental EAP posterior update).

    Built once per pool (exam install or calibration swap); the online
    hot path only ever reads rows/columns — no ``exp``/``log`` of model
    equations per request.
    """

    __slots__ = (
        "item_ids",
        "grid",
        "info",
        "logp",
        "logq",
        "log_prior",
        "version",
        "_index",
        "_lo",
        "_step",
    )

    def __init__(
        self,
        item_ids: List[str],
        grid: List[float],
        info: List[List[float]],
        logp: List[List[float]],
        logq: List[List[float]],
        log_prior: List[float],
        version: int = 0,
    ) -> None:
        self.item_ids = item_ids
        self.grid = grid
        self.info = info
        self.logp = logp
        self.logq = logq
        self.log_prior = log_prior
        self.version = version
        self._index = {item_id: i for i, item_id in enumerate(item_ids)}
        self._lo = grid[0]
        self._step = grid[1] - grid[0] if len(grid) > 1 else 1.0

    @classmethod
    def build(
        cls,
        pool: Dict[str, ItemParameters],
        grid_points: int = 61,
        grid_half_width: float = 4.5,
        prior_sd: float = 1.0,
        version: int = 0,
    ) -> "ItemInformationTable":
        """Evaluate the IRT model over the grid, once, at install time."""
        if not pool:
            raise EstimationError("cannot build an information table from "
                                  "an empty pool")
        if grid_points < 3:
            raise EstimationError(
                f"need at least 3 grid points, got {grid_points}"
            )
        step = 2.0 * grid_half_width / (grid_points - 1)
        grid = [-grid_half_width + i * step for i in range(grid_points)]
        item_ids = sorted(pool)
        info: List[List[float]] = []
        logp: List[List[float]] = []
        logq: List[List[float]] = []
        for theta in grid:
            info_row: List[float] = []
            logp_row: List[float] = []
            logq_row: List[float] = []
            for item_id in item_ids:
                params = pool[item_id]
                info_row.append(item_information(theta, params))
                p = probability_correct(theta, params)
                p = min(max(p, _P_CLAMP), 1.0 - _P_CLAMP)
                logp_row.append(math.log(p))
                logq_row.append(math.log(1.0 - p))
            info.append(info_row)
            logp.append(logp_row)
            logq.append(logq_row)
        log_prior = [-0.5 * (theta / prior_sd) ** 2 for theta in grid]
        return cls(item_ids, grid, info, logp, logq, log_prior, version)

    def __len__(self) -> int:
        return len(self.item_ids)

    def __contains__(self, item_id: str) -> bool:
        return item_id in self._index

    def grid_index(self, theta: float) -> int:
        """The nearest grid row for an ability value (clamped)."""
        k = int(round((theta - self._lo) / self._step))
        if k < 0:
            return 0
        last = len(self.grid) - 1
        return last if k > last else k

    def select(
        self, theta: float, administered: "set[str]"
    ) -> Optional[str]:
        """Max-information unused item at the grid row nearest ``theta``.

        Pure table lookup: one row scan with strict ``>`` over sorted
        item ids — the same deterministic tie-break as
        :func:`~repro.adaptive.cat.select_next_item`, but with zero IRT
        evaluation.  Returns None when every item is administered.
        """
        row = self.info[self.grid_index(theta)]
        best_id: Optional[str] = None
        best_information = -1.0
        for i, item_id in enumerate(self.item_ids):
            if item_id in administered:
                continue
            information = row[i]
            if information > best_information:
                best_information = information
                best_id = item_id
        return best_id


class AdaptiveSession:
    """One online adaptive sitting: table-driven selection + EAP.

    State is an incremental log-posterior over the table's ability grid:
    each recorded response adds the answered item's ``logp``/``logq``
    column, then theta/SE are the posterior mean/SD.  The whole session
    is a deterministic function of (table, response sequence), which is
    what makes WAL replay and snapshot restore bit-identical — recovery
    simply re-records the same ``(item_id, correct)`` sequence.
    """

    __slots__ = (
        "table",
        "max_items",
        "min_items",
        "se_target",
        "administered",
        "responses",
        "log_posterior",
        "theta",
        "standard_error",
        "trajectory",
    )

    def __init__(
        self,
        table: ItemInformationTable,
        max_items: int = 10,
        min_items: int = 3,
        se_target: float = 0.35,
    ) -> None:
        if max_items < 1:
            raise EstimationError("max_items must be positive")
        if not 1 <= min_items <= max_items:
            raise EstimationError(
                f"min_items must be in [1, max_items], got {min_items}"
            )
        if se_target <= 0:
            raise EstimationError("se_target must be positive")
        self.table = table
        self.max_items = max_items
        self.min_items = min_items
        self.se_target = se_target
        self.administered: List[str] = []
        self.responses: List[bool] = []
        self.log_posterior = list(table.log_prior)
        self.theta, self.standard_error = _eap(
            table.grid, self.log_posterior
        )
        #: (theta, SE) after each recorded response — the trajectory the
        #: replay property compares bit-for-bit
        self.trajectory: List[Tuple[float, float]] = []

    @classmethod
    def for_exam(cls, table: ItemInformationTable, policy: AdaptivePolicy
                 ) -> "AdaptiveSession":
        """A session configured by an exam's authored policy."""
        return cls(
            table,
            max_items=policy.max_items,
            min_items=policy.min_items,
            se_target=policy.se_target,
        )

    @property
    def step(self) -> int:
        """Responses recorded so far."""
        return len(self.administered)

    def next_item(self) -> Optional[str]:
        """The item the policy wants next; None when the sitting is done."""
        if self.is_done():
            return None
        return self.table.select(self.theta, set(self.administered))

    def record(self, item_id: str, correct: bool) -> None:
        """Fold one scored response into the posterior (O(grid))."""
        try:
            column = self.table._index[item_id]
        except KeyError:
            raise EstimationError(
                f"item {item_id!r} is not in the adaptive pool"
            ) from None
        if item_id in self.administered:
            raise EstimationError(f"item {item_id!r} already administered")
        self.administered.append(item_id)
        self.responses.append(bool(correct))
        rows = self.table.logp if correct else self.table.logq
        posterior = self.log_posterior
        for k in range(len(posterior)):
            posterior[k] += rows[k][column]
        self.theta, self.standard_error = _eap(self.table.grid, posterior)
        self.trajectory.append((self.theta, self.standard_error))

    def is_done(self) -> bool:
        """True when any stopping rule is met."""
        return self.stop_reason() is not None

    def stop_reason(self) -> Optional[str]:
        """Why the sitting stopped: ``max_items`` / ``pool_exhausted`` /
        ``se_target``, or None while items remain to administer."""
        count = len(self.administered)
        if count >= self.max_items:
            return "max_items"
        if count >= len(self.table):
            return "pool_exhausted"
        if count >= self.min_items and (
            self.standard_error <= self.se_target
        ):
            return "se_target"
        return None

    def status(self) -> Dict[str, object]:
        """A wire-shaped view (the ``next-item`` route payload)."""
        item_id = self.next_item()
        return {
            "item_id": item_id,
            "done": item_id is None,
            "reason": self.stop_reason(),
            "step": self.step,
            "theta": self.theta,
            "standard_error": self.standard_error,
            "administered": list(self.administered),
            "table_version": self.table.version,
        }


def _eap(grid: List[float], log_posterior: List[float]
         ) -> Tuple[float, float]:
    """Posterior mean and SD by exp-normalize over the grid."""
    peak = max(log_posterior)
    weights = [math.exp(value - peak) for value in log_posterior]
    total = sum(weights)
    mean = sum(t * w for t, w in zip(grid, weights)) / total
    variance = (
        sum(w * (t - mean) ** 2 for t, w in zip(grid, weights)) / total
    )
    return mean, math.sqrt(max(variance, 1e-12))


# -- the calibration loop -------------------------------------------------------


def collect_calibration_matrix(
    lms, exam_id: str
) -> Tuple[List[str], List[List[Optional[bool]]]]:
    """Harvest a (possibly sparse) response matrix from an LMS.

    One row per learner (latest submitted sitting wins, matching the
    analysis engines), one column per analyzable item in sorted-id
    order.  ``None`` marks an item the learner was never served — an
    adaptive sitting administers a subset, and treating the rest as
    wrong would wreck the fit.  Administered-ness comes from the graded
    record: a score with ``selected is None`` was never answered.
    """
    exam = lms.exam(exam_id)
    item_ids = sorted(item.item_id for item in exam.analyzable_items())
    latest: Dict[str, object] = {}
    for sitting in lms.results_for(exam_id):
        latest.pop(sitting.learner_id, None)
        latest[sitting.learner_id] = sitting
    matrix: List[List[Optional[bool]]] = []
    for learner_id in sorted(latest):
        scores = latest[learner_id].scores
        row: List[Optional[bool]] = []
        for item_id in item_ids:
            score = scores.get(item_id)
            if score is None or score.selected is None:
                row.append(None)
            else:
                row.append(bool(score.correct))
        matrix.append(row)
    return item_ids, matrix


def write_calibration_snapshot(
    directory: "str | Path",
    exam_id: str,
    version: int,
    pool: Dict[str, ItemParameters],
    diagnostics: Optional[Dict[str, object]] = None,
) -> Path:
    """Persist one versioned parameter snapshot (atomic enough: small
    JSON, distinct filename per version)."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    target = path / f"params-{exam_id}-v{version}.json"
    payload = {
        "format": _SNAPSHOT_FORMAT,
        "exam_id": exam_id,
        "version": int(version),
        "parameters": parameters_to_record(pool),
        "diagnostics": diagnostics or {},
    }
    target.write_text(
        json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8"
    )
    return target


def list_calibration_snapshots(
    directory: "str | Path",
) -> Dict[str, List[int]]:
    """Every snapshot version on disk, per exam id (sorted ascending)."""
    path = Path(directory)
    found: Dict[str, List[int]] = {}
    if not path.is_dir():
        return found
    for entry in path.iterdir():
        match = _SNAPSHOT_RE.match(entry.name)
        if match is None:
            continue
        found.setdefault(match.group("exam"), []).append(
            int(match.group("version"))
        )
    for versions in found.values():
        versions.sort()
    return found


def latest_calibration_snapshot(
    directory: "str | Path", exam_id: str
) -> Optional[Tuple[int, Dict[str, ItemParameters]]]:
    """The newest persisted parameter set for an exam, or None."""
    versions = list_calibration_snapshots(directory).get(exam_id)
    if not versions:
        return None
    version = versions[-1]
    path = Path(directory) / f"params-{exam_id}-v{version}.json"
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("format") != _SNAPSHOT_FORMAT:
        raise EstimationError(
            f"unrecognized calibration snapshot format in {path.name}: "
            f"{payload.get('format')!r}"
        )
    return version, parameters_from_record(payload.get("parameters", {}))
