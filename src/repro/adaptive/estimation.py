"""Ability estimation from response vectors.

Two standard estimators:

* :func:`estimate_ability_map` — maximum a posteriori with a Normal(0, σ)
  prior, found by Newton iterations on the log-posterior.  The prior
  keeps all-correct/all-wrong vectors finite, which a pure MLE cannot.
* :func:`estimate_ability_eap` — expected a posteriori over a quadrature
  grid; robust, derivative-free, and the usual choice inside CAT loops.

Both return (estimate, standard_error).
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.core.errors import EstimationError
from repro.adaptive.irt import ItemParameters, item_information, probability_correct

__all__ = ["estimate_ability_map", "estimate_ability_eap"]


def _check_inputs(
    responses: Sequence[bool], parameters: Sequence[ItemParameters]
) -> None:
    if not responses:
        raise EstimationError("cannot estimate ability from zero responses")
    if len(responses) != len(parameters):
        raise EstimationError(
            f"{len(responses)} responses but {len(parameters)} item parameters"
        )


def estimate_ability_map(
    responses: Sequence[bool],
    parameters: Sequence[ItemParameters],
    prior_sd: float = 2.0,
    max_iterations: int = 50,
    tolerance: float = 1e-6,
) -> Tuple[float, float]:
    """MAP ability estimate via Newton-Raphson on the log-posterior."""
    _check_inputs(responses, parameters)
    if prior_sd <= 0:
        raise EstimationError(f"prior sd must be positive, got {prior_sd}")
    theta = 0.0
    prior_precision = 1.0 / (prior_sd ** 2)
    for _ in range(max_iterations):
        gradient = -theta * prior_precision
        curvature = -prior_precision
        for correct, params in zip(responses, parameters):
            p = probability_correct(theta, params)
            p = min(max(p, 1e-9), 1.0 - 1e-9)
            # d logL / d theta for the 3PL
            weight = params.a * (p - params.c) / (p * (1.0 - params.c))
            gradient += weight * ((1.0 if correct else 0.0) - p)
            curvature -= item_information(theta, params)
        if curvature >= 0:
            raise EstimationError("non-concave posterior encountered")
        step = gradient / curvature
        theta -= step
        theta = max(-6.0, min(6.0, theta))
        if abs(step) < tolerance:
            break
    information = sum(item_information(theta, p) for p in parameters)
    total = information + prior_precision
    return theta, 1.0 / math.sqrt(total)


def estimate_ability_eap(
    responses: Sequence[bool],
    parameters: Sequence[ItemParameters],
    prior_sd: float = 1.0,
    grid_points: int = 61,
    grid_half_width: float = 4.5,
) -> Tuple[float, float]:
    """EAP ability estimate over a quadrature grid with a Normal prior."""
    _check_inputs(responses, parameters)
    if grid_points < 3:
        raise EstimationError(f"need at least 3 grid points, got {grid_points}")
    step = 2.0 * grid_half_width / (grid_points - 1)
    grid: List[float] = [-grid_half_width + i * step for i in range(grid_points)]
    log_posterior: List[float] = []
    for theta in grid:
        log_p = -0.5 * (theta / prior_sd) ** 2
        for correct, params in zip(responses, parameters):
            p = probability_correct(theta, params)
            p = min(max(p, 1e-9), 1.0 - 1e-9)
            log_p += math.log(p) if correct else math.log(1.0 - p)
        log_posterior.append(log_p)
    peak = max(log_posterior)
    weights = [math.exp(value - peak) for value in log_posterior]
    total = sum(weights)
    mean = sum(theta * weight for theta, weight in zip(grid, weights)) / total
    variance = (
        sum(weight * (theta - mean) ** 2 for theta, weight in zip(grid, weights))
        / total
    )
    return mean, math.sqrt(max(variance, 1e-12))
