"""Item response theory primitives for the adaptive-testing extension.

The paper's conclusion: "In the near future, we will add the adaptive
test algorithm and assessment feedback in our assessment system."  This
package implements that future work on the substrate the rest of the
library provides.

This module holds the IRT mathematics: the 1PL/2PL/3PL response
probability (shared with :mod:`repro.sim.learner_model`) and Fisher item
information, which drives adaptive item selection.
"""

from __future__ import annotations

import math

from repro.sim.learner_model import ItemParameters, probability_correct

__all__ = ["ItemParameters", "probability_correct", "item_information", "test_information"]


def item_information(ability: float, params: ItemParameters) -> float:
    """Fisher information of one item at an ability level.

    For the 3PL model::

        I(θ) = a² · (Q/P) · ((P − c) / (1 − c))²

    with P the response probability and Q = 1 − P.  Information peaks
    near θ = b and grows with a²; guessing (c > 0) depresses it.
    """
    p = probability_correct(ability, params)
    q = 1.0 - p
    if p <= 0.0 or q <= 0.0:
        return 0.0
    adjusted = (p - params.c) / (1.0 - params.c)
    return (params.a ** 2) * (q / p) * (adjusted ** 2)


def test_information(ability: float, parameters) -> float:
    """Total information of a set of items at one ability."""
    return sum(item_information(ability, params) for params in parameters)
