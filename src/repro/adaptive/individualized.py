"""Individualized test assembly.

The paper's abstract promises "an e-learning system, with adaptive
learning content and **individualized tests**".  Where :mod:`repro.
adaptive.cat` adapts *during* a sitting, this module assembles a fixed
form tailored to one learner *before* the sitting: items are drawn from
a calibrated pool to maximize information at the learner's estimated
ability, subject to optional per-concept coverage.

The measurement logic is the same maximum-information criterion as CAT;
the difference is operational — an individualized fixed form can be
printed, proctored, and analyzed with the paper's §4.1 pipeline like any
other exam.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.errors import EstimationError
from repro.adaptive.irt import ItemParameters, item_information
from repro.bank.itembank import ItemBank
from repro.exams.authoring import ExamBuilder
from repro.exams.exam import Exam

__all__ = ["select_individualized_items", "assemble_individualized_exam"]


def select_individualized_items(
    pool: Dict[str, ItemParameters],
    ability: float,
    length: int,
) -> List[str]:
    """The ``length`` pool items with maximum information at ``ability``.

    Ties break on item id so selection is deterministic.
    """
    if length < 1:
        raise EstimationError(f"test length must be positive, got {length}")
    if length > len(pool):
        raise EstimationError(
            f"pool has {len(pool)} items; cannot select {length}"
        )
    ranked = sorted(
        pool,
        key=lambda item_id: (-item_information(ability, pool[item_id]), item_id),
    )
    return ranked[:length]


def assemble_individualized_exam(
    exam_id: str,
    title: str,
    bank: ItemBank,
    pool: Dict[str, ItemParameters],
    ability: float,
    length: int,
    per_concept_minimum: Optional[Dict[str, int]] = None,
    time_limit_seconds: Optional[float] = None,
) -> Exam:
    """Assemble a learner-specific exam from the bank.

    ``pool`` maps bank item ids to calibrated parameters (see
    :func:`repro.adaptive.calibration.calibrate_pool_from_bank`);
    ``ability`` is the learner's estimated θ.  With
    ``per_concept_minimum`` (concept → count), each concept first
    receives its most-informative items, then the remaining slots are
    filled globally — individualization that still covers the syllabus.
    """
    if length < 1:
        raise EstimationError(f"test length must be positive, got {length}")
    available = {
        item_id: params
        for item_id, params in pool.items()
        if item_id in bank
    }
    if len(available) < length:
        raise EstimationError(
            f"only {len(available)} calibrated bank items; need {length}"
        )
    chosen: List[str] = []
    if per_concept_minimum:
        total_minimum = sum(per_concept_minimum.values())
        if total_minimum > length:
            raise EstimationError(
                f"per-concept minimums total {total_minimum}, exceeding the "
                f"test length {length}"
            )
        for concept, minimum in per_concept_minimum.items():
            concept_pool = {
                item_id: params
                for item_id, params in available.items()
                if bank.get(item_id).subject == concept
                and item_id not in chosen
            }
            if len(concept_pool) < minimum:
                raise EstimationError(
                    f"concept {concept!r} has {len(concept_pool)} calibrated "
                    f"items; need {minimum}"
                )
            chosen.extend(
                select_individualized_items(concept_pool, ability, minimum)
            )
    remainder_pool = {
        item_id: params
        for item_id, params in available.items()
        if item_id not in chosen
    }
    remaining = length - len(chosen)
    if remaining > 0:
        chosen.extend(
            select_individualized_items(remainder_pool, ability, remaining)
        )
    builder = ExamBuilder(exam_id, title)
    for item_id in chosen:
        builder.add_item(bank.get(item_id))
    if time_limit_seconds is not None:
        builder.time_limit(time_limit_seconds)
    return builder.build()
