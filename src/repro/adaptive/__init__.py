"""The adaptive-testing and feedback extension — the paper's stated
future work ("we will add the adaptive test algorithm and assessment
feedback"), built on IRT."""

from repro.adaptive.calibration import (
    calibrate_pool_from_bank,
    difficulty_to_b,
    discrimination_to_a,
)
from repro.adaptive.cat import CatConfig, CatSession, select_next_item
from repro.adaptive.estimation import (
    estimate_ability_eap,
    estimate_ability_map,
)
from repro.adaptive.item_calibration import CalibrationResult, calibrate_2pl
from repro.adaptive.individualized import (
    assemble_individualized_exam,
    select_individualized_items,
)
from repro.adaptive.feedback import (
    ConceptMastery,
    LearnerFeedback,
    build_feedback,
)
from repro.adaptive.irt import (
    ItemParameters,
    item_information,
    probability_correct,
    test_information,
)
from repro.adaptive.online import (
    AdaptivePolicy,
    AdaptiveSession,
    ItemInformationTable,
    collect_calibration_matrix,
    latest_calibration_snapshot,
    list_calibration_snapshots,
    write_calibration_snapshot,
)

__all__ = [
    "AdaptivePolicy",
    "AdaptiveSession",
    "ItemInformationTable",
    "collect_calibration_matrix",
    "write_calibration_snapshot",
    "latest_calibration_snapshot",
    "list_calibration_snapshots",
    "difficulty_to_b",
    "discrimination_to_a",
    "calibrate_pool_from_bank",
    "select_individualized_items",
    "assemble_individualized_exam",
    "calibrate_2pl",
    "CalibrationResult",
    "ItemParameters",
    "probability_correct",
    "item_information",
    "test_information",
    "estimate_ability_map",
    "estimate_ability_eap",
    "CatSession",
    "CatConfig",
    "select_next_item",
    "ConceptMastery",
    "LearnerFeedback",
    "build_feedback",
]
