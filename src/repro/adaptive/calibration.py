"""Calibrating IRT parameters from the paper's classical indices.

The bridge between the paper's §4.1 statistics and the adaptive-testing
extension: an item bank whose items carry stored Item Difficulty Index
(P) and Item Discrimination Index (D) can seed a CAT pool without a
separate IRT calibration study, using the standard approximations:

* difficulty — ``b ≈ −logit(P) = ln((1 − P) / P)`` (an item everyone
  gets right sits far below the cohort mean; P = 0.5 maps to b = 0);
* discrimination — D is mapped onto ``a`` by a monotone stretch
  ``a ≈ max(a_min, k·D)`` with k chosen so the paper's green threshold
  (D = 0.30) lands at a modest a ≈ 0.75, and a strong D = 0.8 at a = 2.

These are seeding heuristics, not estimators: once response matrices
exist, re-fit with :func:`repro.adaptive.item_calibration.calibrate_2pl`
(full MML/EM estimation).  The heuristics are monotone and bounded,
which is all CAT item selection needs to get started.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.core.errors import EstimationError
from repro.adaptive.irt import ItemParameters
from repro.bank.itembank import ItemBank

__all__ = ["difficulty_to_b", "discrimination_to_a", "calibrate_pool_from_bank"]

#: Classical P values are clamped into this open interval before the
#: logit so stored extremes (0.0 / 1.0) stay finite.
_P_FLOOR = 0.02
_A_SCALE = 2.5
_A_MIN = 0.3
_A_MAX = 2.5


def difficulty_to_b(p: float) -> float:
    """Map a classical difficulty index P to an IRT b (−logit)."""
    if not 0.0 <= p <= 1.0:
        raise EstimationError(f"P must be a proportion, got {p}")
    clamped = min(max(p, _P_FLOOR), 1.0 - _P_FLOOR)
    return math.log((1.0 - clamped) / clamped)


def discrimination_to_a(d: float) -> float:
    """Map a classical discrimination index D to an IRT a.

    Monotone, clamped to [0.3, 2.5]; negative D (a broken item) maps to
    the floor — such items carry no information and a CAT will avoid
    them naturally.
    """
    if not -1.0 <= d <= 1.0:
        raise EstimationError(f"D must be in [-1, 1], got {d}")
    return min(max(_A_SCALE * d, _A_MIN), _A_MAX)


def calibrate_pool_from_bank(
    bank: ItemBank,
    default_a: float = 1.0,
    default_b: float = 0.0,
) -> Dict[str, ItemParameters]:
    """Build a CAT pool from a bank's stored classical indices.

    Items with stored P/D metadata get calibrated parameters; items
    without statistics (new questions) get the defaults.  Only objective
    items enter the pool — essays and questionnaires cannot be
    auto-scored by a CAT loop.
    """
    if default_a <= 0:
        raise EstimationError(f"default a must be positive, got {default_a}")
    pool: Dict[str, ItemParameters] = {}
    for item in bank:
        if not item.is_objective():
            continue
        individual = item.metadata.assessment.individual_test
        p: Optional[float] = individual.item_difficulty_index
        d: Optional[float] = individual.item_discrimination_index
        pool[item.item_id] = ItemParameters(
            a=discrimination_to_a(d) if d is not None else default_a,
            b=difficulty_to_b(p) if p is not None else default_b,
        )
    if not pool:
        raise EstimationError("bank has no objective items to calibrate")
    return pool
