"""Traffic-light signal representation (paper §4.1.2, Tables 2–3, Figure 2).

Table 3 maps the Item Discrimination Index D to advice via light signals::

    Status            Light signal   D
    Good              Green          0.30 and higher
    Fix               Yellow         0.20 - 0.29        (rule matches)
    Eliminate or fix  Red            0.19 and lower

Figure 2 then shows the whole test as a row of lights, one per question —
a teacher can see at a glance which questions are fine, which need fixing,
and which should be eliminated.  :class:`SignalPolicy` holds the cut
points (parameterized for the ablation bench); :func:`render_signal_board`
reproduces Figure 2 as text.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.core.errors import AnalysisError

__all__ = [
    "Signal",
    "SignalPolicy",
    "DEFAULT_POLICY",
    "render_signal_board",
]


class Signal(enum.Enum):
    """The three light signals of Table 3, ordered worst-first."""

    RED = "red"
    YELLOW = "yellow"
    GREEN = "green"

    @property
    def status(self) -> str:
        """Table 3's status column for this light."""
        return {
            Signal.GREEN: "Good",
            Signal.YELLOW: "Fix",
            Signal.RED: "Eliminate or fix",
        }[self]

    @property
    def glyph(self) -> str:
        """Single-character rendering used by the Figure 2 board."""
        return {Signal.GREEN: "G", Signal.YELLOW: "Y", Signal.RED: "R"}[self]

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class SignalPolicy:
    """Cut points mapping D to a light signal.

    ``green_min`` — D at or above this is green (paper: 0.30);
    ``yellow_min`` — D at or above this (but below ``green_min``) is
    yellow (paper: 0.20); anything lower is red.  The paper's Table 3
    writes the bands as "higher 0.3 / 0.2-0.29 / lower 0.19"; with the
    conventional two-decimal rounding of D those bands are exactly the
    half-open intervals used here.
    """

    green_min: float = 0.30
    yellow_min: float = 0.20

    def __post_init__(self) -> None:
        if not 0.0 < self.yellow_min < self.green_min <= 1.0:
            raise AnalysisError(
                f"signal cut points must satisfy 0 < yellow_min < green_min "
                f"<= 1, got yellow_min={self.yellow_min}, "
                f"green_min={self.green_min}"
            )

    def classify(self, discrimination: float) -> Signal:
        """Classify an Item Discrimination Index into a light signal."""
        if not -1.0 <= discrimination <= 1.0:
            raise AnalysisError(
                f"discrimination index out of [-1, 1]: {discrimination}"
            )
        if discrimination >= self.green_min:
            return Signal.GREEN
        if discrimination >= self.yellow_min:
            return Signal.YELLOW
        return Signal.RED

    def bands(self) -> Sequence[Tuple[Signal, str]]:
        """The Table 3 rows: (signal, D-range description)."""
        return (
            (Signal.GREEN, f"Higher {self.green_min:.2g}"),
            (Signal.YELLOW, f"{self.yellow_min:.2f}-{self.green_min - 0.01:.2f}"),
            (Signal.RED, f"Lower {self.yellow_min - 0.01:.2f}"),
        )


#: The policy with the paper's Table 3 cut points.
DEFAULT_POLICY = SignalPolicy()


def render_signal_board(
    signals: Iterable[Signal],
    per_row: int = 10,
) -> str:
    """Render the Figure 2 "signal represent interface for whole test".

    One light glyph per question, numbered, wrapped ``per_row`` to a line::

        Q01:G Q02:G Q03:Y Q04:R ...

    Teachers read green as "good", yellow as "fix", red as "eliminate or
    fix" (Table 3).
    """
    if per_row < 1:
        raise AnalysisError(f"per_row must be positive, got {per_row}")
    cells = [
        f"Q{number:02d}:{signal.glyph}"
        for number, signal in enumerate(signals, start=1)
    ]
    lines: List[str] = []
    for start in range(0, len(cells), per_row):
        lines.append(" ".join(cells[start : start + per_row]))
    legend = "legend: G=good  Y=fix  R=eliminate or fix"
    return "\n".join(lines + [legend]) if cells else legend
