"""The MINE SCORM Meta-data model (paper §3, Figure 1).

The paper extends SCORM/LOM metadata with an assessment-specific model,
"designed specially for assessment in distance learning", covering the
assessment record, assessment analysis, questionnaire, and cognition
level, plus per-question (``IndividualTest``) and per-exam (``Exam``)
attributes.  Figure 1 draws the whole model as a tree of ten sections:
the nine IEEE LTSC LOM categories (§2.1: "It provides nine categories to
describe learning resource") plus the MINE ``Assessment`` extension that
is the paper's contribution.

This module defines that tree as plain dataclasses.  The XML binding
lives in :mod:`repro.core.metadata_xml`; validation in
:meth:`MineMetadata.validate`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.cognition import CognitionLevel
from repro.core.errors import MetadataValidationError

__all__ = [
    "QuestionStyle",
    "DisplayType",
    "GeneralSection",
    "LifecycleSection",
    "MetaMetadataSection",
    "TechnicalSection",
    "EducationalSection",
    "RightsSection",
    "RelationSection",
    "AnnotationSection",
    "ClassificationSection",
    "QuestionnaireMetadata",
    "IndividualTestMetadata",
    "ExamMetadata",
    "AssessmentRecord",
    "AssessmentAnalysisRecord",
    "AssessmentSection",
    "MineMetadata",
    "LOM_SECTION_NAMES",
    "MINE_SECTION_NAMES",
]


class QuestionStyle(enum.Enum):
    """The question styles of paper §3.2.

    Essay (open-ended or short fill-in), true/false, multiple choice,
    match, completion (fill-in-blank / cloze), and questionnaire.
    """

    ESSAY = "essay"
    TRUE_FALSE = "true_false"
    MULTIPLE_CHOICE = "multiple_choice"
    MATCH = "match"
    COMPLETION = "completion"
    QUESTIONNAIRE = "questionnaire"

    def __str__(self) -> str:
        return self.value


class DisplayType(enum.Enum):
    """Questionnaire display type (§3.2 VI.C).

    ``FIXED_ORDER`` — a fixed number and order of questions;
    ``RANDOM_ORDER`` — questions presented in random order.
    """

    FIXED_ORDER = "fixed_order"
    RANDOM_ORDER = "random_order"

    def __str__(self) -> str:
        return self.value


# --------------------------------------------------------------------------
# The nine LOM categories (kept deliberately small: the paper's contribution
# is the Assessment section; LOM categories carry the fields the authoring
# system actually reads).
# --------------------------------------------------------------------------


@dataclass
class GeneralSection:
    """LOM 1 "General": identity and description of the resource."""

    identifier: str = ""
    title: str = ""
    language: str = "en"
    description: str = ""
    keywords: List[str] = field(default_factory=list)


@dataclass
class LifecycleSection:
    """LOM 2 "Lifecycle": version and contributors."""

    version: str = "1.0"
    status: str = "final"
    contributors: List[str] = field(default_factory=list)


@dataclass
class MetaMetadataSection:
    """LOM 3 "Meta-Metadata": who wrote this metadata, and to what scheme."""

    metadata_scheme: str = "MINE SCORM 1.0"
    created_by: str = ""


@dataclass
class TechnicalSection:
    """LOM 4 "Technical": format, size, and location of the resource."""

    format: str = "text/xml"
    size_bytes: int = 0
    location: str = ""


@dataclass
class EducationalSection:
    """LOM 5 "Educational": pedagogic attributes of the resource."""

    interactivity_type: str = "active"
    learning_resource_type: str = "exam"
    intended_end_user_role: str = "learner"
    typical_age_range: str = ""
    difficulty: str = ""


@dataclass
class RightsSection:
    """LOM 6 "Rights": cost and copyright."""

    cost: bool = False
    copyright_and_other_restrictions: bool = False
    description: str = ""


@dataclass
class RelationSection:
    """LOM 7 "Relation": links to other resources."""

    kind: str = ""
    target_identifier: str = ""


@dataclass
class AnnotationSection:
    """LOM 8 "Annotation": comments on the educational use of the resource."""

    entity: str = ""
    date: str = ""
    description: str = ""


@dataclass
class ClassificationSection:
    """LOM 9 "Classification": where the resource falls in a taxonomy."""

    purpose: str = "discipline"
    taxon_path: List[str] = field(default_factory=list)


LOM_SECTION_NAMES: Sequence[str] = (
    "general",
    "lifecycle",
    "meta_metadata",
    "technical",
    "educational",
    "rights",
    "relation",
    "annotation",
    "classification",
)


# --------------------------------------------------------------------------
# The MINE Assessment extension (the paper's contribution, §3.1-§3.4)
# --------------------------------------------------------------------------


@dataclass
class QuestionnaireMetadata:
    """Questionnaire attributes (§3.2 VI).

    ``question`` — the question content (the paper's metadata focuses on
    text); ``resumable`` — True means the sitting may be resumed, False
    means it pauses for a later time; ``display_type`` — fixed or random
    question order.
    """

    question: str = ""
    resumable: bool = True
    display_type: DisplayType = DisplayType.FIXED_ORDER


@dataclass
class IndividualTestMetadata:
    """Per-question assessment attributes (§3.3).

    ``answer`` — the correct answer, kept for explaining and query;
    ``subject`` — the question's main subject (the "concept" of §4.2);
    ``item_difficulty_index`` — P, with P = R/N over the whole group or
    P = (PH + PL)/2 from the split-group analysis; higher P means an
    easier question; ``item_discrimination_index`` — D = PH − PL;
    ``distraction`` — free-form record of the distraction analysis;
    ``cognition_level`` — Bloom cognitive level of the question.
    """

    answer: str = ""
    subject: str = ""
    item_difficulty_index: Optional[float] = None
    item_discrimination_index: Optional[float] = None
    distraction: str = ""
    cognition_level: Optional[CognitionLevel] = None


@dataclass
class ExamMetadata:
    """Per-exam assessment attributes (§3.4).

    ``average_time_seconds`` — mean time examinees take; ``test_time_seconds``
    — the default time limit; ``instructional_sensitivity_index`` — computed
    by comparing pre-teaching and post-teaching test results.
    """

    average_time_seconds: Optional[float] = None
    test_time_seconds: Optional[float] = None
    instructional_sensitivity_index: Optional[float] = None


@dataclass
class AssessmentRecord:
    """One recorded sitting of the assessment (who, when, score, duration)."""

    learner_id: str = ""
    taken_at: str = ""
    score: Optional[float] = None
    duration_seconds: Optional[float] = None


@dataclass
class AssessmentAnalysisRecord:
    """A stored analysis result attached to the metadata.

    The authoring system writes one of these per analysis run so that the
    advice ("why a question is not suitable and how to correct it") travels
    with the content.
    """

    question_number: int = 0
    difficulty: Optional[float] = None
    discrimination: Optional[float] = None
    signal: str = ""
    statuses: List[str] = field(default_factory=list)
    advice: str = ""
    distraction: str = ""


@dataclass
class AssessmentSection:
    """The tenth, MINE-specific, metadata section.

    Gathers everything §3 defines: cognition level, question style, the
    questionnaire attributes, per-question ``IndividualTest`` attributes,
    per-exam attributes, plus stored assessment records and analysis
    results.
    """

    cognition_level: Optional[CognitionLevel] = None
    question_style: Optional[QuestionStyle] = None
    questionnaire: QuestionnaireMetadata = field(default_factory=QuestionnaireMetadata)
    individual_test: IndividualTestMetadata = field(
        default_factory=IndividualTestMetadata
    )
    exam: ExamMetadata = field(default_factory=ExamMetadata)
    records: List[AssessmentRecord] = field(default_factory=list)
    analyses: List[AssessmentAnalysisRecord] = field(default_factory=list)


MINE_SECTION_NAMES: Sequence[str] = LOM_SECTION_NAMES + ("assessment",)


@dataclass
class MineMetadata:
    """The complete MINE SCORM Meta-data document — Figure 1's tree.

    Ten sections: the nine LOM categories plus the MINE ``assessment``
    extension.  Use :meth:`validate` before serializing, and
    :meth:`tree_lines` to render the Figure 1 structure.
    """

    general: GeneralSection = field(default_factory=GeneralSection)
    lifecycle: LifecycleSection = field(default_factory=LifecycleSection)
    meta_metadata: MetaMetadataSection = field(default_factory=MetaMetadataSection)
    technical: TechnicalSection = field(default_factory=TechnicalSection)
    educational: EducationalSection = field(default_factory=EducationalSection)
    rights: RightsSection = field(default_factory=RightsSection)
    relation: RelationSection = field(default_factory=RelationSection)
    annotation: AnnotationSection = field(default_factory=AnnotationSection)
    classification: ClassificationSection = field(
        default_factory=ClassificationSection
    )
    assessment: AssessmentSection = field(default_factory=AssessmentSection)

    def section_names(self) -> Sequence[str]:
        """The ten section names, in Figure 1 order."""
        return MINE_SECTION_NAMES

    def validate(self) -> None:
        """Raise :class:`MetadataValidationError` listing every violation.

        Checks the constraints the paper's model implies: indices are
        probabilities or differences of probabilities, times are
        non-negative, and enum-typed fields hold their enum types.
        """
        violations = self._collect_violations()
        if violations:
            raise MetadataValidationError(violations)

    def is_valid(self) -> bool:
        """True when :meth:`validate` would pass."""
        return not self._collect_violations()

    def _collect_violations(self) -> List[str]:
        problems: List[str] = []
        ind = self.assessment.individual_test
        p = ind.item_difficulty_index
        if p is not None and not 0.0 <= p <= 1.0:
            problems.append(f"item_difficulty_index out of [0, 1]: {p}")
        d = ind.item_discrimination_index
        if d is not None and not -1.0 <= d <= 1.0:
            problems.append(f"item_discrimination_index out of [-1, 1]: {d}")
        if ind.cognition_level is not None and not isinstance(
            ind.cognition_level, CognitionLevel
        ):
            problems.append("individual_test.cognition_level is not a CognitionLevel")
        exam = self.assessment.exam
        for name in ("average_time_seconds", "test_time_seconds"):
            value = getattr(exam, name)
            if value is not None and value < 0:
                problems.append(f"exam.{name} is negative: {value}")
        if self.assessment.cognition_level is not None and not isinstance(
            self.assessment.cognition_level, CognitionLevel
        ):
            problems.append("assessment.cognition_level is not a CognitionLevel")
        if self.assessment.question_style is not None and not isinstance(
            self.assessment.question_style, QuestionStyle
        ):
            problems.append("assessment.question_style is not a QuestionStyle")
        if not isinstance(
            self.assessment.questionnaire.display_type, DisplayType
        ):
            problems.append("questionnaire.display_type is not a DisplayType")
        for i, record in enumerate(self.assessment.records):
            if record.score is not None and record.score < 0:
                problems.append(f"records[{i}].score is negative: {record.score}")
            if record.duration_seconds is not None and record.duration_seconds < 0:
                problems.append(
                    f"records[{i}].duration_seconds is negative: "
                    f"{record.duration_seconds}"
                )
        if self.technical.size_bytes < 0:
            problems.append(f"technical.size_bytes is negative: {self.technical.size_bytes}")
        return problems

    # -- Figure 1 rendering -------------------------------------------------

    def tree_lines(self) -> List[str]:
        """Render the metadata tree of Figure 1 as indented text lines.

        The first line is the root; each section is a child; the MINE
        assessment section expands its sub-tree (cognition level, question
        style, questionnaire, IndividualTest, Exam, records, analyses).
        """
        lines = ["MINE SCORM Meta-data"]
        for name in LOM_SECTION_NAMES:
            lines.append(f"  +- {name}")
        lines.append("  +- assessment")
        assessment_children: Dict[str, Sequence[str]] = {
            "cognition_level": (),
            "question_style": (),
            "questionnaire": ("question", "resumable", "display_type"),
            "individual_test": (
                "answer",
                "subject",
                "item_difficulty_index",
                "item_discrimination_index",
                "distraction",
                "cognition_level",
            ),
            "exam": (
                "average_time_seconds",
                "test_time_seconds",
                "instructional_sensitivity_index",
            ),
            "records": (),
            "analyses": (),
        }
        for child, leaves in assessment_children.items():
            lines.append(f"      +- {child}")
            for leaf in leaves:
                lines.append(f"          +- {leaf}")
        return lines

    def render_tree(self) -> str:
        """The Figure 1 tree as a single string."""
        return "\n".join(self.tree_lines())
