"""Statistical significance for the paper's comparisons.

The paper reads differences directly (PH vs PL, pre- vs post-teaching);
with the class sizes involved those differences carry sampling noise.
This module adds the standard significance tests so the library's advice
can say not just "D is low" but "D is low *and* the data support it":

* :func:`discrimination_significance` — the two-proportion z-test on
  PH vs PL (is the item's discrimination real?);
* :func:`isi_significance` — McNemar's exact test on paired pre/post
  correctness (did teaching actually change this item's outcomes?);
* :func:`proportion_confidence_interval` — the Wilson interval for a
  difficulty index, so stored P values can carry uncertainty.

scipy supplies the distributions; the test logic is explicit here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

from scipy import stats

from repro.core.errors import AnalysisError

__all__ = [
    "TestResult",
    "discrimination_significance",
    "isi_significance",
    "proportion_confidence_interval",
]


@dataclass(frozen=True)
class TestResult:
    """A test statistic, its p-value, and the decision at α."""

    statistic: float
    p_value: float
    alpha: float

    @property
    def significant(self) -> bool:
        """True when p < alpha."""
        return self.p_value < self.alpha


def discrimination_significance(
    high_correct: int,
    high_total: int,
    low_correct: int,
    low_total: int,
    alpha: float = 0.05,
) -> TestResult:
    """Two-proportion z-test: is PH really larger than PL?

    One-sided (the paper's D is meant to be positive).  Returns the z
    statistic; degenerate pooled proportions (0 or 1) give p = 1 — no
    evidence either way.
    """
    _check_counts(high_correct, high_total, "high")
    _check_counts(low_correct, low_total, "low")
    _check_alpha(alpha)
    p_high = high_correct / high_total
    p_low = low_correct / low_total
    pooled = (high_correct + low_correct) / (high_total + low_total)
    if pooled in (0.0, 1.0):
        return TestResult(statistic=0.0, p_value=1.0, alpha=alpha)
    se = math.sqrt(pooled * (1 - pooled) * (1 / high_total + 1 / low_total))
    z = (p_high - p_low) / se
    p_value = float(stats.norm.sf(z))  # one-sided: PH > PL
    return TestResult(statistic=z, p_value=p_value, alpha=alpha)


def isi_significance(
    pre_correct: Sequence[bool],
    post_correct: Sequence[bool],
    alpha: float = 0.05,
) -> TestResult:
    """McNemar's exact test on paired pre/post correctness (§3.4).

    ``pre_correct[i]``/``post_correct[i]`` are the same examinee's
    outcomes on the item before and after teaching.  Only discordant
    pairs inform the test: b = wrong→right, c = right→wrong; under H0
    (no teaching effect) b ~ Binomial(b + c, 0.5).  One-sided for
    improvement.
    """
    _check_alpha(alpha)
    if len(pre_correct) != len(post_correct):
        raise AnalysisError(
            f"paired vectors differ in length: {len(pre_correct)} vs "
            f"{len(post_correct)}"
        )
    if not pre_correct:
        raise AnalysisError("no paired observations")
    improved = sum(
        1 for before, after in zip(pre_correct, post_correct)
        if not before and after
    )
    regressed = sum(
        1 for before, after in zip(pre_correct, post_correct)
        if before and not after
    )
    discordant = improved + regressed
    if discordant == 0:
        return TestResult(statistic=0.0, p_value=1.0, alpha=alpha)
    result = stats.binomtest(improved, discordant, p=0.5, alternative="greater")
    return TestResult(
        statistic=float(improved), p_value=float(result.pvalue), alpha=alpha
    )


def proportion_confidence_interval(
    correct: int, total: int, confidence: float = 0.95
) -> Tuple[float, float]:
    """Wilson score interval for a difficulty index P = correct/total."""
    _check_counts(correct, total, "item")
    if not 0.0 < confidence < 1.0:
        raise AnalysisError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    z = float(stats.norm.ppf(1 - (1 - confidence) / 2))
    p = correct / total
    denominator = 1 + z * z / total
    centre = (p + z * z / (2 * total)) / denominator
    half_width = (
        z
        * math.sqrt(p * (1 - p) / total + z * z / (4 * total * total))
        / denominator
    )
    return (max(0.0, centre - half_width), min(1.0, centre + half_width))


def _check_counts(correct: int, total: int, name: str) -> None:
    if total <= 0:
        raise AnalysisError(f"{name} group total must be positive, got {total}")
    if not 0 <= correct <= total:
        raise AnalysisError(
            f"{name} group correct ({correct}) outside [0, {total}]"
        )


def _check_alpha(alpha: float) -> None:
    if not 0.0 < alpha < 1.0:
        raise AnalysisError(f"alpha must be in (0, 1), got {alpha}")
