"""The two-way specification table (paper §4.2.1 fig (3), Table 4, §4.2.2-3).

The table crosses **concepts** (the learning-content subjects of the test,
rows named Concept 1..i) with the six **cognition levels** (columns A..F,
knowledge through evaluation).  Section 4.2.2 defines:

* cell ``Xi`` is TRUE when at least one question of level X exists for
  concept i;
* ``SUM(Xi)`` is the number of questions at level X in concept i;
* ``SUM(Ai-Fi)`` (a row sum) is the number of questions in concept i;
* ``SUM(X1-Xi)`` (a column sum) is the number of questions at level X
  across all concepts.

Section 4.2.3 then derives the whole-test analyses implemented here:

1. **Concept lost** — a concept whose entire row is FALSE is not examined
   at all;
2. **Cognition pyramid** — the expected ordering
   ``SUM(A) ≥ SUM(B) ≥ ... ≥ SUM(F)``;
3. **Distribution paint** — a density rendering of question counts over
   the concept × level grid (the paper's "paint algorithm").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.cognition import COGNITIVE_LEVELS, CognitionLevel, expected_pyramid
from repro.core.errors import AnalysisError

__all__ = ["TaggedQuestion", "SpecificationTable"]


@dataclass(frozen=True)
class TaggedQuestion:
    """A question's tags as the specification table sees it: its 1-based
    number, its concept (subject), and its cognition level."""

    number: int
    concept: str
    level: CognitionLevel


@dataclass
class SpecificationTable:
    """Table 4: concepts × cognition levels with question counts.

    Build one with :meth:`from_questions`; query cells with
    :meth:`count` / :meth:`has`; run the §4.2.3 analyses with
    :meth:`lost_concepts`, :meth:`pyramid_violations`, and
    :meth:`paint`.
    """

    concepts: List[str] = field(default_factory=list)
    _counts: Dict[Tuple[str, CognitionLevel], int] = field(default_factory=dict)
    _questions: Dict[Tuple[str, CognitionLevel], List[int]] = field(
        default_factory=dict
    )

    @classmethod
    def from_questions(
        cls,
        questions: Iterable[TaggedQuestion],
        concepts: Optional[Sequence[str]] = None,
    ) -> "SpecificationTable":
        """Build the table from tagged questions.

        ``concepts`` optionally fixes the full row list — pass the
        course's complete concept inventory so that unexamined concepts
        appear as all-FALSE rows (otherwise a lost concept cannot be
        detected, since it never occurs in the question tags).
        """
        table = cls()
        if concepts is not None:
            for concept in concepts:
                table._ensure_concept(concept)
        for question in questions:
            table.add(question)
        return table

    def _ensure_concept(self, concept: str) -> None:
        if not concept:
            raise AnalysisError("concept name must be non-empty")
        if concept not in self.concepts:
            self.concepts.append(concept)

    def add(self, question: TaggedQuestion) -> None:
        """Record one question in its (concept, level) cell."""
        self._ensure_concept(question.concept)
        key = (question.concept, question.level)
        self._counts[key] = self._counts.get(key, 0) + 1
        self._questions.setdefault(key, []).append(question.number)

    # -- cell queries (§4.2.2) ----------------------------------------------

    def count(self, concept: str, level: CognitionLevel) -> int:
        """SUM(Xi): questions at ``level`` in ``concept``."""
        return self._counts.get((concept, level), 0)

    def has(self, concept: str, level: CognitionLevel) -> bool:
        """The TRUE/FALSE cell of §4.2.2 (3): at least one question."""
        return self.count(concept, level) > 0

    def questions_in_cell(
        self, concept: str, level: CognitionLevel
    ) -> Sequence[int]:
        """Question numbers recorded in the cell."""
        return tuple(self._questions.get((concept, level), ()))

    def concept_sum(self, concept: str) -> int:
        """SUM(Ai-Fi): all questions in ``concept`` across levels."""
        return sum(self.count(concept, level) for level in COGNITIVE_LEVELS)

    def level_sum(self, level: CognitionLevel) -> int:
        """SUM(X1-Xi): all questions at ``level`` across concepts."""
        return sum(self.count(concept, level) for concept in self.concepts)

    def level_sums(self) -> List[int]:
        """Per-level totals in A..F order (the table's bottom row)."""
        return [self.level_sum(level) for level in COGNITIVE_LEVELS]

    def total(self) -> int:
        """All questions in the table."""
        return sum(self._counts.values())

    # -- §4.2.3 analyses ------------------------------------------------------

    def lost_concepts(self) -> List[str]:
        """Concepts whose whole row is FALSE — present in the course but
        absent from the exam (§4.2.3 (1): "Concept 1 lost in the exam")."""
        return [
            concept
            for concept in self.concepts
            if self.concept_sum(concept) == 0
        ]

    def pyramid_violations(self) -> List[Tuple[CognitionLevel, CognitionLevel]]:
        """Adjacent level pairs violating SUM(A) ≥ SUM(B) ≥ ... ≥ SUM(F).

        Returns the (lower, higher) level pairs where the higher level has
        *more* questions — an empty list means the expected relation of
        §4.2.3 (2) holds.
        """
        positions = expected_pyramid(self.level_sums())
        return [
            (COGNITIVE_LEVELS[i], COGNITIVE_LEVELS[i + 1]) for i in positions
        ]

    def paint(self, shades: str = " .:*#") -> List[str]:
        """The §4.2.3 (3) distribution "paint algorithm".

        Renders the concept × level grid as density shades: each cell's
        question count is mapped onto ``shades`` (space = zero, densest
        glyph = the grid maximum), giving the at-a-glance distribution
        picture the paper describes.
        """
        if len(shades) < 2:
            raise AnalysisError("need at least two shade glyphs")
        maximum = max(self._counts.values(), default=0)
        lines = []
        header = "          " + " ".join(level.letter for level in COGNITIVE_LEVELS)
        lines.append(header)
        for concept in self.concepts:
            cells = []
            for level in COGNITIVE_LEVELS:
                count = self.count(concept, level)
                if maximum == 0 or count == 0:
                    glyph = shades[0]
                else:
                    # scale 1..max onto shade indices 1..len(shades)-1
                    span = max(maximum - 1, 1)
                    position = 1 + (count - 1) * (len(shades) - 2) // span
                    glyph = shades[min(position, len(shades) - 1)]
                cells.append(glyph)
            lines.append(f"{concept[:10]:<10}" + " ".join(cells))
        return lines

    # -- rendering -----------------------------------------------------------

    def render(self, boolean: bool = False) -> str:
        """Render Table 4 as aligned text.

        With ``boolean=True`` cells show the TRUE/FALSE semantics of
        §4.2.2 (3); otherwise they show SUM(Xi) counts.  The bottom row is
        the per-level SUM(X1-Xi) totals.
        """
        header = [""] + [level.label for level in COGNITIVE_LEVELS] + ["Row sum"]
        rows: List[List[str]] = []
        for concept in self.concepts:
            cells = []
            for level in COGNITIVE_LEVELS:
                if boolean:
                    cells.append("TRUE" if self.has(concept, level) else "FALSE")
                else:
                    cells.append(str(self.count(concept, level)))
            rows.append([concept] + cells + [str(self.concept_sum(concept))])
        totals = (
            ["SUM"]
            + [str(total) for total in self.level_sums()]
            + [str(self.total())]
        )
        rows.append(totals)
        widths = [
            max(len(header[i]), *(len(row[i]) for row in rows))
            for i in range(len(header))
        ]
        lines = ["  ".join(header[i].ljust(widths[i]) for i in range(len(header)))]
        for row in rows:
            lines.append(
                "  ".join(row[i].ljust(widths[i]) for i in range(len(header)))
            )
        return "\n".join(lines)
