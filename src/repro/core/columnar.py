"""Columnar §4.1 analysis engine — the fast path behind ``analyze_cohort``.

The reference pipeline (:mod:`repro.core.question_analysis`) walks Python
object lists per examinee per question: scoring is ``N x Q`` generator
steps over :class:`ExamineeResponses` tuples, and the option matrices are
built with per-member dict increments.  That is faithful to the paper but
cannot serve the roadmap's "heavy traffic" target.

This module keeps the *exact same semantics* in a columnar layout:

* option labels are interned to small integer codes per question
  (``None``/skip is the sentinel ``SKIP`` = 0xFF);
* the whole cohort lives in one contiguous row-major ``bytearray``
  (:class:`ResponseMatrix`), so a question's column is a C-speed stride
  slice and a sitting's row is a Q-byte append;
* scores, the high/low split, and every option matrix come out of a
  single fused sweep over the codes — vectorized with numpy when it is
  available, pure-stdlib (``bytes.translate`` + ``map``) otherwise;
* the per-question arithmetic (PH, PL, D, P, rules, signals, advice) is
  delegated to the same :func:`~repro.core.question_analysis.analyze_matrix`
  the reference engine uses, so the floats are bit-identical by
  construction.

:func:`fast_analyze_cohort` is the drop-in replacement proven equal to the
reference by ``tests/core/test_columnar_differential.py``;
:class:`LiveCohortAnalysis` is the incremental API (``add_sitting`` /
``invalidate``) that keeps an analysis warm across submissions instead of
recomputing from raw responses every time.
"""

from __future__ import annotations

import base64
from itertools import chain as _chain, cycle as _cycle
from operator import add as _add, attrgetter as _attrgetter, getitem as _getitem
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.core.errors import AnalysisError, EmptyCohortError
from repro.core.grouping import GroupSplit
from repro.core.question_analysis import (
    CohortAnalysis,
    ExamineeResponses,
    QuestionAnalysis,
    QuestionSpec,
    analyze_matrix,
)
from repro.core.rules import DEFAULT_SPREAD_THRESHOLD, OptionMatrix
from repro.core.signals import DEFAULT_POLICY, SignalPolicy

try:  # numpy accelerates the fused sweep; the stdlib path is kept working
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None

__all__ = [
    "SKIP",
    "MAX_OPTION_CODES",
    "ColumnarCapacityError",
    "ResponseMatrix",
    "LiveCohortAnalysis",
    "fast_analyze_cohort",
    "merge_partials",
]

#: Interned code for a skipped question (``selections[i] is None``).
SKIP = 0xFF

#: Distinct labels (options + stray unknown selections) a question can
#: intern: one byte per cell minus the skip sentinel.
MAX_OPTION_CODES = 0xFF

_selections_of = _attrgetter("selections")
_id_of = _attrgetter("examinee_id")


class ColumnarCapacityError(AnalysisError):
    """A cohort exceeds the byte-code capacity of the columnar layout.

    ``fast_analyze_cohort`` catches this and falls back to the reference
    engine, so callers never see it unless they use :class:`ResponseMatrix`
    directly.
    """


class ResponseMatrix:
    """Columnar store for one cohort's selections on one exam.

    The matrix is row-major: examinee ``i``'s codes occupy bytes
    ``[i*Q, (i+1)*Q)`` of ``_codes``, so ``add_sitting`` is an O(Q)
    append and question ``q``'s column is the stride slice
    ``_codes[q::Q]``.  Scores are maintained alongside, one pass per
    sitting, so an analysis never has to re-walk raw responses.
    """

    def __init__(self, questions: Sequence[QuestionSpec]) -> None:
        if not questions:
            raise AnalysisError("no questions to analyse")
        self.questions: Tuple[QuestionSpec, ...] = tuple(questions)
        self.width = len(self.questions)
        # per-question interning tables; None is pre-seeded so skips
        # encode in the same C-level map() pass as real selections
        self._tables: List[Dict[Optional[str], int]] = []
        self._labels: List[List[str]] = []
        self._correct: List[int] = []
        for spec in self.questions:
            if len(spec.options) > MAX_OPTION_CODES - 1:
                raise ColumnarCapacityError(
                    f"question with {len(spec.options)} options exceeds the "
                    f"columnar capacity of {MAX_OPTION_CODES - 1}"
                )
            table: Dict[Optional[str], int] = {None: SKIP}
            for code, option in enumerate(spec.options):
                table[option] = code
            self._tables.append(table)
            self._labels.append(list(spec.options))
            # the key itself is interned like any label, so an invalid
            # spec surfaces exactly where the reference engine raises
            # (OptionMatrix validation), not earlier
            self._correct.append(self._intern(len(self._labels) - 1, spec.correct))
        self._codes = bytearray()
        self.examinee_ids: List[str] = []
        self.scores: List[int] = []
        self._row_of: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self.examinee_ids)

    def __contains__(self, examinee_id: str) -> bool:
        return examinee_id in self._row_of

    @classmethod
    def from_arrays(
        cls,
        questions: Sequence[QuestionSpec],
        examinee_ids: Sequence[str],
        codes: "bytes | bytearray | memoryview | _np.ndarray",
    ) -> "ResponseMatrix":
        """Build a matrix straight from pre-encoded option codes.

        ``codes`` is the row-major cohort: examinee ``i``'s code for
        question ``q`` at flat index ``i * Q + q`` (a bytes-like buffer
        or an ``(N, Q)`` uint8 array).  Codes are the question's option
        indices in spec order; :data:`SKIP` marks an omitted answer.
        This is the ingestion path for array-native producers
        (:mod:`repro.sim.vectorized`): no per-learner
        :class:`ExamineeResponses` objects, no interning dict lookups —
        the buffer is validated and adopted wholesale.
        """
        matrix = cls(questions)
        matrix.extend_codes(examinee_ids, codes)
        return matrix

    def extend_codes(
        self,
        examinee_ids: Sequence[str],
        codes: "bytes | bytearray | memoryview | _np.ndarray",
    ) -> None:
        """Bulk-append pre-encoded rows (the array-native ``extend``).

        Validates shape, duplicate ids, and that every code is either one
        of its question's option indices or :data:`SKIP` — stray labels
        have no code representation, so unlike :meth:`extend` nothing is
        interned here.  Scores are computed in the same fused pass used
        by :meth:`extend`.
        """
        ids = list(examinee_ids)
        if _np is not None and isinstance(codes, _np.ndarray):
            if codes.ndim == 2 and codes.shape[1] != self.width:
                raise AnalysisError(
                    f"code matrix has {codes.shape[1]} questions; "
                    f"exam has {self.width}"
                )
            buffer = codes.astype(_np.uint8, copy=False).tobytes()
        else:
            buffer = bytes(codes)
        if not ids and not buffer:
            return
        if len(buffer) != len(ids) * self.width:
            raise AnalysisError(
                f"code buffer holds {len(buffer)} cells; "
                f"{len(ids)} examinees x {self.width} questions "
                f"needs {len(ids) * self.width}"
            )
        if len(set(ids)) != len(ids) or not self._row_of.keys().isdisjoint(
            ids
        ):
            seen = set(self._row_of)
            for identifier in ids:
                if identifier in seen:
                    raise AnalysisError(
                        f"duplicate examinee id {identifier!r} in cohort"
                    )
                seen.add(identifier)
        self._validate_codes(buffer, ids)
        base = len(self.examinee_ids)
        self._codes.extend(buffer)
        self.examinee_ids.extend(ids)
        self._row_of.update(zip(ids, range(base, base + len(ids))))
        self.scores.extend(self._bulk_scores(buffer, len(ids)))

    def _validate_codes(self, buffer: bytes, ids: Sequence[str]) -> None:
        """Every cell must be an option index of its question or SKIP."""
        known = [len(spec.options) for spec in self.questions]
        if _np is not None:
            arr = _np.frombuffer(buffer, dtype=_np.uint8)
            arr = arr.reshape(len(ids), self.width)
            bad = (arr >= _np.array(known, dtype=_np.uint8)[None, :]) & (
                arr != SKIP
            )
            if not bad.any():
                return
            row, question = map(int, _np.argwhere(bad)[0])
        else:
            width = self.width
            offender = next(
                (
                    index
                    for index, code in enumerate(buffer)
                    if code != SKIP and code >= known[index % width]
                ),
                None,
            )
            if offender is None:
                return
            row, question = divmod(offender, width)
        raise AnalysisError(
            f"examinee {ids[row]!r} has code {buffer[row * self.width + question]}"
            f" on question {question + 1}, which has only "
            f"{known[question]} options"
        )

    # -- ingestion -----------------------------------------------------------

    def _intern(self, question_index: int, label: Optional[str]) -> int:
        """The code for ``label`` on a question, interning it if new."""
        table = self._tables[question_index]
        code = table.get(label)
        if code is not None:
            return code
        labels = self._labels[question_index]
        code = len(labels)
        if code >= MAX_OPTION_CODES:
            raise ColumnarCapacityError(
                f"question {question_index + 1} saw more than "
                f"{MAX_OPTION_CODES} distinct selection labels"
            )
        table[label] = code
        labels.append(label)  # type: ignore[arg-type]  # only str reaches here
        return code

    def _encode(self, response: ExamineeResponses) -> bytes:
        """One sitting's selections as a row of interned codes."""
        return self._encode_row(response.selections)

    def _encode_row(self, selections: Sequence[Optional[str]]) -> bytes:
        try:
            # single C-level pass: getitem(tables[q], selections[q]) per q
            return bytes(map(_getitem, self._tables, selections))
        except KeyError:
            # a label outside the question's options: intern it (the
            # analysis raises later only if it lands in an extreme group,
            # matching the reference engine's behavior)
            return bytes(
                self._intern(index, selection)
                for index, selection in enumerate(selections)
            )

    def _check_new(self, response: ExamineeResponses) -> None:
        if len(response.selections) != self.width:
            raise AnalysisError(
                f"examinee {response.examinee_id!r} answered "
                f"{len(response.selections)} questions; exam has {self.width}"
            )
        if response.examinee_id in self._row_of:
            raise AnalysisError(
                f"duplicate examinee id {response.examinee_id!r} in cohort"
            )

    def add_sitting(self, response: ExamineeResponses) -> int:
        """Append one sitting; O(Q), independent of cohort size.

        Returns the new row index.  Raises :class:`AnalysisError` when the
        selections length disagrees with the exam width or the examinee id
        is already present.
        """
        self._check_new(response)
        row = self._encode(response)
        score = sum(
            1 for code, key in zip(row, self._correct) if code == key
        )
        index = len(self.examinee_ids)
        self._codes.extend(row)
        self.examinee_ids.append(response.examinee_id)
        self.scores.append(score)
        self._row_of[response.examinee_id] = index
        return index

    def extend(self, responses: Sequence[ExamineeResponses]) -> None:
        """Bulk-ingest a cohort: validate everything, then one fused pass.

        Validation order matches the reference engine: every width is
        checked before any scoring happens, then duplicate ids.  Both
        checks run at C speed (``set``/``map``); the slow loops only run
        to name the first offender once a violation is known.
        """
        if not responses:
            return
        selections = list(map(_selections_of, responses))
        if set(map(len, selections)) != {self.width}:
            for response in responses:
                if len(response.selections) != self.width:
                    raise AnalysisError(
                        f"examinee {response.examinee_id!r} answered "
                        f"{len(response.selections)} questions; exam has "
                        f"{self.width}"
                    )
        ids = list(map(_id_of, responses))
        if len(set(ids)) != len(ids) or not self._row_of.keys().isdisjoint(
            ids
        ):
            seen = set(self._row_of)
            for identifier in ids:
                if identifier in seen:
                    raise AnalysisError(
                        f"duplicate examinee id {identifier!r} in cohort"
                    )
                seen.add(identifier)
        joined = self._bulk_encode(selections)
        base = len(self.examinee_ids)
        self._codes.extend(joined)
        self.examinee_ids.extend(ids)
        self._row_of.update(zip(ids, range(base, base + len(ids))))
        self.scores.extend(self._bulk_scores(joined, len(ids)))

    def _bulk_encode(self, selections: Sequence[Sequence[Optional[str]]]) -> bytes:
        """All rows' interned codes in one buffer, row-major."""
        if _np is not None and len(selections) * self.width >= 2048:
            joined = self._vector_encode(selections)
            if joined is not None:
                return joined
        try:
            # every row has exactly `width` cells (validated by extend),
            # so the interning tables cycle in lockstep with the
            # flattened selections: one C-level pass over all cells
            return bytes(
                map(
                    _getitem,
                    _cycle(self._tables),
                    _chain.from_iterable(selections),
                )
            )
        except KeyError:
            # some label is outside its question's options: fall back to
            # per-row encoding, which interns the stray labels
            return b"".join(map(self._encode_row, selections))

    #: `_vector_encode` marker for "label not in this question's table";
    #: distinct from any real code because interning stops at 0xFE labels
    _UNSEEN = 0xFE

    def _vector_encode(
        self, selections: Sequence[Sequence[Optional[str]]]
    ) -> Optional[bytes]:
        """Vectorized encode for the common case: single-character ASCII
        labels and no skips.

        The whole cohort flattens with two C-level ``str.join`` passes;
        the ASCII bytes then index a per-question lookup table in one
        numpy gather — no per-cell Python dispatch at all.  Returns
        ``None`` whenever the cohort does not fit the fast shape (a
        skipped answer, a multi-character or non-ASCII label, a label
        that still needs interning), and the caller falls back.
        """
        if any(len(labels) >= self._UNSEEN for labels in self._labels):
            return None  # a real code could collide with the marker
        try:
            flat = "".join(map("".join, selections))
        except TypeError:
            return None  # a skipped answer (None) somewhere
        total = len(selections) * self.width
        if len(flat) != total:
            return None  # some label is not a single character
        raw = flat.encode()
        if len(raw) != total:
            return None  # non-ASCII labels
        lut = _np.full((self.width, 128), self._UNSEEN, _np.uint8)
        for question, table in enumerate(self._tables):
            for label, code in table.items():
                if label is not None and len(label) == 1 and ord(label) < 128:
                    lut[question, ord(label)] = code
        # flat gather: shift each column's codepoints into its question's
        # 128-wide stripe of the flattened table (`take` beats 2-d fancy
        # indexing by ~3x here)
        points = _np.frombuffer(raw, dtype=_np.uint8)
        points = points.reshape(len(selections), self.width)
        # int64 offsets: uint16 would wrap past 512 questions (512*128)
        # and silently gather through other questions' stripes
        points = points.astype(_np.int64) + (
            _np.arange(self.width, dtype=_np.int64) * 128
        )[None, :]
        codes = lut.ravel().take(points.ravel())
        if (codes == self._UNSEEN).any():
            return None  # stray labels must be interned on the slow path
        return codes.tobytes()

    def _bulk_scores(self, joined: bytes, count: int) -> List[int]:
        """Scores for freshly encoded rows, one vectorized pass."""
        if not count:
            return []
        if _np is not None:
            arr = _np.frombuffer(joined, dtype=_np.uint8)
            arr = arr.reshape(count, self.width)
            key = _np.array(self._correct, dtype=_np.uint8)
            return (arr == key[None, :]).sum(axis=1).tolist()
        # stdlib path: per question, translate the column to 0/1 and fold
        # it into the running scores with a C-level map(add, ...)
        scores = [0] * count
        for question in range(self.width):
            key = self._correct[question]
            table = bytes(1 if code == key else 0 for code in range(256))
            column = joined[question :: self.width].translate(table)
            scores = list(map(_add, scores, column))
        return scores

    def export_partial(self) -> Dict[str, object]:
        """This shard's cohort as a JSON-safe scatter-gather partial.

        The payload carries everything :func:`merge_partials` needs to
        rebuild the rows elsewhere: the examinee ids (row order), the
        raw row-major code buffer (base64), and each question's interned
        label list — options in spec order first, then any stray labels
        this shard happened to see.  Scores are *not* shipped; the merge
        recomputes them from the codes, so a corrupt partial cannot
        smuggle in a wrong score.
        """
        return {
            "format": "mine-partial-v1",
            "width": self.width,
            "examinee_ids": list(self.examinee_ids),
            "codes_b64": base64.b64encode(bytes(self._codes)).decode(
                "ascii"
            ),
            "labels": [list(labels) for labels in self._labels],
        }

    def remove_sitting(self, examinee_id: str) -> bool:
        """Drop one sitting (resubmission, invalidated exam); False if absent."""
        index = self._row_of.pop(examinee_id, None)
        if index is None:
            return False
        width = self.width
        del self._codes[index * width : (index + 1) * width]
        del self.examinee_ids[index]
        del self.scores[index]
        for identifier in self.examinee_ids[index:]:
            self._row_of[identifier] -= 1
        return True

    # -- the fused analysis sweep -------------------------------------------

    def analyze(
        self,
        split: GroupSplit = GroupSplit(),
        policy: SignalPolicy = DEFAULT_POLICY,
        spread_threshold: float = DEFAULT_SPREAD_THRESHOLD,
    ) -> CohortAnalysis:
        """The full §4.1 result for the current cohort state.

        Field-for-field equal to the reference engine: the split reuses
        :class:`GroupSplit` on the cached score vector, the counts come
        from the code columns, and every per-question result is produced
        by the shared :func:`analyze_matrix`.
        """
        count = len(self.examinee_ids)
        if count == 0:
            raise EmptyCohortError("no examinee responses to analyse")
        with obs.span(
            "analyze.columnar", examinees=count, questions=self.width
        ):
            return self._analyze_impl(split, policy, spread_threshold, count)

    def _analyze_impl(
        self,
        split: GroupSplit,
        policy: SignalPolicy,
        spread_threshold: float,
        count: int,
    ) -> CohortAnalysis:
        scores = self.scores
        high_idx, low_idx = self._split_indices(split, count)
        high_counts = self._group_counts(high_idx)
        low_counts = self._group_counts(low_idx)

        analyses: List[QuestionAnalysis] = []
        for index, spec in enumerate(self.questions):
            known = len(spec.options)
            self._check_unknown(index, high_counts[index], high_idx, known)
            self._check_unknown(index, low_counts[index], low_idx, known)
            matrix = OptionMatrix(
                options=spec.options,
                high={
                    option: int(high_counts[index][code])
                    for code, option in enumerate(spec.options)
                },
                low={
                    option: int(low_counts[index][code])
                    for code, option in enumerate(spec.options)
                },
                correct=spec.correct,
            )
            analyses.append(
                analyze_matrix(
                    matrix,
                    high_size=len(high_idx),
                    low_size=len(low_idx),
                    number=index + 1,
                    policy=policy,
                    spread_threshold=spread_threshold,
                )
            )
        return CohortAnalysis(
            questions=analyses,
            high_group=[self.examinee_ids[i] for i in high_idx],
            low_group=[self.examinee_ids[i] for i in low_idx],
            scores=dict(zip(self.examinee_ids, scores)),
        )

    def _split_indices(
        self, split: GroupSplit, count: int
    ) -> Tuple[List[int], List[int]]:
        """High/low row indices, exactly as ``GroupSplit.split`` orders them.

        ``GroupSplit`` sorts by ``(-score, index)``; a stable descending
        sort on the score alone is the same ordering (equal scores keep
        their original index order), which lets the fast path skip the
        per-element key tuples — or hand the whole sort to numpy.  Any
        subclass with its own ``split`` keeps its behavior via the
        fallback.
        """
        if split.__class__ is not GroupSplit:
            return split.split(range(count), self.scores.__getitem__)
        size = split.group_size(count)
        if _np is not None:
            order = _np.argsort(
                -_np.asarray(self.scores, dtype=_np.int64), kind="stable"
            )
            return order[:size].tolist(), order[-size:].tolist()
        order = sorted(
            range(count), key=self.scores.__getitem__, reverse=True
        )
        return order[:size], order[-size:]

    def _group_counts(self, indices: Sequence[int]) -> List[Sequence[int]]:
        """Per question: selection counts per code over the group rows."""
        width = self.width
        if _np is not None:
            arr = _np.frombuffer(self._codes, dtype=_np.uint8)
            arr = arr.reshape(len(self.examinee_ids), width)
            sub = arr[_np.asarray(indices, dtype=_np.intp)]
            # shift each column into its own 256-wide bucket range so one
            # bincount counts every (question, code) pair at once
            offsets = sub.astype(_np.int64) + (
                _np.arange(width, dtype=_np.int64) * 256
            )[None, :]
            counts = _np.bincount(offsets.ravel(), minlength=width * 256)
            return counts.reshape(width, 256)
        counts: List[Sequence[int]] = []
        for question in range(width):
            column = self._codes[question::width]
            per_code = [0] * 256
            for row in indices:
                per_code[column[row]] += 1
            counts.append(per_code)
        return counts

    def _check_unknown(
        self,
        question_index: int,
        code_counts: Sequence[int],
        indices: Sequence[int],
        known: int,
    ) -> None:
        """Raise like the reference engine when a group member selected a
        label outside the question's options."""
        stray = code_counts[known:SKIP]
        if not (stray.any() if _np is not None and isinstance(
            stray, _np.ndarray
        ) else any(stray)):
            return
        width = self.width
        column = self._codes[question_index::width]
        for row in indices:
            code = column[row]
            if known <= code < SKIP:
                raise AnalysisError(
                    f"examinee {self.examinee_ids[row]!r} selected unknown "
                    f"option {self._labels[question_index][code]!r} on "
                    f"question {question_index + 1}"
                )


class LiveCohortAnalysis:
    """An incrementally maintained §4.1 analysis for a live exam offering.

    The LMS monitor and delivery layer call :meth:`add_sitting` as each
    submission grades; :meth:`analysis` serves the current
    :class:`CohortAnalysis` from cache, re-running only the fused columnar
    sweep (split + counts) when the cohort changed — the interning and
    scoring work done at ingest time is never repeated, so keeping an
    analysis warm is far cheaper than recomputing from raw responses.
    """

    def __init__(
        self,
        questions: Sequence[QuestionSpec],
        split: GroupSplit = GroupSplit(),
        policy: SignalPolicy = DEFAULT_POLICY,
        spread_threshold: float = DEFAULT_SPREAD_THRESHOLD,
    ) -> None:
        self._matrix = ResponseMatrix(questions)
        self._split = split
        self._policy = policy
        self._spread_threshold = spread_threshold
        self._cached: Optional[CohortAnalysis] = None

    def __len__(self) -> int:
        return len(self._matrix)

    def __contains__(self, examinee_id: str) -> bool:
        return examinee_id in self._matrix

    @property
    def width(self) -> int:
        """Questions per sitting (mirrors :attr:`ResponseMatrix.width`)."""
        return self._matrix.width

    def add_sitting(self, response: ExamineeResponses) -> None:
        """Fold one submission in; O(Q) regardless of cohort size."""
        self._matrix.add_sitting(response)
        if self._cached is not None:
            obs.count("live.cache.invalidations")
        self._cached = None
        obs.count("live.sittings.added")

    def extend_codes(
        self,
        examinee_ids: Sequence[str],
        codes: "bytes | bytearray | memoryview | _np.ndarray",
    ) -> None:
        """Fold a pre-encoded shard in (see :meth:`ResponseMatrix.extend_codes`).

        This is the streaming sink for sharded array-native producers:
        ``repro.sim.vectorized.simulate_sharded(..., into=live)`` keeps a
        live analysis warm over a cohort far larger than any Python
        object list could hold.
        """
        self._matrix.extend_codes(examinee_ids, codes)
        if self._cached is not None:
            obs.count("live.cache.invalidations")
        self._cached = None
        obs.count("live.rows.extended", len(examinee_ids))

    def export_partial(self) -> Dict[str, object]:
        """The warm cohort as a scatter-gather partial (see
        :meth:`ResponseMatrix.export_partial`)."""
        return self._matrix.export_partial()

    def invalidate(self, examinee_id: Optional[str] = None) -> bool:
        """Drop one examinee's sitting (``examinee_id`` given), or just the
        cached result (no argument).  Returns whether anything changed."""
        if self._cached is not None:
            obs.count("live.cache.invalidations")
        if examinee_id is None:
            self._cached = None
            return True
        removed = self._matrix.remove_sitting(examinee_id)
        if removed:
            self._cached = None
        return removed

    def analysis(self) -> CohortAnalysis:
        """The current cohort's analysis (cached until the cohort changes)."""
        if self._cached is None:
            obs.count("live.cache.misses")
            self._cached = self._matrix.analyze(
                split=self._split,
                policy=self._policy,
                spread_threshold=self._spread_threshold,
            )
        else:
            obs.count("live.cache.hits")
        return self._cached


def merge_partials(
    questions: Sequence[QuestionSpec],
    partials: Sequence[Dict[str, object]],
) -> ResponseMatrix:
    """Gather per-shard partials into one cohort matrix.

    ``partials`` are :meth:`ResponseMatrix.export_partial` payloads, one
    per shard.  The merged cohort is put in **canonical order** — rows
    sorted by examinee id — so the result is a pure function of *who
    answered what*, independent of how learners were sharded or which
    shard replied first; analyzing it is bit-identical to running
    ``analyze_cohort`` over the same sittings sorted the same way
    (extreme-group boundary ties break by cohort order, hence the
    canonical sort).

    Fast path: when no shard interned a stray label (every label table
    is exactly the spec's options), the raw byte rows are reordered and
    adopted wholesale via :meth:`ResponseMatrix.extend_codes`.  A shard
    that saw stray labels drops the merge to the decode path, where each
    row is rebuilt label-by-label and re-interned, preserving the
    reference engine's stray-label semantics.  Duplicate examinee ids
    across shards (a routing bug — shards own disjoint learners) raise
    :class:`~repro.core.errors.AnalysisError`.
    """
    specs = tuple(questions)
    width = len(specs)
    option_lists = [list(spec.options) for spec in specs]
    rows: List[Tuple[str, bytes, Sequence[List[str]]]] = []
    clean = True
    for partial in partials:
        if partial.get("format") != "mine-partial-v1":
            raise AnalysisError(
                f"unknown partial format {partial.get('format')!r}"
            )
        if int(partial["width"]) != width:
            raise AnalysisError(
                f"partial has {partial['width']} questions; exam has {width}"
            )
        ids = list(partial["examinee_ids"])
        codes = base64.b64decode(partial["codes_b64"])
        if len(codes) != len(ids) * width:
            raise AnalysisError(
                f"partial code buffer holds {len(codes)} cells; "
                f"{len(ids)} examinees x {width} questions "
                f"needs {len(ids) * width}"
            )
        labels = [list(per_question) for per_question in partial["labels"]]
        if labels != option_lists:
            clean = False
        for index, examinee_id in enumerate(ids):
            rows.append(
                (
                    str(examinee_id),
                    codes[index * width : (index + 1) * width],
                    labels,
                )
            )
    rows.sort(key=lambda row: row[0])
    merged = ResponseMatrix(specs)
    if not rows:
        return merged
    if clean:
        merged.extend_codes(
            [row[0] for row in rows], b"".join(row[1] for row in rows)
        )
        return merged
    responses = []
    for examinee_id, row, labels in rows:
        selections: List[Optional[str]] = []
        for question, code in enumerate(row):
            if code == SKIP:
                selections.append(None)
            elif code < len(labels[question]):
                selections.append(labels[question][code])
            else:
                raise AnalysisError(
                    f"examinee {examinee_id!r} has unmapped code {code} "
                    f"on question {question + 1}"
                )
        responses.append(
            ExamineeResponses(
                examinee_id=examinee_id, selections=tuple(selections)
            )
        )
    merged.extend(responses)
    return merged


def fast_analyze_cohort(
    responses: Sequence[ExamineeResponses],
    questions: Sequence[QuestionSpec],
    split: GroupSplit = GroupSplit(),
    policy: SignalPolicy = DEFAULT_POLICY,
    spread_threshold: float = DEFAULT_SPREAD_THRESHOLD,
) -> CohortAnalysis:
    """Columnar drop-in for :func:`repro.core.question_analysis.analyze_cohort`.

    Produces a :class:`CohortAnalysis` exactly equal — grouping, option
    matrices, PH/PL/D/P, rule outcomes, signals, advice — to the reference
    engine's on the same input (the differential suite asserts this on
    randomized cohorts).  Cohorts that overflow the byte-code layout
    (>254 distinct labels on one question) fall back to the reference
    implementation transparently.
    """
    if not responses:
        raise EmptyCohortError("no examinee responses to analyse")
    if not questions:
        raise AnalysisError("no questions to analyse")
    try:
        matrix = ResponseMatrix(questions)
        matrix.extend(responses)
    except ColumnarCapacityError:
        from repro.core.question_analysis import analyze_cohort

        obs.count("analyze.columnar.fallbacks")
        return analyze_cohort(
            responses,
            questions,
            split=split,
            policy=policy,
            spread_threshold=spread_threshold,
            engine="reference",
        )
    return matrix.analyze(
        split=split, policy=policy, spread_threshold=spread_threshold
    )
