"""Core of the reproduction: the MINE assessment metadata model and the
analysis model (paper §3 and §4).

Import the commonly used names directly from this package::

    from repro.core import (
        CognitionLevel, MineMetadata, OptionMatrix, evaluate_rules,
        SignalPolicy, analyze_cohort, SpecificationTable,
    )
"""

from repro.core.advice import Advice, advise
from repro.core.cognition import COGNITIVE_LEVELS, CognitionLevel, Domain
from repro.core.columnar import (
    LiveCohortAnalysis,
    ResponseMatrix,
    fast_analyze_cohort,
)
from repro.core.errors import (
    AnalysisError,
    AssessmentError,
    EmptyCohortError,
    GroupSplitError,
    MetadataError,
    MetadataValidationError,
)
from repro.core.exam_analysis import (
    ScoreDifficultyAnalysis,
    TimeAnalysis,
    average_time,
    score_vs_difficulty,
    time_limit_adequacy,
    time_vs_answered,
)
from repro.core.grouping import (
    ACCEPTABLE_RANGE,
    KELLY_OPTIMUM,
    PAPER_FRACTION,
    GroupSplit,
    split_by_score,
)
from repro.core.indices import (
    DistractionReport,
    difficulty_index,
    discrimination_index,
    distraction_analysis,
    instructional_sensitivity_index,
    split_difficulty_index,
)
from repro.core.metadata import (
    AssessmentRecord,
    AssessmentSection,
    DisplayType,
    ExamMetadata,
    IndividualTestMetadata,
    MineMetadata,
    QuestionStyle,
    QuestionnaireMetadata,
)
from repro.core.metadata_xml import from_xml, to_xml
from repro.core.questionnaire_analysis import (
    QuestionnaireSummary,
    tabulate_questionnaire,
)
from repro.core.reliability import (
    cronbach_alpha,
    kr20,
    split_half_reliability,
    standard_error_of_measurement,
)
from repro.core.question_analysis import (
    CohortAnalysis,
    ExamineeResponses,
    QuestionAnalysis,
    QuestionSpec,
    analyze_cohort,
    analyze_matrix,
    number_representation_rows,
    render_number_representation,
)
from repro.core.concept_mastery import ConceptPerformance, concept_performance
from repro.core.export import (
    number_representation_csv,
    report_to_dict,
    report_to_json,
)
from repro.core.report import AssessmentReport, build_report
from repro.core.rules import (
    OptionMatrix,
    RuleMatch,
    RuleOutcome,
    Status,
    evaluate_rules,
)
from repro.core.significance import (
    TestResult,
    discrimination_significance,
    isi_significance,
    proportion_confidence_interval,
)
from repro.core.signals import (
    DEFAULT_POLICY,
    Signal,
    SignalPolicy,
    render_signal_board,
)
from repro.core.spec_table import SpecificationTable, TaggedQuestion

__all__ = [
    # cognition
    "CognitionLevel",
    "Domain",
    "COGNITIVE_LEVELS",
    # metadata
    "MineMetadata",
    "AssessmentSection",
    "AssessmentRecord",
    "IndividualTestMetadata",
    "ExamMetadata",
    "QuestionnaireMetadata",
    "QuestionStyle",
    "DisplayType",
    "to_xml",
    "from_xml",
    # indices
    "difficulty_index",
    "split_difficulty_index",
    "discrimination_index",
    "instructional_sensitivity_index",
    "distraction_analysis",
    "DistractionReport",
    # grouping
    "GroupSplit",
    "split_by_score",
    "KELLY_OPTIMUM",
    "ACCEPTABLE_RANGE",
    "PAPER_FRACTION",
    # rules & signals
    "OptionMatrix",
    "evaluate_rules",
    "RuleOutcome",
    "RuleMatch",
    "Status",
    "Signal",
    "SignalPolicy",
    "DEFAULT_POLICY",
    "render_signal_board",
    # question analysis
    "ExamineeResponses",
    "QuestionSpec",
    "QuestionAnalysis",
    "CohortAnalysis",
    "analyze_cohort",
    "analyze_matrix",
    "number_representation_rows",
    "render_number_representation",
    # columnar engine
    "fast_analyze_cohort",
    "ResponseMatrix",
    "LiveCohortAnalysis",
    # exam analysis
    "TimeAnalysis",
    "time_vs_answered",
    "ScoreDifficultyAnalysis",
    "score_vs_difficulty",
    "average_time",
    "time_limit_adequacy",
    # spec table
    "SpecificationTable",
    "TaggedQuestion",
    # reliability
    "kr20",
    "cronbach_alpha",
    "standard_error_of_measurement",
    "split_half_reliability",
    # significance
    "TestResult",
    "discrimination_significance",
    "isi_significance",
    "proportion_confidence_interval",
    # concept performance
    "ConceptPerformance",
    "concept_performance",
    # questionnaires
    "QuestionnaireSummary",
    "tabulate_questionnaire",
    # reports
    "AssessmentReport",
    "build_report",
    "report_to_dict",
    "report_to_json",
    "number_representation_csv",
    # advice
    "Advice",
    "advise",
    # errors
    "AssessmentError",
    "AnalysisError",
    "EmptyCohortError",
    "GroupSplitError",
    "MetadataError",
    "MetadataValidationError",
]
