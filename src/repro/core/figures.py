"""ASCII renderings of the paper's figure types.

The paper's figures are GUI screenshots and plots; this module renders
the same information as monospace text so reports work anywhere (terminal,
log file, CI output).  Three renderers match §4.2.1's three figures; the
signal board of Figure 2 lives in :mod:`repro.core.signals`; Figure 1's
metadata tree lives in :meth:`repro.core.metadata.MineMetadata.render_tree`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.errors import AnalysisError
from repro.core.exam_analysis import ScoreDifficultyAnalysis, TimeAnalysis

__all__ = [
    "render_xy_chart",
    "render_time_figure",
    "render_score_difficulty_figure",
    "render_histogram",
]


def render_xy_chart(
    points: Sequence[Tuple[float, float]],
    width: int = 60,
    height: int = 12,
    x_label: str = "x",
    y_label: str = "y",
    marker: str = "*",
) -> str:
    """Scatter a series of (x, y) points onto a character grid.

    The grid is ``width`` columns by ``height`` rows with simple axis
    annotations: the y-axis maximum at the top-left, the x range along
    the bottom.
    """
    if width < 10 or height < 4:
        raise AnalysisError("chart too small to render")
    if not points:
        return f"(no data)  {y_label} vs {x_label}"
    xs = [point[0] for point in points]
    ys = [point[1] for point in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in points:
        column = int((x - x_min) / x_span * (width - 1))
        row = int((y - y_min) / y_span * (height - 1))
        grid[height - 1 - row][column] = marker
    lines = [f"{y_label} (max {y_max:g})"]
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(
        f" {x_label}: {x_min:g} .. {x_max:g}   (y min {y_min:g})"
    )
    return "\n".join(lines)


def render_time_figure(analysis: TimeAnalysis, width: int = 60, height: int = 12) -> str:
    """§4.2.1 figure (1): time vs number of answered questions.

    Appends the is-the-time-enough verdict when a limit was supplied.
    """
    chart = render_xy_chart(
        [(point.time_seconds, point.answered) for point in analysis.series],
        width=width,
        height=height,
        x_label="time (s)",
        y_label="answered",
    )
    if analysis.time_limit_seconds is None:
        return chart
    verdict = "ENOUGH" if analysis.time_enough else "NOT ENOUGH"
    detail = (
        f"time limit {analysis.time_limit_seconds:g}s: "
        f"{analysis.fraction_finished_in_limit:.0%} finished in time "
        f"(threshold {analysis.adequacy_threshold:.0%}) -> test time {verdict}"
    )
    return chart + "\n" + detail


def render_score_difficulty_figure(
    analysis: ScoreDifficultyAnalysis, width: int = 60, height: int = 12
) -> str:
    """§4.2.1 figure (2): test score vs degree of difficulty."""
    points = [
        (float(band.score), band.mean_difficulty_of_correct)
        for band in analysis.bands
        if band.mean_difficulty_of_correct is not None
    ]
    chart = render_xy_chart(
        points,
        width=width,
        height=height,
        x_label="test score",
        y_label="difficulty P",
    )
    histogram = render_histogram(
        [(str(band.score), band.examinees) for band in analysis.bands],
        title="examinees per score",
    )
    return chart + "\n" + histogram


def render_histogram(
    bars: Sequence[Tuple[str, int]],
    width: int = 40,
    title: Optional[str] = None,
) -> str:
    """Horizontal bar chart: one labelled bar per (label, count)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    if not bars:
        lines.append("(no data)")
        return "\n".join(lines)
    maximum = max(count for _, count in bars) or 1
    label_width = max(len(label) for label, _ in bars)
    for label, count in bars:
        length = int(count / maximum * width)
        lines.append(f"{label.rjust(label_width)} |{'#' * length} {count}")
    return "\n".join(lines)
