"""Total-test statistics and analysis (paper §4.2).

Section 4.2.1 lists three figure representations of a whole test:

1. **Time vs number of answered questions** — "shows the test time is
   enough or not": the cumulative count of questions answered as time
   advances, compared against the exam's time limit;
2. **Test score vs degree of difficulty** — "the distribution of score
   and difficulty": for each examinee score band, the mean difficulty of
   the questions they got right (and the score histogram);
3. **Cognition level vs learning-content subject** — the two-way
   specification table (:mod:`repro.core.spec_table`).

This module computes the data series behind figures (1) and (2) plus the
exam-level aggregates of §3.4 (average time, time-limit adequacy) and a
whole-test summary combining everything §4.2 defines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.errors import AnalysisError, EmptyCohortError
from repro.core.question_analysis import QuestionAnalysis

__all__ = [
    "TimeSeriesPoint",
    "TimeAnalysis",
    "time_vs_answered",
    "ScoreDifficultyBand",
    "ScoreDifficultyAnalysis",
    "score_vs_difficulty",
    "average_time",
    "time_limit_adequacy",
]


# --------------------------------------------------------------------------
# Figure (1): time (cross axle) vs number of answered questions (vertical)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class TimeSeriesPoint:
    """One point of the time/answered figure: at ``time_seconds`` into the
    exam, ``answered`` questions have been answered on average."""

    time_seconds: float
    answered: float


@dataclass
class TimeAnalysis:
    """The figure (1) series plus the is-the-time-enough verdict.

    ``series`` — average cumulative questions answered at each sampled
    time; ``fraction_finished_in_limit`` — share of examinees whose total
    duration fits the limit; ``time_enough`` — the paper's question
    answered: True when at least ``adequacy_threshold`` of examinees
    finish within the limit.
    """

    series: List[TimeSeriesPoint]
    time_limit_seconds: Optional[float]
    fraction_finished_in_limit: Optional[float]
    adequacy_threshold: float
    time_enough: Optional[bool]


def time_vs_answered(
    answer_times: Sequence[Sequence[float]],
    time_limit_seconds: Optional[float] = None,
    samples: int = 20,
    adequacy_threshold: float = 0.9,
) -> TimeAnalysis:
    """Compute the §4.2.1 figure (1) series.

    ``answer_times[e]`` lists, for examinee ``e``, the elapsed time (in
    seconds from the exam start) at which each of their answers was
    committed.  The series samples ``samples`` evenly spaced times from 0
    to the latest answer (or the limit, if larger) and averages, across
    examinees, how many answers each had committed by then.

    When ``time_limit_seconds`` is given, the verdict ``time_enough`` is
    True when at least ``adequacy_threshold`` of examinees committed their
    final answer within the limit.
    """
    if not answer_times:
        raise EmptyCohortError("no examinee timing data")
    if samples < 2:
        raise AnalysisError(f"need at least 2 samples, got {samples}")
    if not 0.0 < adequacy_threshold <= 1.0:
        raise AnalysisError(
            f"adequacy threshold must be in (0, 1], got {adequacy_threshold}"
        )
    per_examinee = [sorted(times) for times in answer_times]
    for times in per_examinee:
        if any(value < 0 for value in times):
            raise AnalysisError("answer times must be non-negative")
    latest = max((times[-1] for times in per_examinee if times), default=0.0)
    horizon = max(latest, time_limit_seconds or 0.0)
    if horizon == 0.0:
        horizon = 1.0
    series = []
    for index in range(samples):
        at = horizon * index / (samples - 1)
        answered = [
            _count_leq(times, at) for times in per_examinee
        ]
        series.append(
            TimeSeriesPoint(time_seconds=at, answered=sum(answered) / len(answered))
        )
    fraction: Optional[float] = None
    enough: Optional[bool] = None
    if time_limit_seconds is not None:
        finished = [
            1 if (not times or times[-1] <= time_limit_seconds) else 0
            for times in per_examinee
        ]
        fraction = sum(finished) / len(finished)
        enough = fraction >= adequacy_threshold
    return TimeAnalysis(
        series=series,
        time_limit_seconds=time_limit_seconds,
        fraction_finished_in_limit=fraction,
        adequacy_threshold=adequacy_threshold,
        time_enough=enough,
    )


def _count_leq(sorted_times: Sequence[float], at: float) -> int:
    count = 0
    for value in sorted_times:
        if value <= at:
            count += 1
        else:
            break
    return count


# --------------------------------------------------------------------------
# Figure (2): test score (cross axle) vs degree of difficulty (vertical)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ScoreDifficultyBand:
    """One score band of the figure (2) distribution."""

    score: int
    examinees: int
    mean_difficulty_of_correct: Optional[float]


@dataclass
class ScoreDifficultyAnalysis:
    """The figure (2) data: for each achieved total score, how many
    examinees achieved it and the mean difficulty index of the questions
    they answered correctly."""

    bands: List[ScoreDifficultyBand]

    @property
    def scores(self) -> List[int]:
        """The distinct total scores, ascending."""
        return [band.score for band in self.bands]


def score_vs_difficulty(
    scores: Dict[str, int],
    correct_flags: Dict[str, Sequence[bool]],
    question_analyses: Sequence[QuestionAnalysis],
) -> ScoreDifficultyAnalysis:
    """Compute the §4.2.1 figure (2) distribution.

    ``scores`` maps examinee id to total score; ``correct_flags`` maps
    examinee id to per-question correctness; ``question_analyses`` supply
    each question's difficulty index P.  For every distinct score the
    band aggregates its examinees and the mean P over the questions those
    examinees answered correctly — easy tests show high-P mass at every
    score; discriminating tests show low scorers succeeding only on
    high-P (easy) questions.
    """
    if not scores:
        raise EmptyCohortError("no scores to analyse")
    if set(scores) != set(correct_flags):
        raise AnalysisError("scores and correctness cover different examinees")
    difficulties = [analysis.difficulty for analysis in question_analyses]
    width = len(difficulties)
    for examinee, flags in correct_flags.items():
        if len(flags) != width:
            raise AnalysisError(
                f"examinee {examinee!r} has {len(flags)} correctness flags; "
                f"exam has {width} questions"
            )
    bands: List[ScoreDifficultyBand] = []
    for score in sorted(set(scores.values())):
        members = [
            examinee for examinee, value in scores.items() if value == score
        ]
        correct_ps: List[float] = []
        for examinee in members:
            flags = correct_flags[examinee]
            correct_ps.extend(
                difficulties[index] for index, flag in enumerate(flags) if flag
            )
        mean_p = sum(correct_ps) / len(correct_ps) if correct_ps else None
        bands.append(
            ScoreDifficultyBand(
                score=score,
                examinees=len(members),
                mean_difficulty_of_correct=mean_p,
            )
        )
    return ScoreDifficultyAnalysis(bands=bands)


# --------------------------------------------------------------------------
# Exam-level aggregates (§3.4)
# --------------------------------------------------------------------------


def average_time(durations_seconds: Sequence[float]) -> float:
    """The §3.4 Average Time: mean sitting duration.

    "Each people take different time answering questions, we use average
    time for operation."
    """
    if not durations_seconds:
        raise EmptyCohortError("no sitting durations")
    if any(value < 0 for value in durations_seconds):
        raise AnalysisError("durations must be non-negative")
    return sum(durations_seconds) / len(durations_seconds)


def time_limit_adequacy(
    durations_seconds: Sequence[float],
    time_limit_seconds: float,
) -> float:
    """Fraction of sittings completed within the §3.4 Test Time limit."""
    if time_limit_seconds <= 0:
        raise AnalysisError(
            f"time limit must be positive, got {time_limit_seconds}"
        )
    if not durations_seconds:
        raise EmptyCohortError("no sitting durations")
    within = sum(1 for value in durations_seconds if value <= time_limit_seconds)
    return within / len(durations_seconds)
