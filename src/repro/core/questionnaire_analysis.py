"""Questionnaire tabulation (paper §3.2 VI).

Questionnaire items have no correct answer; their analysis is a
distribution summary per question: counts and proportions per scale
label, the response rate, and — for ordered (Likert) scales — the mean
position and polarization.  The paper folds questionnaires into the same
assessment model; this module is their counterpart to §4.1's item
analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

from repro.core.errors import AnalysisError, EmptyCohortError

__all__ = ["QuestionnaireSummary", "tabulate_questionnaire"]


@dataclass(frozen=True)
class QuestionnaireSummary:
    """Distribution of responses to one questionnaire question."""

    question: str
    scale: Sequence[str]
    counts: Mapping[str, int]
    respondents: int
    omissions: int
    #: 1-based mean scale position for ordered scales (None if free-text)
    mean_position: Optional[float]

    @property
    def response_rate(self) -> float:
        """Respondents over respondents + omissions."""
        total = self.respondents + self.omissions
        return self.respondents / total if total else 0.0

    def proportion(self, label: str) -> float:
        """A label's share of the actual responses."""
        if label not in self.counts:
            raise AnalysisError(f"label {label!r} not tabulated")
        return (
            self.counts[label] / self.respondents if self.respondents else 0.0
        )

    def render(self, width: int = 30) -> str:
        """Horizontal-bar rendering of the distribution."""
        lines = [f"{self.question}  (n={self.respondents}, "
                 f"response rate {self.response_rate:.0%})"]
        maximum = max(self.counts.values(), default=0) or 1
        label_width = max((len(label) for label in self.counts), default=0)
        for label in self.scale or sorted(self.counts):
            count = self.counts.get(label, 0)
            bar = "#" * int(count / maximum * width)
            lines.append(f"  {label.rjust(label_width)} |{bar} {count}")
        if self.mean_position is not None:
            lines.append(f"  mean position: {self.mean_position:.2f}")
        return "\n".join(lines)


def tabulate_questionnaire(
    question: str,
    responses: Sequence[Optional[str]],
    scale: Sequence[str] = (),
) -> QuestionnaireSummary:
    """Tabulate one questionnaire question's responses.

    ``responses`` holds one selection (or None for omitted) per
    respondent.  With an ordered ``scale``, off-scale responses are
    rejected and the 1-based mean position is computed; without one,
    free-text responses are counted verbatim.
    """
    if not responses:
        raise EmptyCohortError("no questionnaire responses")
    if len(set(scale)) != len(scale):
        raise AnalysisError("duplicate scale labels")
    counts: Dict[str, int] = {label: 0 for label in scale}
    respondents = 0
    omissions = 0
    for response in responses:
        if response is None:
            omissions += 1
            continue
        if scale and response not in counts:
            raise AnalysisError(
                f"response {response!r} is not on the scale {list(scale)}"
            )
        counts[response] = counts.get(response, 0) + 1
        respondents += 1
    mean_position: Optional[float] = None
    if scale and respondents:
        position_of = {label: index + 1 for index, label in enumerate(scale)}
        mean_position = (
            sum(position_of[label] * count for label, count in counts.items())
            / respondents
        )
    return QuestionnaireSummary(
        question=question,
        scale=tuple(scale),
        counts=counts,
        respondents=respondents,
        omissions=omissions,
        mean_position=mean_position,
    )
