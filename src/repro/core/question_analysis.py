"""Single-question statistics and analysis (paper §4.1).

This module implements the full §4.1 pipeline over a cohort's responses:

1. arrange examinees by total score and split the extreme groups
   (:mod:`repro.core.grouping`);
2. build each question's option matrix (Table 1);
3. compute PH, PL, D = PH − PL and P = (PH + PL)/2 — the "number
   representation" of §4.1.1;
4. run the four diagnostic rules (§4.1.2) and classify the light signal
   (Table 3) — the "signal representation";
5. attach teacher advice (:mod:`repro.core.advice`).

The cohort input is deliberately simple: a list of
:class:`ExamineeResponses` (one selected option label, or ``None`` for
skipped, per question) plus the answer key.  Higher layers
(:mod:`repro.delivery`, :mod:`repro.sim`) produce this shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro import obs
from repro.core.advice import Advice, advise
from repro.core.errors import AnalysisError, EmptyCohortError
from repro.core.grouping import GroupSplit
from repro.core.indices import (
    DistractionReport,
    discrimination_index,
    distraction_analysis,
    split_difficulty_index,
)
from repro.core.rules import (
    DEFAULT_SPREAD_THRESHOLD,
    OptionMatrix,
    RuleOutcome,
    evaluate_rules,
)
from repro.core.signals import DEFAULT_POLICY, Signal, SignalPolicy

__all__ = [
    "ExamineeResponses",
    "QuestionSpec",
    "QuestionAnalysis",
    "CohortAnalysis",
    "analyze_cohort",
    "analyze_matrix",
    "number_representation_rows",
    "render_number_representation",
]


@dataclass(frozen=True)
class ExamineeResponses:
    """One examinee's sitting: an identifier and one selection per question.

    ``selections[i]`` is the option label the examinee chose on question
    ``i`` (``None`` when skipped).  ``duration_seconds`` optionally records
    how long the sitting took (used by the whole-test time analysis).
    """

    examinee_id: str
    selections: Tuple[Optional[str], ...]
    duration_seconds: Optional[float] = None

    @classmethod
    def of(
        cls,
        examinee_id: str,
        selections: Sequence[Optional[str]],
        duration_seconds: Optional[float] = None,
    ) -> "ExamineeResponses":
        """Convenience constructor from any selection sequence."""
        return cls(examinee_id, tuple(selections), duration_seconds)


@dataclass(frozen=True)
class QuestionSpec:
    """What the analysis needs to know about one question.

    ``options`` — the option labels in display order; ``correct`` — the
    key; ``subject``/``cognition_level`` — optional tags consumed by the
    whole-test analyses (two-way specification table)."""

    options: Tuple[str, ...]
    correct: str
    subject: str = ""
    cognition_level: Optional[object] = None  # CognitionLevel, kept loose here


@dataclass(frozen=True)
class QuestionAnalysis:
    """The complete §4.1 result for one question."""

    number: int
    matrix: OptionMatrix
    p_high: float
    p_low: float
    difficulty: float
    discrimination: float
    signal: Signal
    rules: RuleOutcome
    advice: Advice
    distraction: Optional[DistractionReport] = None

    def number_row(self) -> Tuple[int, float, float, float, float]:
        """One row of the §4.1.1 table: (No, PH, PL, D, P)."""
        return (
            self.number,
            self.p_high,
            self.p_low,
            self.discrimination,
            self.difficulty,
        )


@dataclass
class CohortAnalysis:
    """Analysis of a whole sitting: per-question results plus group info."""

    questions: List[QuestionAnalysis]
    high_group: List[str] = field(default_factory=list)
    low_group: List[str] = field(default_factory=list)
    scores: Dict[str, int] = field(default_factory=dict)

    @property
    def signals(self) -> List[Signal]:
        """Per-question light signals, in question order."""
        return [question.signal for question in self.questions]

    def question(self, number: int) -> QuestionAnalysis:
        """The analysis for 1-based question ``number``."""
        for analysis in self.questions:
            if analysis.number == number:
                return analysis
        raise AnalysisError(f"no question number {number}")


def analyze_matrix(
    matrix: OptionMatrix,
    high_size: int,
    low_size: int,
    number: int = 1,
    policy: SignalPolicy = DEFAULT_POLICY,
    spread_threshold: float = DEFAULT_SPREAD_THRESHOLD,
) -> QuestionAnalysis:
    """Analyse one question given its option matrix and the group sizes.

    This is the entry point the paper's own worked examples use: Table 1
    style counts with known group sizes (e.g. the class of 44 with groups
    of 11).  PH and PL are computed against the *group sizes*, matching
    the paper's arithmetic (PH = 10/11 for question no. 2).
    """
    if high_size <= 0 or low_size <= 0:
        raise AnalysisError(
            f"group sizes must be positive, got high={high_size}, low={low_size}"
        )
    p_high = matrix.high[matrix.correct] / high_size
    p_low = matrix.low[matrix.correct] / low_size
    difficulty = split_difficulty_index(p_high, p_low)
    discrimination = discrimination_index(p_high, p_low)
    signal = policy.classify(discrimination)
    rules = evaluate_rules(matrix, spread_threshold=spread_threshold)
    distraction = distraction_analysis(
        high_counts=matrix.high,
        low_counts=matrix.low,
        correct_option=matrix.correct,
    )
    return QuestionAnalysis(
        number=number,
        matrix=matrix,
        p_high=p_high,
        p_low=p_low,
        difficulty=difficulty,
        discrimination=discrimination,
        signal=signal,
        rules=rules,
        advice=advise(signal, rules.matches),
        distraction=distraction,
    )


def analyze_cohort(
    responses: Sequence[ExamineeResponses],
    questions: Sequence[QuestionSpec],
    split: GroupSplit = GroupSplit(),
    policy: SignalPolicy = DEFAULT_POLICY,
    spread_threshold: float = DEFAULT_SPREAD_THRESHOLD,
    engine: str = "columnar",
) -> CohortAnalysis:
    """Run the full §4.1 pipeline over a cohort's raw responses.

    Scores each examinee (one point per correct selection), splits the
    high/low groups with ``split`` (paper default: top and bottom 25%),
    builds each question's option matrix from group selections, and
    analyses every question.

    ``engine`` selects the implementation: ``"columnar"`` (default) is
    the single-pass engine of :mod:`repro.core.columnar`; ``"reference"``
    is the original per-object pipeline kept as the paper-faithful
    baseline.  Both produce field-for-field equal results (the
    differential suite in ``tests/core`` enforces this).
    """
    if engine == "columnar":
        from repro.core.columnar import fast_analyze_cohort

        return fast_analyze_cohort(
            responses,
            questions,
            split=split,
            policy=policy,
            spread_threshold=spread_threshold,
        )
    if engine != "reference":
        raise AnalysisError(
            f"unknown analysis engine {engine!r}; "
            f"expected 'columnar' or 'reference'"
        )
    with obs.span(
        "analyze.reference",
        examinees=len(responses),
        questions=len(questions),
    ):
        return _reference_analyze_cohort(
            responses,
            questions,
            split=split,
            policy=policy,
            spread_threshold=spread_threshold,
        )


def _reference_analyze_cohort(
    responses: Sequence[ExamineeResponses],
    questions: Sequence[QuestionSpec],
    split: GroupSplit,
    policy: SignalPolicy,
    spread_threshold: float,
) -> CohortAnalysis:
    """The paper-faithful per-object pipeline (the ``reference`` engine)."""
    if not responses:
        raise EmptyCohortError("no examinee responses to analyse")
    if not questions:
        raise AnalysisError("no questions to analyse")
    width = len(questions)
    for response in responses:
        if len(response.selections) != width:
            raise AnalysisError(
                f"examinee {response.examinee_id!r} answered "
                f"{len(response.selections)} questions; exam has {width}"
            )
    seen_ids = set()
    for response in responses:
        if response.examinee_id in seen_ids:
            raise AnalysisError(
                f"duplicate examinee id {response.examinee_id!r} in cohort"
            )
        seen_ids.add(response.examinee_id)

    scores: Dict[str, int] = {}
    for response in responses:
        scores[response.examinee_id] = sum(
            1
            for selection, spec in zip(response.selections, questions)
            if selection == spec.correct
        )

    high, low = split.split(
        list(responses), lambda examinee: scores[examinee.examinee_id]
    )
    high_ids = [examinee.examinee_id for examinee in high]
    low_ids = [examinee.examinee_id for examinee in low]

    analyses: List[QuestionAnalysis] = []
    for index, spec in enumerate(questions):
        matrix = OptionMatrix(
            options=spec.options,
            high=_option_counts(high, index, spec.options),
            low=_option_counts(low, index, spec.options),
            correct=spec.correct,
        )
        analyses.append(
            analyze_matrix(
                matrix,
                high_size=len(high),
                low_size=len(low),
                number=index + 1,
                policy=policy,
                spread_threshold=spread_threshold,
            )
        )
    return CohortAnalysis(
        questions=analyses,
        high_group=high_ids,
        low_group=low_ids,
        scores=scores,
    )


def _option_counts(
    group: Sequence[ExamineeResponses],
    question_index: int,
    options: Tuple[str, ...],
) -> Mapping[str, int]:
    counts = {option: 0 for option in options}
    for examinee in group:
        selection = examinee.selections[question_index]
        if selection is None:
            continue
        if selection not in counts:
            raise AnalysisError(
                f"examinee {examinee.examinee_id!r} selected unknown option "
                f"{selection!r} on question {question_index + 1}"
            )
        counts[selection] += 1
    return counts


# --------------------------------------------------------------------------
# §4.1.1 "number representation" table
# --------------------------------------------------------------------------


def number_representation_rows(
    analyses: Sequence[QuestionAnalysis],
) -> List[Tuple[int, float, float, float, float]]:
    """The (No, PH, PL, D, P) rows of §4.1.1's table."""
    return [analysis.number_row() for analysis in analyses]


def render_number_representation(analyses: Sequence[QuestionAnalysis]) -> str:
    """Render the §4.1.1 table as aligned text.

    Columns follow the paper exactly: No, PH, PL, D=PH-PL, P=(PH+PL)/2.
    """
    header = ("No", "PH", "PL", "D=PH-PL", "P=(PH+PL)/2")
    rows = [
        (
            str(number),
            f"{p_high:.2f}",
            f"{p_low:.2f}",
            f"{d:.2f}",
            f"{p:.2f}",
        )
        for number, p_high, p_low, d, p in number_representation_rows(analyses)
    ]
    widths = [
        max(len(header[i]), *(len(row[i]) for row in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]
    lines = ["  ".join(header[i].ljust(widths[i]) for i in range(len(header)))]
    for row in rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(header))))
    return "\n".join(lines)
