"""Psychometric indices defined by the paper (§3.3, §3.4, §4.1.1).

Implemented here:

* **Item Difficulty Index** — two definitions the paper gives:
  the whole-group form ``P = R / N`` (§3.3: "R: the number which people
  have right answer, N: Sum"; worked example R=800, N=1000 → P=0.8), and
  the split-group form ``P = (PH + PL) / 2`` (§4.1.1 step 4).  The paper
  notes "the more Item Difficulty Index increase, the question is easier".
* **Item Discrimination Index** — ``D = PH − PL`` (§4.1.1 step 5).
* **Distraction analysis** — per-option selection proportions, identifying
  distractors that attract nobody or attract the high group more than the
  low group.
* **Instructional Sensitivity Index** — §3.4: "comparison between the test
  result before teaching and the test result after teaching"; the standard
  form is ``ISI = P_post − P_pre`` per item.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

from repro.core.errors import AnalysisError

__all__ = [
    "difficulty_index",
    "split_difficulty_index",
    "discrimination_index",
    "instructional_sensitivity_index",
    "proportion_correct",
    "DistractionReport",
    "distraction_analysis",
]


def difficulty_index(right: int, total: int) -> float:
    """Whole-group Item Difficulty Index ``P = R / N`` (§3.3).

    ``right`` is the number of examinees who answered correctly; ``total``
    is the number of examinees.  Returns a proportion in [0, 1]; higher
    values mean an easier question.

    >>> difficulty_index(800, 1000)
    0.8
    """
    if total <= 0:
        raise AnalysisError(f"total examinees must be positive, got {total}")
    if not 0 <= right <= total:
        raise AnalysisError(
            f"right answers ({right}) must be between 0 and total ({total})"
        )
    return right / total


def split_difficulty_index(p_high: float, p_low: float) -> float:
    """Split-group Item Difficulty Index ``P = (PH + PL) / 2`` (§4.1.1).

    ``p_high``/``p_low`` are the proportions correct within the high- and
    low-score groups.
    """
    _check_proportion("PH", p_high)
    _check_proportion("PL", p_low)
    return (p_high + p_low) / 2.0


def discrimination_index(p_high: float, p_low: float) -> float:
    """Item Discrimination Index ``D = PH − PL`` (§4.1.1).

    Positive D means the high-score group outperforms the low-score group
    on the item — the item discriminates in the right direction.  D ranges
    over [-1, 1].
    """
    _check_proportion("PH", p_high)
    _check_proportion("PL", p_low)
    return p_high - p_low


def instructional_sensitivity_index(p_pre: float, p_post: float) -> float:
    """Instructional Sensitivity Index (§3.4).

    Computed as the gain in proportion-correct from the pre-teaching test
    to the post-teaching test: ``ISI = P_post − P_pre``.  An item that
    instruction helps has positive ISI; an item unaffected by teaching has
    ISI near zero.
    """
    _check_proportion("pre-teaching P", p_pre)
    _check_proportion("post-teaching P", p_post)
    return p_post - p_pre


def proportion_correct(flags: Sequence[bool]) -> float:
    """Proportion of True values in a correctness vector.

    Helper used when computing PH/PL from raw per-examinee correctness.
    """
    if not flags:
        raise AnalysisError("cannot take a proportion of an empty group")
    return sum(1 for flag in flags if flag) / len(flags)


def _check_proportion(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise AnalysisError(f"{name} must be a proportion in [0, 1], got {value}")


# --------------------------------------------------------------------------
# Distraction analysis (§3.3 V: "With the analysis, define students'
# distraction.")
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class DistractionReport:
    """Per-option distraction analysis for one choice question.

    ``selection_rates`` maps each option label to the fraction of all
    examinees who chose it; ``dead_options`` are distractors nobody chose;
    ``inverted_options`` are wrong options chosen *more* by the high group
    than the low group (a symptom the paper's Rule 2 also flags).
    """

    correct_option: str
    selection_rates: Mapping[str, float]
    dead_options: Sequence[str]
    inverted_options: Sequence[str]

    def describe(self) -> str:
        """One-line textual summary suitable for the metadata's
        ``distraction`` field."""
        parts = []
        if self.dead_options:
            parts.append("no takers: " + ", ".join(self.dead_options))
        if self.inverted_options:
            parts.append(
                "attracts high scorers: " + ", ".join(self.inverted_options)
            )
        if not parts:
            return "distractors functioning"
        return "; ".join(parts)


def distraction_analysis(
    high_counts: Mapping[str, int],
    low_counts: Mapping[str, int],
    correct_option: str,
    total_counts: Optional[Mapping[str, int]] = None,
) -> DistractionReport:
    """Analyse how the distractors of a choice question behave.

    ``high_counts``/``low_counts`` map option labels to the number of
    examinees in the high-/low-score groups who selected that option
    (the paper's Table 1 layout).  ``total_counts`` optionally supplies
    whole-cohort counts for the selection rates; when omitted the two
    groups are pooled.
    """
    options = list(high_counts)
    if set(options) != set(low_counts):
        raise AnalysisError(
            "high and low groups must cover the same options: "
            f"{sorted(high_counts)} vs {sorted(low_counts)}"
        )
    if correct_option not in high_counts:
        raise AnalysisError(
            f"correct option {correct_option!r} is not among the options "
            f"{sorted(high_counts)}"
        )
    pooled: Dict[str, int] = {
        option: (
            total_counts[option]
            if total_counts is not None
            else high_counts[option] + low_counts[option]
        )
        for option in options
    }
    pooled_total = sum(pooled.values())
    rates = {
        option: (count / pooled_total if pooled_total else 0.0)
        for option, count in pooled.items()
    }
    dead = [
        option
        for option in options
        if option != correct_option and pooled[option] == 0
    ]
    inverted = [
        option
        for option in options
        if option != correct_option and high_counts[option] > low_counts[option]
    ]
    return DistractionReport(
        correct_option=correct_option,
        selection_rates=rates,
        dead_options=tuple(dead),
        inverted_options=tuple(inverted),
    )
