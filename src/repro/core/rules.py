"""The four diagnostic rules over the option-choice matrix (paper §4.1.2).

The paper's "signal representation" analyses each multiple-choice question
through a table of option-selection counts split by score group
(Table 1)::

                    Option A  Option B  Option C  Option D  Option E
    High Score Group    HA        HB        HC        HD        HE
    Low Score Group     LA        LB        LC        LD        LE

and four rules:

* **Rule 1** — if any LN = 0, that option's *allure is low* (it attracts
  nobody in the low group, so it is not functioning as a distractor).
* **Rule 2** — if option N is correct and HN < LN, or option N is wrong
  and HN > LN, the option is *not well-defined* (Table 2 reads this as:
  the option meaning is not clear / examinees were careless / there is
  not only one exact answer).
* **Rule 3** — if the spread of low-group counts is small,
  ``|LM − Lm| ≤ LS × 20%`` with LM/Lm the max/min and LS the sum, the low
  group chose "every option equally": *low score group lacks the concept*.
* **Rule 4** — if both the low-group spread (Rule 3) **and** the
  high-group spread are small, *both groups lack the concept*.

:class:`OptionMatrix` is Table 1; :func:`evaluate_rules` returns one
:class:`RuleMatch` per fired rule, each carrying its Table 2 statuses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.errors import AnalysisError

__all__ = [
    "DEFAULT_SPREAD_THRESHOLD",
    "Status",
    "OptionMatrix",
    "RuleMatch",
    "RuleOutcome",
    "evaluate_rules",
    "STATUSES_BY_RULE",
]

#: The 20% spread threshold of Rules 3 and 4.
DEFAULT_SPREAD_THRESHOLD = 0.20


class Status(enum.Enum):
    """The problem statuses of the paper's Table 2."""

    LOW_ALLURE = "the option's allure is low"
    OPTION_NOT_CLEAR = "the option meaning is not clear"
    CARELESS = "careless"
    NOT_ONLY_ONE_ANSWER = "not only one exact answer"
    LOW_GROUP_LACKS_CONCEPT = "low score group lack concept"
    HIGH_GROUP_LACKS_CONCEPT = "high score group lack concept"

    def __str__(self) -> str:
        return self.value


#: Table 2 — which statuses each rule can assert.
STATUSES_BY_RULE: Mapping[int, Tuple[Status, ...]] = {
    1: (Status.LOW_ALLURE,),
    2: (Status.OPTION_NOT_CLEAR, Status.CARELESS, Status.NOT_ONLY_ONE_ANSWER),
    3: (Status.LOW_GROUP_LACKS_CONCEPT,),
    4: (Status.LOW_GROUP_LACKS_CONCEPT, Status.HIGH_GROUP_LACKS_CONCEPT),
}


@dataclass(frozen=True)
class OptionMatrix:
    """Table 1: per-option selection counts split by score group.

    ``options`` fixes the option order (e.g. ``("A", "B", "C", "D", "E")``);
    ``high``/``low`` map each option to the number of examinees in the
    high-/low-score groups who selected it; ``correct`` is the key.

    Counts of examinees who skipped the question are simply absent from
    the sums, exactly as in the paper's examples (where group size 20 may
    exceed the column sum).
    """

    options: Tuple[str, ...]
    high: Mapping[str, int]
    low: Mapping[str, int]
    correct: str

    def __post_init__(self) -> None:
        if not self.options:
            raise AnalysisError("option matrix needs at least one option")
        if len(set(self.options)) != len(self.options):
            raise AnalysisError(f"duplicate option labels: {self.options}")
        for name, counts in (("high", self.high), ("low", self.low)):
            missing = [option for option in self.options if option not in counts]
            if missing:
                raise AnalysisError(f"{name} counts missing options: {missing}")
            negative = {
                option: counts[option]
                for option in self.options
                if counts[option] < 0
            }
            if negative:
                raise AnalysisError(f"negative {name} counts: {negative}")
        if self.correct not in self.options:
            raise AnalysisError(
                f"correct option {self.correct!r} not among options {self.options}"
            )

    @classmethod
    def from_rows(
        cls,
        high_row: Sequence[int],
        low_row: Sequence[int],
        correct: str,
        options: Optional[Sequence[str]] = None,
    ) -> "OptionMatrix":
        """Build a matrix from two count rows in option order.

        When ``options`` is omitted, labels default to "A", "B", ... as in
        the paper's tables.
        """
        if len(high_row) != len(low_row):
            raise AnalysisError(
                f"row lengths differ: {len(high_row)} vs {len(low_row)}"
            )
        if options is None:
            options = [chr(ord("A") + i) for i in range(len(high_row))]
        labels = tuple(options)
        if len(labels) != len(high_row):
            raise AnalysisError(
                f"got {len(labels)} labels for {len(high_row)} columns"
            )
        return cls(
            options=labels,
            high=dict(zip(labels, high_row)),
            low=dict(zip(labels, low_row)),
            correct=correct,
        )

    # -- aggregates used by the rules ---------------------------------------

    @property
    def high_sum(self) -> int:
        """HS = sum of high-group counts."""
        return sum(self.high[option] for option in self.options)

    @property
    def low_sum(self) -> int:
        """LS = sum of low-group counts."""
        return sum(self.low[option] for option in self.options)

    @property
    def high_max(self) -> int:
        """HM = max of high-group counts."""
        return max(self.high[option] for option in self.options)

    @property
    def high_min(self) -> int:
        """Hm = min of high-group counts."""
        return min(self.high[option] for option in self.options)

    @property
    def low_max(self) -> int:
        """LM = max of low-group counts."""
        return max(self.low[option] for option in self.options)

    @property
    def low_min(self) -> int:
        """Lm = min of low-group counts."""
        return min(self.low[option] for option in self.options)

    def proportion_high_correct(self, group_size: Optional[int] = None) -> float:
        """PH: proportion of the high group answering correctly.

        ``group_size`` defaults to the high-group column sum; pass the
        actual group size when some examinees skipped the question.
        """
        denominator = group_size if group_size is not None else self.high_sum
        if denominator <= 0:
            raise AnalysisError("high group is empty")
        return self.high[self.correct] / denominator

    def proportion_low_correct(self, group_size: Optional[int] = None) -> float:
        """PL: proportion of the low group answering correctly."""
        denominator = group_size if group_size is not None else self.low_sum
        if denominator <= 0:
            raise AnalysisError("low group is empty")
        return self.low[self.correct] / denominator

    def render(self) -> str:
        """Render the matrix in the paper's Table 1 layout."""
        header = [""] + [f"Option {option}" for option in self.options]
        high_row = ["High Score Group"] + [
            str(self.high[option]) for option in self.options
        ]
        low_row = ["Low Score Group"] + [
            str(self.low[option]) for option in self.options
        ]
        widths = [
            max(len(row[i]) for row in (header, high_row, low_row))
            for i in range(len(header))
        ]
        lines = []
        for row in (header, high_row, low_row):
            lines.append(
                "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class RuleMatch:
    """One fired rule: which rule, which options triggered it, its Table 2
    statuses, and a teacher-readable explanation."""

    rule: int
    statuses: Tuple[Status, ...]
    options: Tuple[str, ...]
    explanation: str


@dataclass
class RuleOutcome:
    """The result of running all four rules on one option matrix."""

    matrix: OptionMatrix
    matches: List[RuleMatch] = field(default_factory=list)

    @property
    def fired_rules(self) -> Tuple[int, ...]:
        """The rule numbers that fired, ascending."""
        return tuple(match.rule for match in self.matches)

    @property
    def statuses(self) -> Tuple[Status, ...]:
        """Distinct Table 2 statuses asserted, first-seen order."""
        seen: Dict[Status, None] = {}
        for match in self.matches:
            for status in match.statuses:
                seen.setdefault(status, None)
        return tuple(seen)

    def rule_fired(self, rule: int) -> bool:
        """True when the given rule number fired."""
        return rule in self.fired_rules


def evaluate_rules(
    matrix: OptionMatrix,
    spread_threshold: float = DEFAULT_SPREAD_THRESHOLD,
) -> RuleOutcome:
    """Run the paper's four rules on one question's option matrix.

    ``spread_threshold`` is the 20% of Rules 3/4, exposed for the
    threshold ablation.  Returns a :class:`RuleOutcome` whose ``matches``
    are ordered by rule number.
    """
    if not 0.0 < spread_threshold < 1.0:
        raise AnalysisError(
            f"spread threshold must be in (0, 1), got {spread_threshold}"
        )
    outcome = RuleOutcome(matrix=matrix)

    # Rule 1: (LA | LB | ... ) = 0 — an option with no low-group takers.
    dead = tuple(
        option for option in matrix.options if matrix.low[option] == 0
    )
    if dead:
        listed = ", ".join(dead)
        outcome.matches.append(
            RuleMatch(
                rule=1,
                statuses=STATUSES_BY_RULE[1],
                options=dead,
                explanation=(
                    f"Rule 1: option(s) {listed} attracted nobody in the low "
                    f"score group; the option's allure is low."
                ),
            )
        )

    # Rule 2: correct option with HN < LN, or wrong option with HN > LN.
    suspect: List[str] = []
    reasons: List[str] = []
    for option in matrix.options:
        hn, ln = matrix.high[option], matrix.low[option]
        if option == matrix.correct and hn < ln:
            suspect.append(option)
            reasons.append(
                f"correct option {option} chosen more by the low group "
                f"({ln}) than the high group ({hn})"
            )
        elif option != matrix.correct and hn > ln:
            suspect.append(option)
            reasons.append(
                f"wrong option {option} chosen more by the high group "
                f"({hn}) than the low group ({ln})"
            )
    if suspect:
        outcome.matches.append(
            RuleMatch(
                rule=2,
                statuses=STATUSES_BY_RULE[2],
                options=tuple(suspect),
                explanation="Rule 2: " + "; ".join(reasons) + "; the option is "
                "not well-defined.",
            )
        )

    # Rule 3: |LM - Lm| <= LS * threshold — low group chose options evenly.
    low_even = _spread_is_small(
        matrix.low_max, matrix.low_min, matrix.low_sum, spread_threshold
    )
    # Rule 4 requires BOTH groups even; per Table 2 it subsumes Rule 3's
    # status and adds the high group.  The paper evaluates them separately,
    # so Rule 3 fires whenever the low group is even, and Rule 4
    # additionally fires when the high group is even too.
    if low_even:
        outcome.matches.append(
            RuleMatch(
                rule=3,
                statuses=STATUSES_BY_RULE[3],
                options=matrix.options,
                explanation=(
                    f"Rule 3: low-group spread |{matrix.low_max}-{matrix.low_min}|"
                    f" = {matrix.low_max - matrix.low_min} <= "
                    f"{matrix.low_sum}x{spread_threshold:.0%}; the low score "
                    f"group chose every option equally and lacks the concept."
                ),
            )
        )
        high_even = _spread_is_small(
            matrix.high_max, matrix.high_min, matrix.high_sum, spread_threshold
        )
        if high_even:
            outcome.matches.append(
                RuleMatch(
                    rule=4,
                    statuses=STATUSES_BY_RULE[4],
                    options=matrix.options,
                    explanation=(
                        f"Rule 4: both groups chose every option equally "
                        f"(high spread {matrix.high_max - matrix.high_min} <= "
                        f"{matrix.high_sum}x{spread_threshold:.0%}); both "
                        f"groups lack the concept."
                    ),
                )
            )
    return outcome


def _spread_is_small(
    maximum: int, minimum: int, total: int, threshold: float
) -> bool:
    """The even-choice predicate ``|max − min| ≤ sum × threshold``."""
    if total == 0:
        return False
    return abs(maximum - minimum) <= total * threshold
