"""The advice engine: Table 2/3 semantics turned into teacher guidance.

The paper's stated goal for the analysis model is that "the suggestions
and results can tell teachers why a question is not suitable and how to
correct it".  This module turns a question's light signal (Table 3) and
fired rules/statuses (Table 2) into that guidance text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.rules import RuleMatch, Status
from repro.core.signals import Signal

__all__ = ["Advice", "advise"]

_STATUS_GUIDANCE = {
    Status.LOW_ALLURE: (
        "Rewrite the unused distractor(s) so they are plausible to a "
        "student who has not mastered the concept."
    ),
    Status.OPTION_NOT_CLEAR: (
        "Clarify the wording of the flagged option(s); strong students are "
        "being misled or weak students are guessing it correctly."
    ),
    Status.CARELESS: (
        "Check the stem for ambiguity that invites careless misreading."
    ),
    Status.NOT_ONLY_ONE_ANSWER: (
        "Verify there is exactly one defensible correct answer."
    ),
    Status.LOW_GROUP_LACKS_CONCEPT: (
        "The low score group answered at random: schedule a remedial "
        "course on this concept for the low score group."
    ),
    Status.HIGH_GROUP_LACKS_CONCEPT: (
        "Both groups answered at random: re-teach this concept to the "
        "whole class before reusing the question."
    ),
}

_SIGNAL_HEADLINE = {
    Signal.GREEN: "Good question; keep it.",
    Signal.YELLOW: "Usable but should be fixed.",
    Signal.RED: "Eliminate this question or fix it substantially.",
}


@dataclass(frozen=True)
class Advice:
    """Teacher-facing guidance for one question.

    ``headline`` comes from the Table 3 status; ``actions`` lists one
    concrete step per distinct Table 2 status asserted by the fired rules;
    ``explanations`` preserves the rules' own reasoning.
    """

    signal: Signal
    headline: str
    actions: Tuple[str, ...]
    explanations: Tuple[str, ...]

    def render(self) -> str:
        """Multi-line text block: headline, then numbered actions and the
        rule explanations that justify them."""
        lines = [f"[{self.signal.glyph}] {self.headline}"]
        for number, action in enumerate(self.actions, start=1):
            lines.append(f"  {number}. {action}")
        for explanation in self.explanations:
            lines.append(f"  - {explanation}")
        return "\n".join(lines)


def advise(signal: Signal, matches: Sequence[RuleMatch]) -> Advice:
    """Combine a question's signal and rule matches into :class:`Advice`.

    Statuses that concern the *question* (allure, clarity, key problems)
    produce fix-the-item actions; the lack-of-concept statuses produce
    teach-the-class actions, mirroring the paper's reading that "some of
    the information is useful for correcting the improper questions ...
    and the others are useful for instructors to realize students'
    learning".
    """
    seen: List[Status] = []
    for match in matches:
        for status in match.statuses:
            if status not in seen:
                seen.append(status)
    actions = tuple(_STATUS_GUIDANCE[status] for status in seen)
    explanations = tuple(match.explanation for match in matches)
    return Advice(
        signal=signal,
        headline=_SIGNAL_HEADLINE[signal],
        actions=actions,
        explanations=explanations,
    )
