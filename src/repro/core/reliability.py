"""Whole-test reliability statistics.

Section 4.2 presents the total test "in different aspects"; any item
analysis a teacher acts on is only as trustworthy as the test score
itself.  This module adds the classical reliability statistics that
complete the §4.2 toolbox:

* **KR-20** (Kuder–Richardson formula 20) — internal consistency for
  dichotomously scored items;
* **Cronbach's α** — the generalization to polytomous item scores;
* **standard error of measurement** — SEM = SD·√(1 − reliability), the
  score-scale uncertainty teachers should read alongside every total;
* **split-half reliability** with the Spearman–Brown correction.

All computations use population variance (÷N), the convention of the
classical formulas.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.core.errors import AnalysisError, EmptyCohortError

__all__ = [
    "kr20",
    "cronbach_alpha",
    "standard_error_of_measurement",
    "split_half_reliability",
]


def _variance(values: Sequence[float]) -> float:
    n = len(values)
    mean = sum(values) / n
    return sum((value - mean) ** 2 for value in values) / n


def _check_matrix(matrix: Sequence[Sequence[float]]) -> None:
    if not matrix:
        raise EmptyCohortError("no examinees in the score matrix")
    width = len(matrix[0])
    if width == 0:
        raise AnalysisError("score matrix has no items")
    for row in matrix:
        if len(row) != width:
            raise AnalysisError(
                f"ragged score matrix: expected {width} items per row"
            )


def kr20(correct_matrix: Sequence[Sequence[bool]]) -> float:
    """KR-20 internal consistency for right/wrong item scores.

    ``correct_matrix[e][i]`` is True when examinee ``e`` got item ``i``
    right.  Needs at least two items and two examinees.  The result is
    at most 1; it can be negative for pathologically inconsistent tests.
    """
    _check_matrix(correct_matrix)
    examinees = len(correct_matrix)
    items = len(correct_matrix[0])
    if items < 2:
        raise AnalysisError("KR-20 needs at least two items")
    if examinees < 2:
        raise AnalysisError("KR-20 needs at least two examinees")
    totals = [sum(1.0 for flag in row if flag) for row in correct_matrix]
    total_variance = _variance(totals)
    if total_variance == 0:
        raise AnalysisError(
            "total scores have zero variance; KR-20 is undefined"
        )
    pq_sum = 0.0
    for item in range(items):
        p = sum(1 for row in correct_matrix if row[item]) / examinees
        pq_sum += p * (1.0 - p)
    return (items / (items - 1)) * (1.0 - pq_sum / total_variance)


def cronbach_alpha(score_matrix: Sequence[Sequence[float]]) -> float:
    """Cronbach's α for arbitrary (possibly partial-credit) item scores."""
    _check_matrix(score_matrix)
    examinees = len(score_matrix)
    items = len(score_matrix[0])
    if items < 2:
        raise AnalysisError("alpha needs at least two items")
    if examinees < 2:
        raise AnalysisError("alpha needs at least two examinees")
    totals = [sum(row) for row in score_matrix]
    total_variance = _variance(totals)
    if total_variance == 0:
        raise AnalysisError(
            "total scores have zero variance; alpha is undefined"
        )
    item_variance_sum = sum(
        _variance([row[item] for row in score_matrix]) for item in range(items)
    )
    return (items / (items - 1)) * (1.0 - item_variance_sum / total_variance)


def standard_error_of_measurement(
    total_scores: Sequence[float], reliability: float
) -> float:
    """SEM = SD(total) · √(1 − reliability), on the total-score scale."""
    if not total_scores:
        raise EmptyCohortError("no total scores")
    if not 0.0 <= reliability <= 1.0:
        raise AnalysisError(
            f"reliability must be in [0, 1] for SEM, got {reliability}"
        )
    return math.sqrt(_variance(total_scores)) * math.sqrt(1.0 - reliability)


def split_half_reliability(
    score_matrix: Sequence[Sequence[float]],
) -> float:
    """Odd/even split-half reliability with the Spearman–Brown correction.

    Splits items into odd- and even-positioned halves, correlates the two
    half scores, and steps the correlation up to full length:
    ``r_full = 2r / (1 + r)``.
    """
    _check_matrix(score_matrix)
    items = len(score_matrix[0])
    if items < 2:
        raise AnalysisError("split-half needs at least two items")
    if len(score_matrix) < 2:
        raise AnalysisError("split-half needs at least two examinees")
    odd_totals: List[float] = []
    even_totals: List[float] = []
    for row in score_matrix:
        odd_totals.append(sum(row[0::2]))
        even_totals.append(sum(row[1::2]))
    r = _pearson(odd_totals, even_totals)
    if r <= -1.0:
        return -1.0
    return 2.0 * r / (1.0 + r)


def _pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / n
    var_x = _variance(xs)
    var_y = _variance(ys)
    if var_x == 0 or var_y == 0:
        raise AnalysisError(
            "a half-test has zero score variance; split-half is undefined"
        )
    return cov / math.sqrt(var_x * var_y)
