"""SVG renderings of the paper's figures.

The ASCII renderers in :mod:`repro.core.figures` work everywhere; these
produce standalone SVG documents for reports and web dashboards — the
same three §4.2.1 figures plus the Figure 2 signal board, using only the
standard library (hand-built SVG, no plotting dependency).

Every function returns a complete ``<svg>`` document string.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple
from xml.sax.saxutils import escape

from repro.core.errors import AnalysisError
from repro.core.exam_analysis import ScoreDifficultyAnalysis, TimeAnalysis
from repro.core.signals import Signal

__all__ = [
    "svg_xy_chart",
    "svg_time_figure",
    "svg_score_difficulty_figure",
    "svg_signal_board",
]

_MARGIN = 40.0


def _svg_open(width: float, height: float) -> List[str]:
    return [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:g}" '
        f'height="{height:g}" viewBox="0 0 {width:g} {height:g}">',
        '<rect width="100%" height="100%" fill="white"/>',
    ]


def svg_xy_chart(
    points: Sequence[Tuple[float, float]],
    width: float = 480,
    height: float = 300,
    x_label: str = "x",
    y_label: str = "y",
    connect: bool = True,
    title: str = "",
) -> str:
    """A scatter/line chart of (x, y) points as an SVG document."""
    if width < 100 or height < 80:
        raise AnalysisError("SVG chart too small")
    parts = _svg_open(width, height)
    if title:
        parts.append(
            f'<text x="{width / 2:g}" y="16" text-anchor="middle" '
            f'font-size="13" font-family="sans-serif">{escape(title)}</text>'
        )
    plot_w = width - 2 * _MARGIN
    plot_h = height - 2 * _MARGIN
    parts.append(
        f'<rect x="{_MARGIN:g}" y="{_MARGIN:g}" width="{plot_w:g}" '
        f'height="{plot_h:g}" fill="none" stroke="#888"/>'
    )
    if points:
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        x_min, x_max = min(xs), max(xs)
        y_min, y_max = min(ys), max(ys)
        x_span = (x_max - x_min) or 1.0
        y_span = (y_max - y_min) or 1.0

        def to_px(x: float, y: float) -> Tuple[float, float]:
            px = _MARGIN + (x - x_min) / x_span * plot_w
            py = _MARGIN + plot_h - (y - y_min) / y_span * plot_h
            return px, py

        if connect and len(points) > 1:
            path = " ".join(
                f"{'M' if index == 0 else 'L'}{to_px(x, y)[0]:.1f},"
                f"{to_px(x, y)[1]:.1f}"
                for index, (x, y) in enumerate(points)
            )
            parts.append(
                f'<path d="{path}" fill="none" stroke="#1f77b4" '
                f'stroke-width="1.5"/>'
            )
        for x, y in points:
            px, py = to_px(x, y)
            parts.append(
                f'<circle cx="{px:.1f}" cy="{py:.1f}" r="3" fill="#1f77b4"/>'
            )
        parts.append(
            f'<text x="{_MARGIN:g}" y="{height - 8:g}" font-size="11" '
            f'font-family="sans-serif">{escape(x_label)}: '
            f"{x_min:g} .. {x_max:g}</text>"
        )
        parts.append(
            f'<text x="{_MARGIN:g}" y="{_MARGIN - 8:g}" font-size="11" '
            f'font-family="sans-serif">{escape(y_label)}: '
            f"{y_min:g} .. {y_max:g}</text>"
        )
    parts.append("</svg>")
    return "\n".join(parts)


def svg_time_figure(analysis: TimeAnalysis, **kwargs) -> str:
    """§4.2.1 figure (1) as SVG, with the time limit as a vertical line."""
    points = [(p.time_seconds, p.answered) for p in analysis.series]
    base = svg_xy_chart(
        points,
        x_label="time (s)",
        y_label="answered",
        title="Time vs answered questions",
        **kwargs,
    )
    if analysis.time_limit_seconds is None or not points:
        return base
    xs = [p[0] for p in points]
    x_min, x_max = min(xs), max(xs)
    x_span = (x_max - x_min) or 1.0
    # recompute plot geometry to place the limit line
    width = float(kwargs.get("width", 480))
    height = float(kwargs.get("height", 300))
    plot_w = width - 2 * _MARGIN
    limit_x = _MARGIN + (
        (analysis.time_limit_seconds - x_min) / x_span * plot_w
    )
    line = (
        f'<line x1="{limit_x:.1f}" y1="{_MARGIN:g}" x2="{limit_x:.1f}" '
        f'y2="{height - _MARGIN:g}" stroke="#d62728" stroke-dasharray="4 3"/>'
    )
    return base.replace("</svg>", line + "\n</svg>")


def svg_score_difficulty_figure(
    analysis: ScoreDifficultyAnalysis, **kwargs
) -> str:
    """§4.2.1 figure (2) as SVG (mean difficulty of correct per score)."""
    points = [
        (float(band.score), band.mean_difficulty_of_correct)
        for band in analysis.bands
        if band.mean_difficulty_of_correct is not None
    ]
    return svg_xy_chart(
        points,
        x_label="test score",
        y_label="difficulty P",
        connect=False,
        title="Score vs difficulty",
        **kwargs,
    )


_SIGNAL_FILL = {
    Signal.GREEN: "#2ca02c",
    Signal.YELLOW: "#ffbf00",
    Signal.RED: "#d62728",
}


def svg_signal_board(
    signals: Sequence[Signal],
    per_row: int = 10,
    cell: float = 34.0,
) -> str:
    """Figure 2's whole-test signal board as SVG traffic lights."""
    if per_row < 1:
        raise AnalysisError(f"per_row must be positive, got {per_row}")
    count = len(signals)
    rows = (count + per_row - 1) // per_row if count else 1
    width = per_row * cell + 20
    height = rows * cell + 30
    parts = _svg_open(width, height)
    for index, signal in enumerate(signals):
        row, column = divmod(index, per_row)
        cx = 10 + column * cell + cell / 2
        cy = 10 + row * cell + cell / 2
        parts.append(
            f'<circle cx="{cx:.1f}" cy="{cy:.1f}" r="{cell * 0.32:.1f}" '
            f'fill="{_SIGNAL_FILL[signal]}" stroke="#444"/>'
        )
        parts.append(
            f'<text x="{cx:.1f}" y="{cy + 4:.1f}" text-anchor="middle" '
            f'font-size="10" font-family="sans-serif" fill="white">'
            f"{index + 1}</text>"
        )
    parts.append(
        f'<text x="10" y="{height - 8:g}" font-size="10" '
        f'font-family="sans-serif">green=good, yellow=fix, '
        f"red=eliminate or fix</text>"
    )
    parts.append("</svg>")
    return "\n".join(parts)
