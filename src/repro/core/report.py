"""Aggregated assessment reports.

Combines everything §4 produces — per-question number/signal analysis,
the whole-test figures, the two-way specification table and its derived
checks — into one :class:`AssessmentReport` with a text rendering a
teacher could read end to end, exactly in the order the paper presents
the material.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro import obs
from repro.core.concept_mastery import ConceptPerformance, concept_performance
from repro.core.errors import AnalysisError
from repro.core.exam_analysis import (
    ScoreDifficultyAnalysis,
    TimeAnalysis,
    score_vs_difficulty,
    time_vs_answered,
)
from repro.core.figures import (
    render_score_difficulty_figure,
    render_time_figure,
)
from repro.core.metadata import AssessmentAnalysisRecord
from repro.core.question_analysis import (
    CohortAnalysis,
    render_number_representation,
)
from repro.core.reliability import kr20, standard_error_of_measurement
from repro.core.signals import render_signal_board
from repro.core.spec_table import SpecificationTable

__all__ = ["AssessmentReport", "build_report"]


@dataclass
class AssessmentReport:
    """Everything the analysis model produced for one exam sitting."""

    title: str
    cohort: CohortAnalysis
    spec_table: Optional[SpecificationTable] = None
    time_analysis: Optional[TimeAnalysis] = None
    score_difficulty: Optional[ScoreDifficultyAnalysis] = None
    reliability: Optional[float] = None
    sem: Optional[float] = None
    concept_rows: List["ConceptPerformance"] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def analysis_records(self) -> List[AssessmentAnalysisRecord]:
        """Per-question analysis records to store back in the metadata."""
        records = []
        for question in self.cohort.questions:
            records.append(
                AssessmentAnalysisRecord(
                    question_number=question.number,
                    difficulty=question.difficulty,
                    discrimination=question.discrimination,
                    signal=question.signal.value,
                    statuses=[str(status) for status in question.rules.statuses],
                    advice=question.advice.render(),
                    distraction=(
                        question.distraction.describe()
                        if question.distraction is not None
                        else ""
                    ),
                )
            )
        return records

    def render(self) -> str:
        """The full report as readable text, §4's order: number
        representation, signal board, per-question advice, whole-test
        figures, specification-table analyses."""
        sections: List[str] = [f"=== Assessment report: {self.title} ==="]

        sections.append("-- Number representation (§4.1.1) --")
        sections.append(render_number_representation(self.cohort.questions))

        sections.append("-- Signal representation (Figure 2) --")
        sections.append(render_signal_board(self.cohort.signals))

        flagged = [
            question
            for question in self.cohort.questions
            if question.rules.matches or question.signal.value != "green"
        ]
        if flagged:
            sections.append("-- Advice (Tables 2-3) --")
            for question in flagged:
                sections.append(f"Question {question.number}:")
                sections.append(question.advice.render())

        if self.time_analysis is not None:
            sections.append("-- Time vs answered (§4.2.1 figure 1) --")
            sections.append(render_time_figure(self.time_analysis))

        if self.score_difficulty is not None:
            sections.append("-- Score vs difficulty (§4.2.1 figure 2) --")
            sections.append(render_score_difficulty_figure(self.score_difficulty))

        if self.reliability is not None:
            line = f"-- Reliability -- KR-20 = {self.reliability:.3f}"
            if self.sem is not None:
                line += f", SEM = {self.sem:.2f} points"
            sections.append(line)

        if self.concept_rows:
            sections.append("-- Concept performance (remediation planning) --")
            for row in self.concept_rows:
                verdict = ""
                if row.needs_reteaching:
                    verdict = "  -> re-teach the whole class"
                elif row.needs_remedial_course:
                    verdict = "  -> remedial course for the low score group"
                sections.append(
                    f"{row.concept:<14} PH={row.high_group_rate:.2f} "
                    f"PL={row.low_group_rate:.2f} "
                    f"P={row.mean_difficulty:.2f}{verdict}"
                )

        if self.spec_table is not None:
            sections.append("-- Two-way specification table (Table 4) --")
            sections.append(self.spec_table.render())
            lost = self.spec_table.lost_concepts()
            if lost:
                sections.append(
                    "Concept lost in the exam: " + ", ".join(lost)
                )
            violations = self.spec_table.pyramid_violations()
            if violations:
                described = ", ".join(
                    f"{low.label} < {high.label}" for low, high in violations
                )
                sections.append(
                    "Cognition-level ordering violated: " + described
                )
            sections.append("-- Distribution paint (§4.2.3) --")
            sections.extend(self.spec_table.paint())

        for note in self.notes:
            sections.append(f"note: {note}")
        return "\n".join(sections)


def build_report(
    title: str,
    cohort: CohortAnalysis,
    correct_flags: Optional[Dict[str, Sequence[bool]]] = None,
    answer_times: Optional[Sequence[Sequence[float]]] = None,
    time_limit_seconds: Optional[float] = None,
    spec_table: Optional[SpecificationTable] = None,
    specs: Optional[Sequence] = None,
) -> AssessmentReport:
    """Assemble an :class:`AssessmentReport` from analysis ingredients.

    ``correct_flags`` (examinee → per-question correctness) enables the
    score/difficulty figure; ``answer_times`` (per examinee, elapsed
    commit times) enables the time figure; ``specs`` (the per-question
    :class:`~repro.core.question_analysis.QuestionSpec` list the cohort
    was analyzed against) enables the per-concept remediation section.
    """
    with obs.span("report.build", examinees=len(cohort.scores)):
        return _build_report(
            title,
            cohort,
            correct_flags,
            answer_times,
            time_limit_seconds,
            spec_table,
            specs,
        )


def _build_report(
    title: str,
    cohort: CohortAnalysis,
    correct_flags: Optional[Dict[str, Sequence[bool]]],
    answer_times: Optional[Sequence[Sequence[float]]],
    time_limit_seconds: Optional[float],
    spec_table: Optional[SpecificationTable],
    specs: Optional[Sequence],
) -> AssessmentReport:
    time_analysis = None
    if answer_times:
        time_analysis = time_vs_answered(
            answer_times, time_limit_seconds=time_limit_seconds
        )
    score_difficulty = None
    reliability = None
    sem = None
    if correct_flags:
        score_difficulty = score_vs_difficulty(
            cohort.scores, correct_flags, cohort.questions
        )
        matrix = [list(flags) for flags in correct_flags.values()]
        try:
            reliability = kr20(matrix)
            totals = [sum(1.0 for flag in row if flag) for row in matrix]
            sem = standard_error_of_measurement(
                totals, min(max(reliability, 0.0), 1.0)
            )
        except AnalysisError:
            # degenerate cohorts (zero variance, one item) have no
            # defined reliability; the report simply omits the section
            reliability = None
            sem = None
    concept_rows: List[ConceptPerformance] = []
    if specs is not None:
        concept_rows = concept_performance(cohort, specs)
    return AssessmentReport(
        title=title,
        cohort=cohort,
        spec_table=spec_table,
        time_analysis=time_analysis,
        score_difficulty=score_difficulty,
        reliability=reliability,
        sem=sem,
        concept_rows=concept_rows,
    )
