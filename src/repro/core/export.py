"""Machine-readable export of assessment reports.

The text rendering in :mod:`repro.core.report` is for teachers; this
module serializes the same analysis to plain JSON-compatible dicts (and
CSV rows for the §4.1.1 table) so downstream tools — gradebooks,
dashboards, the LMS — can consume it.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List

from repro.core.report import AssessmentReport

__all__ = ["report_to_dict", "report_to_json", "number_representation_csv"]


def report_to_dict(report: AssessmentReport) -> Dict[str, object]:
    """The full report as a JSON-compatible dict."""
    questions: List[Dict[str, object]] = []
    for question in report.cohort.questions:
        questions.append(
            {
                "number": question.number,
                "p_high": question.p_high,
                "p_low": question.p_low,
                "discrimination": question.discrimination,
                "difficulty": question.difficulty,
                "signal": question.signal.value,
                "rules_fired": list(question.rules.fired_rules),
                "statuses": [str(status) for status in question.rules.statuses],
                "advice": question.advice.render(),
                "distraction": (
                    question.distraction.describe()
                    if question.distraction is not None
                    else None
                ),
                "option_matrix": {
                    "options": list(question.matrix.options),
                    "high": dict(question.matrix.high),
                    "low": dict(question.matrix.low),
                    "correct": question.matrix.correct,
                },
            }
        )
    payload: Dict[str, object] = {
        "title": report.title,
        "questions": questions,
        "high_group": list(report.cohort.high_group),
        "low_group": list(report.cohort.low_group),
        "scores": dict(report.cohort.scores),
    }
    if report.concept_rows:
        payload["concept_performance"] = [
            {
                "concept": row.concept,
                "question_numbers": list(row.question_numbers),
                "mean_difficulty": row.mean_difficulty,
                "mean_discrimination": row.mean_discrimination,
                "high_group_rate": row.high_group_rate,
                "low_group_rate": row.low_group_rate,
                "needs_remedial_course": row.needs_remedial_course,
                "needs_reteaching": row.needs_reteaching,
            }
            for row in report.concept_rows
        ]
    if report.reliability is not None:
        payload["reliability"] = {
            "kr20": report.reliability,
            "sem": report.sem,
        }
    if report.time_analysis is not None:
        payload["time_analysis"] = {
            "series": [
                {"time_seconds": point.time_seconds, "answered": point.answered}
                for point in report.time_analysis.series
            ],
            "time_limit_seconds": report.time_analysis.time_limit_seconds,
            "fraction_finished_in_limit": (
                report.time_analysis.fraction_finished_in_limit
            ),
            "time_enough": report.time_analysis.time_enough,
        }
    if report.score_difficulty is not None:
        payload["score_difficulty"] = [
            {
                "score": band.score,
                "examinees": band.examinees,
                "mean_difficulty_of_correct": band.mean_difficulty_of_correct,
            }
            for band in report.score_difficulty.bands
        ]
    if report.spec_table is not None:
        table = report.spec_table
        payload["specification_table"] = {
            "concepts": list(table.concepts),
            "level_sums": table.level_sums(),
            "lost_concepts": table.lost_concepts(),
            "pyramid_violations": [
                [low.name.lower(), high.name.lower()]
                for low, high in table.pyramid_violations()
            ],
        }
    return payload


def report_to_json(report: AssessmentReport, indent: int = 2) -> str:
    """The full report as a JSON string (validated round-trippable)."""
    return json.dumps(report_to_dict(report), indent=indent)


def number_representation_csv(report: AssessmentReport) -> str:
    """The §4.1.1 table as CSV text with the paper's column headers."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["No", "PH", "PL", "D=PH-PL", "P=(PH+PL)/2", "signal"])
    for question in report.cohort.questions:
        writer.writerow(
            [
                question.number,
                f"{question.p_high:.4f}",
                f"{question.p_low:.4f}",
                f"{question.discrimination:.4f}",
                f"{question.difficulty:.4f}",
                question.signal.value,
            ]
        )
    return buffer.getvalue()
