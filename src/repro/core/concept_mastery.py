"""Class-level concept performance.

The teacher-side counterpart of the learner feedback in
:mod:`repro.adaptive.feedback`: for each concept (subject) in the exam,
how the class as a whole — and the high/low score groups specifically —
performed.  This is the datum behind the paper's Rule 3/4 advice
("give the remedied course to low score group students" / "to all
students"): a concept whose low group scores near chance needs a
remedial course; a concept where *both* groups fail needs re-teaching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.errors import AnalysisError
from repro.core.question_analysis import CohortAnalysis, QuestionSpec

__all__ = ["ConceptPerformance", "concept_performance"]


@dataclass(frozen=True)
class ConceptPerformance:
    """One concept's class-level outcome."""

    concept: str
    question_numbers: Tuple[int, ...]
    mean_difficulty: float  # mean P over the concept's questions
    mean_discrimination: float
    high_group_rate: float  # mean PH
    low_group_rate: float  # mean PL

    @property
    def needs_remedial_course(self) -> bool:
        """Low group near or below chance on this concept (Rule 3's
        reading): the low scorers did not learn it."""
        return self.low_group_rate < 0.35

    @property
    def needs_reteaching(self) -> bool:
        """Both groups weak (Rule 4's reading): the class did not
        learn it."""
        return self.high_group_rate < 0.5 and self.low_group_rate < 0.35


def concept_performance(
    cohort: CohortAnalysis,
    specs: Sequence[QuestionSpec],
) -> List[ConceptPerformance]:
    """Aggregate the cohort analysis by concept (question subject).

    ``specs`` must be the same per-question specs the cohort was analyzed
    against; questions with an empty subject are grouped under
    ``"(untagged)"``.  Results are ordered weakest-low-group first, which
    is the order a teacher plans remediation in.
    """
    if len(specs) != len(cohort.questions):
        raise AnalysisError(
            f"{len(specs)} specs for {len(cohort.questions)} analyzed "
            f"questions"
        )
    grouped: Dict[str, List[int]] = {}
    for index, spec in enumerate(specs):
        concept = spec.subject or "(untagged)"
        grouped.setdefault(concept, []).append(index)
    results: List[ConceptPerformance] = []
    for concept, indices in grouped.items():
        questions = [cohort.questions[index] for index in indices]
        count = len(questions)
        results.append(
            ConceptPerformance(
                concept=concept,
                question_numbers=tuple(q.number for q in questions),
                mean_difficulty=sum(q.difficulty for q in questions) / count,
                mean_discrimination=(
                    sum(q.discrimination for q in questions) / count
                ),
                high_group_rate=sum(q.p_high for q in questions) / count,
                low_group_rate=sum(q.p_low for q in questions) / count,
            )
        )
    results.sort(key=lambda record: record.low_group_rate)
    return results
