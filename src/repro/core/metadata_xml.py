"""XML binding for the MINE SCORM Meta-data model.

The paper (§5.5) follows SCORM's convention that "each file ... has a
descriptive xml file".  This module serializes a
:class:`~repro.core.metadata.MineMetadata` document to a namespaced XML
element/string and parses it back, giving a loss-free round trip for every
field the model defines.

The binding is deliberately explicit (one function per section) rather than
reflective: the schema is small, fixed by the paper, and an explicit
binding gives readable errors when a document is malformed.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import List, Optional

from repro.core.cognition import CognitionLevel
from repro.core.errors import MetadataError
from repro.core.metadata import (
    AnnotationSection,
    AssessmentAnalysisRecord,
    AssessmentRecord,
    AssessmentSection,
    ClassificationSection,
    DisplayType,
    EducationalSection,
    ExamMetadata,
    GeneralSection,
    IndividualTestMetadata,
    LifecycleSection,
    MetaMetadataSection,
    MineMetadata,
    QuestionStyle,
    QuestionnaireMetadata,
    RelationSection,
    RightsSection,
    TechnicalSection,
)

__all__ = [
    "MINE_NAMESPACE",
    "to_element",
    "to_xml",
    "from_element",
    "from_xml",
]

#: Namespace of the MINE assessment metadata documents.
MINE_NAMESPACE = "http://mine.tku.edu.tw/xsd/assessment"

_NS = {"mine": MINE_NAMESPACE}


def _q(tag: str) -> str:
    """Qualified tag name in the MINE namespace."""
    return f"{{{MINE_NAMESPACE}}}{tag}"


def _leaf(parent: ET.Element, tag: str, value) -> None:
    """Append a leaf element unless the value is None."""
    if value is None:
        return
    child = ET.SubElement(parent, _q(tag))
    if isinstance(value, bool):
        child.text = "true" if value else "false"
    else:
        child.text = str(value)


def _text(element: ET.Element, tag: str, default: str = "") -> str:
    child = element.find(f"mine:{tag}", _NS)
    if child is None or child.text is None:
        return default
    return child.text


def _opt_text(element: ET.Element, tag: str) -> Optional[str]:
    child = element.find(f"mine:{tag}", _NS)
    if child is None or child.text is None:
        return None
    return child.text


def _opt_float(element: ET.Element, tag: str) -> Optional[float]:
    raw = _opt_text(element, tag)
    if raw is None:
        return None
    try:
        return float(raw)
    except ValueError:
        raise MetadataError(f"element <{tag}> is not a number: {raw!r}") from None


def _bool(element: ET.Element, tag: str, default: bool) -> bool:
    raw = _opt_text(element, tag)
    if raw is None:
        return default
    lowered = raw.strip().lower()
    if lowered in ("true", "1", "yes"):
        return True
    if lowered in ("false", "0", "no"):
        return False
    raise MetadataError(f"element <{tag}> is not a boolean: {raw!r}")


def _int(element: ET.Element, tag: str, default: int) -> int:
    raw = _opt_text(element, tag)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise MetadataError(f"element <{tag}> is not an integer: {raw!r}") from None


# --------------------------------------------------------------------------
# Serialization
# --------------------------------------------------------------------------


def to_element(metadata: MineMetadata) -> ET.Element:
    """Serialize a metadata document to an ElementTree element."""
    root = ET.Element(_q("mineMetadata"))

    general = ET.SubElement(root, _q("general"))
    _leaf(general, "identifier", metadata.general.identifier)
    _leaf(general, "title", metadata.general.title)
    _leaf(general, "language", metadata.general.language)
    _leaf(general, "description", metadata.general.description)
    for keyword in metadata.general.keywords:
        _leaf(general, "keyword", keyword)

    lifecycle = ET.SubElement(root, _q("lifecycle"))
    _leaf(lifecycle, "version", metadata.lifecycle.version)
    _leaf(lifecycle, "status", metadata.lifecycle.status)
    for contributor in metadata.lifecycle.contributors:
        _leaf(lifecycle, "contributor", contributor)

    meta_meta = ET.SubElement(root, _q("metaMetadata"))
    _leaf(meta_meta, "metadataScheme", metadata.meta_metadata.metadata_scheme)
    _leaf(meta_meta, "createdBy", metadata.meta_metadata.created_by)

    technical = ET.SubElement(root, _q("technical"))
    _leaf(technical, "format", metadata.technical.format)
    _leaf(technical, "size", metadata.technical.size_bytes)
    _leaf(technical, "location", metadata.technical.location)

    educational = ET.SubElement(root, _q("educational"))
    _leaf(educational, "interactivityType", metadata.educational.interactivity_type)
    _leaf(
        educational,
        "learningResourceType",
        metadata.educational.learning_resource_type,
    )
    _leaf(
        educational,
        "intendedEndUserRole",
        metadata.educational.intended_end_user_role,
    )
    _leaf(educational, "typicalAgeRange", metadata.educational.typical_age_range)
    _leaf(educational, "difficulty", metadata.educational.difficulty)

    rights = ET.SubElement(root, _q("rights"))
    _leaf(rights, "cost", metadata.rights.cost)
    _leaf(
        rights,
        "copyrightAndOtherRestrictions",
        metadata.rights.copyright_and_other_restrictions,
    )
    _leaf(rights, "description", metadata.rights.description)

    relation = ET.SubElement(root, _q("relation"))
    _leaf(relation, "kind", metadata.relation.kind)
    _leaf(relation, "targetIdentifier", metadata.relation.target_identifier)

    annotation = ET.SubElement(root, _q("annotation"))
    _leaf(annotation, "entity", metadata.annotation.entity)
    _leaf(annotation, "date", metadata.annotation.date)
    _leaf(annotation, "description", metadata.annotation.description)

    classification = ET.SubElement(root, _q("classification"))
    _leaf(classification, "purpose", metadata.classification.purpose)
    for taxon in metadata.classification.taxon_path:
        _leaf(classification, "taxon", taxon)

    root.append(_assessment_to_element(metadata.assessment))
    return root


def _assessment_to_element(assessment: AssessmentSection) -> ET.Element:
    element = ET.Element(_q("assessment"))
    if assessment.cognition_level is not None:
        _leaf(element, "cognitionLevel", assessment.cognition_level.name.lower())
    if assessment.question_style is not None:
        _leaf(element, "questionStyle", assessment.question_style.value)

    questionnaire = ET.SubElement(element, _q("questionnaire"))
    _leaf(questionnaire, "question", assessment.questionnaire.question)
    _leaf(questionnaire, "resumable", assessment.questionnaire.resumable)
    _leaf(questionnaire, "displayType", assessment.questionnaire.display_type.value)

    individual = ET.SubElement(element, _q("individualTest"))
    _leaf(individual, "answer", assessment.individual_test.answer)
    _leaf(individual, "subject", assessment.individual_test.subject)
    _leaf(
        individual,
        "itemDifficultyIndex",
        assessment.individual_test.item_difficulty_index,
    )
    _leaf(
        individual,
        "itemDiscriminationIndex",
        assessment.individual_test.item_discrimination_index,
    )
    _leaf(individual, "distraction", assessment.individual_test.distraction)
    if assessment.individual_test.cognition_level is not None:
        _leaf(
            individual,
            "cognitionLevel",
            assessment.individual_test.cognition_level.name.lower(),
        )

    exam = ET.SubElement(element, _q("exam"))
    _leaf(exam, "averageTime", assessment.exam.average_time_seconds)
    _leaf(exam, "testTime", assessment.exam.test_time_seconds)
    _leaf(
        exam,
        "instructionalSensitivityIndex",
        assessment.exam.instructional_sensitivity_index,
    )

    for record in assessment.records:
        record_el = ET.SubElement(element, _q("record"))
        _leaf(record_el, "learnerId", record.learner_id)
        _leaf(record_el, "takenAt", record.taken_at)
        _leaf(record_el, "score", record.score)
        _leaf(record_el, "duration", record.duration_seconds)

    for analysis in assessment.analyses:
        analysis_el = ET.SubElement(element, _q("analysis"))
        _leaf(analysis_el, "questionNumber", analysis.question_number)
        _leaf(analysis_el, "difficulty", analysis.difficulty)
        _leaf(analysis_el, "discrimination", analysis.discrimination)
        _leaf(analysis_el, "signal", analysis.signal)
        for status in analysis.statuses:
            _leaf(analysis_el, "status", status)
        _leaf(analysis_el, "advice", analysis.advice)
        _leaf(analysis_el, "distraction", analysis.distraction)
    return element


def to_xml(metadata: MineMetadata) -> str:
    """Serialize a metadata document to an XML string (UTF-8 text)."""
    element = to_element(metadata)
    ET.indent(element)
    return ET.tostring(element, encoding="unicode")


# --------------------------------------------------------------------------
# Parsing
# --------------------------------------------------------------------------


def from_xml(text: str) -> MineMetadata:
    """Parse a MINE metadata XML string.

    Raises :class:`MetadataError` on malformed XML or a wrong root element.
    """
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise MetadataError(f"malformed metadata XML: {exc}") from exc
    return from_element(root)


def from_element(root: ET.Element) -> MineMetadata:
    """Parse a MINE metadata document from an ElementTree element."""
    if root.tag != _q("mineMetadata"):
        raise MetadataError(
            f"unexpected root element {root.tag!r}; expected mineMetadata "
            f"in namespace {MINE_NAMESPACE}"
        )
    metadata = MineMetadata()

    general = root.find("mine:general", _NS)
    if general is not None:
        metadata.general = GeneralSection(
            identifier=_text(general, "identifier"),
            title=_text(general, "title"),
            language=_text(general, "language", "en"),
            description=_text(general, "description"),
            keywords=[
                el.text or "" for el in general.findall("mine:keyword", _NS)
            ],
        )

    lifecycle = root.find("mine:lifecycle", _NS)
    if lifecycle is not None:
        metadata.lifecycle = LifecycleSection(
            version=_text(lifecycle, "version", "1.0"),
            status=_text(lifecycle, "status", "final"),
            contributors=[
                el.text or "" for el in lifecycle.findall("mine:contributor", _NS)
            ],
        )

    meta_meta = root.find("mine:metaMetadata", _NS)
    if meta_meta is not None:
        metadata.meta_metadata = MetaMetadataSection(
            metadata_scheme=_text(meta_meta, "metadataScheme", "MINE SCORM 1.0"),
            created_by=_text(meta_meta, "createdBy"),
        )

    technical = root.find("mine:technical", _NS)
    if technical is not None:
        metadata.technical = TechnicalSection(
            format=_text(technical, "format", "text/xml"),
            size_bytes=_int(technical, "size", 0),
            location=_text(technical, "location"),
        )

    educational = root.find("mine:educational", _NS)
    if educational is not None:
        metadata.educational = EducationalSection(
            interactivity_type=_text(educational, "interactivityType", "active"),
            learning_resource_type=_text(
                educational, "learningResourceType", "exam"
            ),
            intended_end_user_role=_text(
                educational, "intendedEndUserRole", "learner"
            ),
            typical_age_range=_text(educational, "typicalAgeRange"),
            difficulty=_text(educational, "difficulty"),
        )

    rights = root.find("mine:rights", _NS)
    if rights is not None:
        metadata.rights = RightsSection(
            cost=_bool(rights, "cost", False),
            copyright_and_other_restrictions=_bool(
                rights, "copyrightAndOtherRestrictions", False
            ),
            description=_text(rights, "description"),
        )

    relation = root.find("mine:relation", _NS)
    if relation is not None:
        metadata.relation = RelationSection(
            kind=_text(relation, "kind"),
            target_identifier=_text(relation, "targetIdentifier"),
        )

    annotation = root.find("mine:annotation", _NS)
    if annotation is not None:
        metadata.annotation = AnnotationSection(
            entity=_text(annotation, "entity"),
            date=_text(annotation, "date"),
            description=_text(annotation, "description"),
        )

    classification = root.find("mine:classification", _NS)
    if classification is not None:
        metadata.classification = ClassificationSection(
            purpose=_text(classification, "purpose", "discipline"),
            taxon_path=[
                el.text or "" for el in classification.findall("mine:taxon", _NS)
            ],
        )

    assessment = root.find("mine:assessment", _NS)
    if assessment is not None:
        metadata.assessment = _assessment_from_element(assessment)
    return metadata


def _assessment_from_element(element: ET.Element) -> AssessmentSection:
    section = AssessmentSection()
    level_text = _opt_text(element, "cognitionLevel")
    if level_text is not None:
        section.cognition_level = CognitionLevel.parse(level_text)
    style_text = _opt_text(element, "questionStyle")
    if style_text is not None:
        try:
            section.question_style = QuestionStyle(style_text)
        except ValueError:
            raise MetadataError(f"unknown question style: {style_text!r}") from None

    questionnaire = element.find("mine:questionnaire", _NS)
    if questionnaire is not None:
        display_raw = _opt_text(questionnaire, "displayType")
        if display_raw is None:
            display = DisplayType.FIXED_ORDER
        else:
            try:
                display = DisplayType(display_raw)
            except ValueError:
                raise MetadataError(
                    f"unknown display type: {display_raw!r}"
                ) from None
        section.questionnaire = QuestionnaireMetadata(
            question=_text(questionnaire, "question"),
            resumable=_bool(questionnaire, "resumable", True),
            display_type=display,
        )

    individual = element.find("mine:individualTest", _NS)
    if individual is not None:
        item_level = _opt_text(individual, "cognitionLevel")
        section.individual_test = IndividualTestMetadata(
            answer=_text(individual, "answer"),
            subject=_text(individual, "subject"),
            item_difficulty_index=_opt_float(individual, "itemDifficultyIndex"),
            item_discrimination_index=_opt_float(
                individual, "itemDiscriminationIndex"
            ),
            distraction=_text(individual, "distraction"),
            cognition_level=(
                CognitionLevel.parse(item_level) if item_level is not None else None
            ),
        )

    exam = element.find("mine:exam", _NS)
    if exam is not None:
        section.exam = ExamMetadata(
            average_time_seconds=_opt_float(exam, "averageTime"),
            test_time_seconds=_opt_float(exam, "testTime"),
            instructional_sensitivity_index=_opt_float(
                exam, "instructionalSensitivityIndex"
            ),
        )

    records: List[AssessmentRecord] = []
    for record_el in element.findall("mine:record", _NS):
        records.append(
            AssessmentRecord(
                learner_id=_text(record_el, "learnerId"),
                taken_at=_text(record_el, "takenAt"),
                score=_opt_float(record_el, "score"),
                duration_seconds=_opt_float(record_el, "duration"),
            )
        )
    section.records = records

    analyses: List[AssessmentAnalysisRecord] = []
    for analysis_el in element.findall("mine:analysis", _NS):
        analyses.append(
            AssessmentAnalysisRecord(
                question_number=_int(analysis_el, "questionNumber", 0),
                difficulty=_opt_float(analysis_el, "difficulty"),
                discrimination=_opt_float(analysis_el, "discrimination"),
                signal=_text(analysis_el, "signal"),
                statuses=[
                    el.text or "" for el in analysis_el.findall("mine:status", _NS)
                ],
                advice=_text(analysis_el, "advice"),
                distraction=_text(analysis_el, "distraction"),
            )
        )
    section.analyses = analyses
    return section
