"""Bloom's taxonomy of educational objectives, as used by the paper.

Section 3.1 of the paper adopts Bloom's taxonomy: three domains
(cognitive, psychomotor, affective), with the cognitive domain divided
into six levels — knowledge, comprehension, application, analysis,
synthesis, evaluation.  Section 4.2.2 then names the six cognitive levels
``A`` through ``F`` and relies on their natural ordering (knowledge is the
lowest, evaluation the highest) for the cognition-level/question-sum
relation ``SUM(A) >= SUM(B) >= ... >= SUM(F)``.

This module provides the :class:`Domain` and :class:`CognitionLevel`
enumerations plus the small amount of level algebra the analysis model
needs: letter codes, ordering comparisons, and parsing from the various
spellings that appear in metadata documents.
"""

from __future__ import annotations

import enum
from typing import Iterable, List, Sequence

__all__ = ["Domain", "CognitionLevel", "COGNITIVE_LEVELS", "expected_pyramid"]


class Domain(enum.Enum):
    """Bloom's three domains of educational objectives (paper §3.1)."""

    COGNITIVE = "cognitive"
    PSYCHOMOTOR = "psychomotor"
    AFFECTIVE = "affective"

    def __str__(self) -> str:
        return self.value


@enum.unique
class CognitionLevel(enum.IntEnum):
    """The six levels of Bloom's cognitive domain.

    The integer values encode the natural ordering used throughout the
    paper's analysis model: lower values are lower (more basic) levels.
    ``CognitionLevel.KNOWLEDGE < CognitionLevel.EVALUATION`` holds, and
    sorting a list of levels yields knowledge-first order.
    """

    KNOWLEDGE = 1
    COMPREHENSION = 2
    APPLICATION = 3
    ANALYSIS = 4
    SYNTHESIS = 5
    EVALUATION = 6

    @property
    def letter(self) -> str:
        """The single-letter code of §4.2.2 (knowledge=A ... evaluation=F)."""
        return "ABCDEF"[self.value - 1]

    @property
    def label(self) -> str:
        """Human-readable capitalized name, e.g. ``"Comprehension"``."""
        return self.name.capitalize()

    @classmethod
    def from_letter(cls, letter: str) -> "CognitionLevel":
        """Return the level for a §4.2.2 letter code (case-insensitive).

        >>> CognitionLevel.from_letter("a")
        <CognitionLevel.KNOWLEDGE: 1>
        """
        normalized = letter.strip().upper()
        index = "ABCDEF".find(normalized)
        if len(normalized) != 1 or index < 0:
            raise ValueError(f"not a cognition level letter: {letter!r}")
        return cls(index + 1)

    @classmethod
    def parse(cls, text: "str | int | CognitionLevel") -> "CognitionLevel":
        """Parse a level from any spelling metadata documents use.

        Accepts the enum itself, the 1-6 integer, the letter code, or the
        level name in any case (``"knowledge"``, ``"Knowledge"``, ...).
        """
        if isinstance(text, cls):
            return text
        if isinstance(text, int):
            return cls(text)
        token = str(text).strip()
        if not token:
            raise ValueError("empty cognition level")
        if len(token) == 1:
            if token.isdigit():
                return cls(int(token))
            return cls.from_letter(token)
        try:
            return cls[token.upper()]
        except KeyError:
            raise ValueError(f"unknown cognition level: {text!r}") from None

    def __str__(self) -> str:
        return self.label


#: The six cognitive levels in their natural (knowledge-first) order.
COGNITIVE_LEVELS: Sequence[CognitionLevel] = tuple(CognitionLevel)


def expected_pyramid(counts_by_level: Iterable[int]) -> List[int]:
    """Return the indices where the cognition pyramid property is violated.

    Section 4.2.3 (2) states the expected relation between a test's
    per-level question sums::

        SUM(A) >= SUM(B) >= SUM(C) >= SUM(D) >= SUM(E) >= SUM(F)

    i.e. a well-constructed test asks at least as many questions at each
    lower level as at the level above it.  Given six counts in A..F order,
    this returns the (0-based) positions ``i`` where
    ``counts[i] < counts[i + 1]`` — an empty list means the pyramid holds.
    """
    counts = list(counts_by_level)
    if len(counts) != len(COGNITIVE_LEVELS):
        raise ValueError(
            f"expected {len(COGNITIVE_LEVELS)} per-level counts, got {len(counts)}"
        )
    return [i for i in range(len(counts) - 1) if counts[i] < counts[i + 1]]
