"""High/low score-group splitting (paper §4.1.1).

The paper's five-step procedure:

1. arrange the examination papers by score (descending);
2. take the top fraction as the **high group** and the bottom fraction as
   the **low group** — "Prof. Kelly said that the best percentage is 27%,
   and the acceptable percentage is 25%-33% (Kelly, 1939).  We tried to
   define the percentage 25% in this paper.";
3. per question, compute the proportion answering correctly in each group
   (PH, PL);
4. Item Difficulty Index P = (PH + PL) / 2;
5. Item Discrimination Index D = PH − PL.

:class:`GroupSplit` implements steps 1–2 with the fraction as a parameter
(25% by default, matching the paper; the ablation bench sweeps it).
Steps 3–5 live in :mod:`repro.core.question_analysis` /
:mod:`repro.core.indices`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple, TypeVar

from repro.core.errors import GroupSplitError

__all__ = [
    "KELLY_OPTIMUM",
    "ACCEPTABLE_RANGE",
    "PAPER_FRACTION",
    "GroupSplit",
    "split_by_score",
]

#: Kelly (1939): the optimal extreme-group fraction.
KELLY_OPTIMUM = 0.27
#: Kelly's acceptable range for the fraction.
ACCEPTABLE_RANGE = (0.25, 0.33)
#: The fraction the paper fixes ("We tried to define the percentage 25%").
PAPER_FRACTION = 0.25

T = TypeVar("T")


@dataclass(frozen=True)
class GroupSplit:
    """A high/low extreme-group split policy.

    ``fraction`` is the share of examinees placed in each extreme group.
    With ``strict=True``, fractions outside Kelly's acceptable 25%–33%
    range are rejected; by default any fraction in (0, 0.5] is allowed so
    the ablation bench can sweep beyond the acceptable range.
    """

    fraction: float = PAPER_FRACTION
    strict: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 0.5:
            raise GroupSplitError(
                f"group fraction must be in (0, 0.5], got {self.fraction}"
            )
        if self.strict and not (
            ACCEPTABLE_RANGE[0] <= self.fraction <= ACCEPTABLE_RANGE[1]
        ):
            raise GroupSplitError(
                f"strict mode requires the fraction to be within Kelly's "
                f"acceptable range {ACCEPTABLE_RANGE}, got {self.fraction}"
            )

    def group_size(self, cohort_size: int) -> int:
        """Number of examinees in each extreme group.

        The paper's worked example uses a class of 44 with groups of 11
        (44 × 25%); we truncate (``int``) and require at least one member.
        """
        if cohort_size <= 0:
            raise GroupSplitError(f"cohort size must be positive, got {cohort_size}")
        size = int(cohort_size * self.fraction)
        if size < 1:
            raise GroupSplitError(
                f"cohort of {cohort_size} is too small for a {self.fraction:.0%} "
                f"split (group would be empty)"
            )
        return size

    def split(
        self,
        examinees: Sequence[T],
        score: Callable[[T], float],
    ) -> Tuple[List[T], List[T]]:
        """Split examinees into (high group, low group) by score.

        Sorting is stable: ties at the group boundary are broken by the
        original order of ``examinees``, which keeps the split
        deterministic for equal inputs.
        """
        size = self.group_size(len(examinees))
        ordered = sorted(
            range(len(examinees)),
            key=lambda index: (-score(examinees[index]), index),
        )
        high = [examinees[index] for index in ordered[:size]]
        low = [examinees[index] for index in ordered[-size:]]
        return high, low


def split_by_score(
    scores: Sequence[float],
    fraction: float = PAPER_FRACTION,
) -> Tuple[List[int], List[int]]:
    """Convenience: split examinee *indices* into (high, low) by raw scores.

    Returns two lists of indices into ``scores``.  Equivalent to
    ``GroupSplit(fraction).split(range(len(scores)), scores.__getitem__)``.
    """
    policy = GroupSplit(fraction=fraction)
    indices = list(range(len(scores)))
    return policy.split(indices, lambda index: scores[index])
