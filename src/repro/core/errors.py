"""Exception hierarchy for the assessment library.

Every error raised by :mod:`repro` derives from :class:`AssessmentError`,
so callers can catch one base class at an API boundary.  Subsystems define
narrower classes here (rather than ad hoc ``ValueError`` raises) so that
error-handling code can distinguish, for example, a malformed metadata
document from an analysis performed on an empty cohort.
"""

from __future__ import annotations

__all__ = [
    "AssessmentError",
    "MetadataError",
    "MetadataValidationError",
    "AnalysisError",
    "EmptyCohortError",
    "GroupSplitError",
    "ItemError",
    "ResponseError",
    "BankError",
    "DuplicateIdError",
    "NotFoundError",
    "AuthoringError",
    "BlueprintError",
    "PackagingError",
    "ManifestError",
    "DeliveryError",
    "SessionStateError",
    "TimeLimitExceeded",
    "MonitorError",
    "EstimationError",
    "StoreError",
    "JournalCorruptError",
]


class AssessmentError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class MetadataError(AssessmentError):
    """A metadata document could not be built, parsed, or serialized."""


class MetadataValidationError(MetadataError):
    """A metadata document violates the MINE SCORM metadata schema.

    Carries the list of individual violations so a caller can report all
    of them at once instead of fixing one per round trip.
    """

    def __init__(self, violations):
        self.violations = list(violations)
        joined = "; ".join(self.violations)
        super().__init__(f"metadata validation failed: {joined}")


class AnalysisError(AssessmentError):
    """An item- or exam-analysis computation received unusable input."""


class EmptyCohortError(AnalysisError):
    """An analysis was requested for a cohort with no gradeable sittings."""


class GroupSplitError(AnalysisError):
    """The high/low group split could not be formed (bad fraction, too few
    examinees, or a fraction outside the acceptable range in strict mode)."""


class ItemError(AssessmentError):
    """An assessment item is malformed (e.g. a choice item with no key)."""


class ResponseError(AssessmentError):
    """A learner response does not fit the item it answers."""


class BankError(AssessmentError):
    """Base class for item/exam bank storage errors."""


class DuplicateIdError(BankError):
    """An object with the same identifier already exists in the bank."""


class NotFoundError(BankError):
    """The requested object does not exist in the bank or repository."""


class AuthoringError(AssessmentError):
    """Exam authoring failed (empty exam, inconsistent groups, ...)."""


class BlueprintError(AuthoringError):
    """Blueprint-driven assembly could not satisfy its coverage targets."""


class PackagingError(AssessmentError):
    """A SCORM content package could not be built or read."""


class ManifestError(PackagingError):
    """imsmanifest.xml is missing, malformed, or inconsistent."""


class DeliveryError(AssessmentError):
    """Base class for exam-delivery runtime errors."""


class SessionStateError(DeliveryError):
    """An operation was invoked in a session state that forbids it
    (e.g. answering after submit, or resuming a non-resumable exam)."""


class TimeLimitExceeded(DeliveryError):
    """The exam's test-time limit expired before the operation."""


class MonitorError(AssessmentError):
    """The on-line exam monitor failed to capture or store a frame."""


class EstimationError(AssessmentError):
    """IRT parameter or ability estimation failed to converge or received
    degenerate input (all-correct / all-wrong response vectors, ...)."""


class StoreError(AssessmentError):
    """The durable event store (WAL / checkpoint engine) failed."""


class JournalCorruptError(StoreError):
    """A WAL segment is damaged somewhere other than its torn tail —
    history in the middle of the log is unreadable, which recovery must
    not silently skip."""
