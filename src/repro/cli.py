"""Command-line interface to the assessment system.

Subcommands mirror what the paper's GUI offers, driven from a terminal::

    mine-assess tree                      # Figure 1: the metadata tree
    mine-assess rules                     # the paper's four rule examples
    mine-assess simulate --students 44    # simulate a class, print the report
    mine-assess package --out exam.zip    # §5.5 SCORM package output
    mine-assess inspect exam.zip          # read a package's manifest
    mine-assess serve --port 8321         # HTTP exam-delivery service
    mine-assess serve --wal-dir wal/      # ... with a durable event journal
    mine-assess serve --wal-dir wal/ --readmodel   # ... + /admin/analytics
    mine-assess recover wal/              # rebuild state from the journal
    mine-assess analytics rebuild wal/    # fold the full journal (oracle)
    mine-assess analytics asof wal/ --ts 1717171717   # time-travel query
    mine-assess loadgen --url http://127.0.0.1:8321   # drive a cohort at it
    mine-assess loadgen --url ... --adaptive   # the CAT next-item loop
    mine-assess calibrate wal/                 # journal-fed 2PL re-fit
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import obs
from repro.core.grouping import GroupSplit
from repro.core.metadata import MineMetadata
from repro.core.report import build_report
from repro.core.rules import OptionMatrix, evaluate_rules
from repro.core.spec_table import SpecificationTable, TaggedQuestion
from repro.scorm.package import ContentPackage, package_exam
from repro.sim.population import make_population
from repro.sim.workloads import (
    classroom_exam,
    classroom_parameters,
    simulate_sitting_data,
)

__all__ = ["main", "build_parser"]

_PAPER_EXAMPLES = [
    ("Example 1 (Rule 1)", [12, 2, 0, 3, 3], [6, 4, 0, 5, 5], "A"),
    ("Example 2 (Rule 2)", [1, 2, 10, 0, 7], [2, 2, 13, 1, 2], "C"),
    ("Example 3 (Rule 3)", [15, 2, 2, 0, 1], [5, 4, 5, 4, 2], "A"),
    ("Example 4 (Rule 4)", [4, 4, 4, 2, 6], [5, 4, 5, 4, 2], "A"),
]


def _profile_parent() -> argparse.ArgumentParser:
    """Options every subcommand gets: the observability switch."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--profile", nargs="?", const="-", default=None, metavar="PATH",
        help=(
            "record spans/counters for this run and print the profile to "
            "stderr; with PATH, also append JSON-lines events to PATH"
        ),
    )
    return parent


def _engine_parent() -> argparse.ArgumentParser:
    """Options shared by every analysis-running subcommand."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--engine", choices=("columnar", "reference"), default="columnar",
        help="analysis engine (columnar = fast path, reference = baseline)",
    )
    parent.add_argument(
        "--sim-engine", dest="sim_engine",
        choices=("scalar", "vectorized", "auto"), default="scalar",
        help=(
            "cohort generator (scalar = per-learner loop, vectorized = "
            "numpy batch engine, auto = vectorized when numpy is present)"
        ),
    )
    return parent


def build_parser() -> argparse.ArgumentParser:
    """Build the mine-assess argument parser (one subparser per command)."""
    parser = argparse.ArgumentParser(
        prog="mine-assess",
        description=(
            "MINE assessment authoring system - reproduction of Hung et "
            "al. (2004)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    profile = _profile_parent()
    engines = _engine_parent()

    subparsers.add_parser(
        "tree", parents=[profile],
        help="print the Figure 1 metadata tree",
    )
    subparsers.add_parser(
        "rules", parents=[profile],
        help="run the paper's four diagnostic-rule examples",
    )

    simulate = subparsers.add_parser(
        "simulate", parents=[profile, engines],
        help="simulate a class sitting and print the analysis",
    )
    simulate.add_argument("--students", type=int, default=44)
    simulate.add_argument("--questions", type=int, default=10)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument(
        "--split", type=float, default=0.25,
        help="extreme-group fraction (paper: 0.25)",
    )

    package = subparsers.add_parser(
        "package", parents=[profile],
        help="SCORM package output service (section 5.5)",
    )
    package.add_argument("--out", required=True, help="output .zip path")
    package.add_argument("--questions", type=int, default=10)

    inspect = subparsers.add_parser(
        "inspect", parents=[profile],
        help="list a content package's manifest",
    )
    inspect.add_argument("package", help="path to a .zip content package")

    paper = subparsers.add_parser(
        "paper", parents=[profile],
        help="render an exam paper and its answer key",
    )
    paper.add_argument("--questions", type=int, default=10)
    paper.add_argument("--learner", default="",
                       help="learner id (matters for random-order exams)")
    paper.add_argument("--key", action="store_true",
                       help="print the answer key instead of the paper")

    export = subparsers.add_parser(
        "export", parents=[profile, engines],
        help="simulate a class and export the analysis",
    )
    export.add_argument("--students", type=int, default=44)
    export.add_argument("--questions", type=int, default=10)
    export.add_argument("--seed", type=int, default=0)
    export.add_argument(
        "--format", choices=("json", "csv"), default="json",
        help="json = full report; csv = the 4.1.1 table",
    )

    serve = subparsers.add_parser(
        "serve", parents=[profile],
        help="run the HTTP exam-delivery service (repro.server)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8321,
        help="TCP port (0 = pick an ephemeral port and print it)",
    )
    serve.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help=(
            "run a sharded delivery tier: N worker processes behind one "
            "SO_REUSEPORT front port, learners consistent-hashed across "
            "them; with --wal-dir each shard journals to its own "
            "subdirectory (DIR/shard-0, DIR/shard-1, ...)"
        ),
    )
    serve.add_argument(
        "--state", metavar="PATH", default=None,
        help=(
            "LMS state file: loaded at startup when it exists, written "
            "atomically on snapshots and at shutdown"
        ),
    )
    serve.add_argument(
        "--snapshot-interval", type=float, default=None, metavar="SECONDS",
        help="take a periodic snapshot to --state every SECONDS",
    )
    serve.add_argument(
        "--max-in-flight", type=int, default=64,
        help="requests in service before 503 backpressure kicks in",
    )
    serve.add_argument(
        "--wal-dir", metavar="DIR", default=None,
        help=(
            "durable event journal directory: every mutation is "
            "write-ahead logged before its response is acknowledged, and "
            "startup recovers the pre-crash state from the newest "
            "checkpoint plus the log (mutually exclusive with --state)"
        ),
    )
    serve.add_argument(
        "--fsync", choices=("always", "interval", "never"),
        default="interval",
        help=(
            "WAL fsync policy: always = flush disk per record, interval "
            "= coalesced fsyncs (default; still SIGKILL-safe), never = "
            "OS page cache only"
        ),
    )
    serve.add_argument(
        "--wal-format", type=int, choices=(1, 2), default=2,
        help=(
            "wire format for NEW WAL segments: 1 = JSON lines, 2 = "
            "compact binary (default); existing segments of either "
            "format are read transparently"
        ),
    )
    serve.add_argument(
        "--group-commit", action="store_true",
        help=(
            "with --fsync always, coalesce concurrent writers' fsyncs "
            "into one flush per group instead of one per record"
        ),
    )
    serve.add_argument(
        "--checkpoint-interval", type=float, default=None,
        metavar="SECONDS",
        help=(
            "checkpoint the WAL every SECONDS: snapshot the LMS, retire "
            "fully-covered segments (requires --wal-dir)"
        ),
    )
    serve.add_argument(
        "--readmodel", action="store_true",
        help=(
            "tail the journal into incrementally-maintained analytics "
            "read models and serve them at GET /admin/analytics/... "
            "(requires --wal-dir; with --workers each shard follows its "
            "own journal and the front scatter-gathers)"
        ),
    )

    recover_cmd = subparsers.add_parser(
        "recover", parents=[profile],
        help="rebuild LMS state from a WAL directory and print a report",
    )
    recover_cmd.add_argument(
        "wal_dir", metavar="DIR", nargs="+",
        help=(
            "journal directory written by serve --wal-dir; pass several "
            "(or one cluster root containing shard-* subdirectories) to "
            "merge per-shard recoveries into one whole-cohort state"
        ),
    )
    recover_cmd.add_argument(
        "--out", metavar="PATH", default=None,
        help="also write the recovered state as a snapshot file to PATH",
    )

    analytics = subparsers.add_parser(
        "analytics", parents=[profile],
        help="fold a WAL into analytics read models offline",
    )
    analytics.add_argument(
        "action", choices=("rebuild", "asof"),
        help=(
            "rebuild = fold the full journal from LSN 0 (the "
            "differential oracle for the live read models); asof = "
            "time-travel to --lsn/--ts via the nearest read-model "
            "checkpoint plus a bounded suffix replay"
        ),
    )
    analytics.add_argument(
        "wal_dir", metavar="DIR", nargs="+",
        help=(
            "journal directory written by serve --wal-dir; pass several "
            "(or one cluster root containing shard-* subdirectories) to "
            "merge per-shard folds into one whole-cohort answer"
        ),
    )
    analytics.add_argument(
        "--exam", metavar="EXAM_ID", default=None,
        help=(
            "also print this exam's merged summary and full cohort "
            "analysis (bit-identical to GET /admin/analytics/exams/"
            "EXAM_ID/analysis over the same journals)"
        ),
    )
    analytics.add_argument(
        "--lsn", type=int, default=None,
        help="asof target LSN (single journal only: LSNs are per-shard)",
    )
    analytics.add_argument(
        "--ts", type=float, default=None,
        help="asof target timestamp (meaningful across shards)",
    )
    analytics.add_argument(
        "--out", metavar="PATH", default=None,
        help="also write the JSON payload to PATH",
    )

    loadgen = subparsers.add_parser(
        "loadgen", parents=[profile],
        help="drive a simulated cohort through a running server",
    )
    loadgen.add_argument(
        "--url", required=True,
        help="base URL of a running mine-assess serve instance",
    )
    loadgen.add_argument("--students", type=int, default=200)
    loadgen.add_argument("--questions", type=int, default=20)
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument("--workers", type=int, default=8)
    loadgen.add_argument(
        "--batch", type=int, default=0, metavar="K",
        help=(
            "post answers K at a time via answers:batch (the final "
            "chunk submits the sitting); 0 = one request per answer"
        ),
    )
    loadgen.add_argument(
        "--cluster", action="store_true",
        help=(
            "topology-aware mode against serve --workers: fetch "
            "/cluster/topology, rebuild the hash ring client-side, and "
            "drive each learner directly at the shard that owns them"
        ),
    )
    loadgen.add_argument(
        "--adaptive", action="store_true",
        help=(
            "drive the CAT loop: offer an adaptive exam, let the server "
            "pick each item via GET .../next-item, answer what it "
            "chose, submit when the policy says done (incompatible "
            "with --batch)"
        ),
    )
    loadgen.add_argument(
        "--no-setup", action="store_true",
        help="skip offering the exam / registering learners first",
    )
    loadgen.add_argument(
        "--out", metavar="PATH", default=None,
        help="also write the JSON summary (throughput, percentiles) here",
    )

    calibrate = subparsers.add_parser(
        "calibrate", parents=[profile],
        help=(
            "re-fit 2PL item parameters from a WAL's completed sittings "
            "and write a versioned snapshot a server hot-swaps"
        ),
    )
    calibrate.add_argument(
        "wal_dir", metavar="DIR",
        help="journal directory written by serve --wal-dir",
    )
    calibrate.add_argument(
        "--exam", metavar="EXAM_ID", default=None,
        help=(
            "calibrate only this exam (default: every offered exam "
            "with an adaptive policy)"
        ),
    )
    calibrate.add_argument(
        "--out-dir", metavar="DIR", default=None,
        help=(
            "snapshot output directory (default: DIR/calibration, "
            "where a serving process looks on boot and on "
            "POST /admin/calibration/reload)"
        ),
    )
    calibrate.add_argument(
        "--min-sittings", type=int, default=10,
        help="skip exams with fewer graded sittings than this",
    )
    calibrate.add_argument(
        "--iterations", type=int, default=25,
        help="EM iterations for the 2PL fit",
    )
    return parser


def _cmd_tree(_args) -> int:
    print(MineMetadata().render_tree())
    return 0


def _cmd_rules(_args) -> int:
    for title, high, low, correct in _PAPER_EXAMPLES:
        matrix = OptionMatrix.from_rows(high, low, correct=correct)
        outcome = evaluate_rules(matrix)
        print(f"== {title} (correct: {correct}) ==")
        print(matrix.render())
        if outcome.matches:
            for match in outcome.matches:
                print(f"  {match.explanation}")
        else:
            print("  no rule fired")
        print()
    return 0


def _build_simulated_report(args):
    """Shared by simulate/export: run the classroom scenario."""
    exam = classroom_exam(args.questions)
    parameters = classroom_parameters(args.questions)
    learners = make_population(args.students, seed=args.seed)
    data = simulate_sitting_data(
        exam,
        parameters,
        learners,
        seed=args.seed + 1,
        sim_engine=getattr(args, "sim_engine", "scalar"),
    )
    cohort = data.analyze(
        split=GroupSplit(fraction=args.split),
        engine=getattr(args, "engine", "columnar"),
    )
    correct_flags = {
        response.examinee_id: [
            selection == spec.correct
            for selection, spec in zip(response.selections, data.specs)
        ]
        for response in data.responses
    }
    spec_table = SpecificationTable.from_questions(
        [
            TaggedQuestion(
                number=index + 1,
                concept=item.subject,
                level=item.cognition_level,
            )
            for index, item in enumerate(exam.items)
        ]
    )
    return build_report(
        exam.title,
        cohort,
        correct_flags=correct_flags,
        answer_times=data.answer_times,
        time_limit_seconds=exam.time_limit_seconds,
        spec_table=spec_table,
        specs=data.specs,
    )


def _cmd_simulate(args) -> int:
    if args.students < 8:
        print("need at least 8 students for a 25% split", file=sys.stderr)
        return 2
    print(_build_simulated_report(args).render())
    return 0


def _cmd_export(args) -> int:
    if args.students < 8:
        print("need at least 8 students for a 25% split", file=sys.stderr)
        return 2
    args.split = getattr(args, "split", 0.25)
    report = _build_simulated_report(args)
    if args.format == "json":
        from repro.core.export import report_to_json

        print(report_to_json(report))
    else:
        from repro.core.export import number_representation_csv

        print(number_representation_csv(report), end="")
    return 0


def _cmd_paper(args) -> int:
    from repro.exams.render import render_answer_key, render_exam_paper

    exam = classroom_exam(args.questions)
    if args.key:
        print(render_answer_key(exam))
    else:
        print(render_exam_paper(exam, args.learner))
    return 0


def _cmd_package(args) -> int:
    exam = classroom_exam(args.questions)
    payload = package_exam(exam, args.out)
    print(f"wrote {args.out} ({len(payload)} bytes, {len(exam.items)} items)")
    return 0


def _cmd_inspect(args) -> int:
    try:
        package = ContentPackage.from_file(args.package)
    except Exception as exc:  # surface any packaging error to the operator
        print(f"cannot read package: {exc}", file=sys.stderr)
        return 2
    manifest = package.manifest
    print(f"manifest: {manifest.identifier} (SCORM {manifest.schema_version})")
    for organization in manifest.organizations:
        print(f"organization: {organization.identifier} - {organization.title}")
        for item in organization.walk():
            ref = f" -> {item.identifierref}" if item.identifierref else ""
            print(f"  item {item.identifier}: {item.title}{ref}")
    print(f"resources: {len(manifest.resources)}")
    for resource in manifest.resources:
        print(
            f"  {resource.identifier} ({resource.scorm_type}) {resource.href}"
        )
    return 0


def _cmd_serve(args) -> int:
    import os

    from repro.lms.lms import Lms
    from repro.lms.persistence import load_lms
    from repro.server.app import ExamServer

    if args.state is not None and args.wal_dir is not None:
        print(
            "--state and --wal-dir are mutually exclusive: pick periodic "
            "snapshots or the write-ahead journal",
            file=sys.stderr,
        )
        return 2
    if args.readmodel and args.wal_dir is None:
        print(
            "--readmodel tails the event journal; it requires --wal-dir",
            file=sys.stderr,
        )
        return 2
    if args.workers > 1:
        return _serve_cluster(args)
    if args.wal_dir is not None:
        # lms=None → ExamServer recovers from the newest checkpoint +
        # WAL suffix before serving
        lms = None
    elif args.state is not None and os.path.exists(args.state):
        lms = load_lms(args.state)
        print(f"restored LMS state from {args.state}", file=sys.stderr)
    else:
        lms = Lms()
    server = ExamServer(
        lms,
        host=args.host,
        port=args.port,
        max_in_flight=args.max_in_flight,
        snapshot_path=args.state,
        snapshot_interval_seconds=args.snapshot_interval,
        wal_dir=args.wal_dir,
        fsync=args.fsync,
        wal_format=args.wal_format,
        group_commit=args.group_commit,
        checkpoint_interval_seconds=args.checkpoint_interval,
        readmodel=args.readmodel,
    )
    if server.recovery_report is not None:
        print(server.recovery_report.summary(), file=sys.stderr)
    print(f"serving on {server.url}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down (draining in-flight requests)", file=sys.stderr)
        server.shutdown()
    return 0


def _serve_cluster(args) -> int:
    """serve --workers N: the sharded multi-process delivery tier."""
    from repro.cluster.supervisor import ExamCluster

    if args.state is not None or args.snapshot_interval is not None:
        print(
            "--workers runs each shard on its own WAL; --state / "
            "--snapshot-interval snapshots are single-process only",
            file=sys.stderr,
        )
        return 2
    cluster = ExamCluster(
        workers=args.workers,
        host=args.host,
        front_port=args.port,
        wal_root=args.wal_dir,
        fsync=args.fsync,
        wal_format=args.wal_format,
        group_commit=args.group_commit,
        max_in_flight=args.max_in_flight,
        checkpoint_interval_seconds=args.checkpoint_interval,
        readmodel=args.readmodel,
    )
    with cluster:
        for shard in cluster.shards:
            print(
                f"  {shard}: {cluster.worker_url(shard)}", file=sys.stderr
            )
        print(
            f"serving on {cluster.url} ({args.workers} workers)", flush=True
        )
        try:
            import signal as signal_module
            import threading as threading_module

            stop = threading_module.Event()
            signal_module.signal(
                signal_module.SIGTERM, lambda *_: stop.set()
            )
            while not stop.wait(0.5):
                pass
        except KeyboardInterrupt:
            print("shutting down workers", file=sys.stderr)
    return 0


def _recover_wal_dirs(args) -> List[str]:
    """The journal directories to recover: explicit list, or the
    shard-* subdirectories of a single cluster root."""
    import os

    dirs = list(args.wal_dir)
    if len(dirs) == 1:
        shard_dirs = sorted(
            entry.path
            for entry in os.scandir(dirs[0])
            if entry.is_dir() and entry.name.startswith("shard-")
        )
        if shard_dirs:
            print(
                f"cluster root: merging {len(shard_dirs)} shard "
                f"journals", file=sys.stderr,
            )
            return shard_dirs
    return dirs


def _cmd_recover(args) -> int:
    from repro.lms.persistence import lms_from_payload, merge_payloads
    from repro.store import recover

    try:
        wal_dirs = _recover_wal_dirs(args)
        reports = [recover(wal_dir) for wal_dir in wal_dirs]
    except Exception as exc:  # surface store errors to the operator
        print(f"recovery failed: {exc}", file=sys.stderr)
        return 2
    for report in reports:
        print(report.summary())
    if len(reports) == 1:
        lms = reports[0].lms
    else:
        # merge the per-shard recoveries into one whole-cohort LMS:
        # export each shard's state, merge the payloads (learners are
        # disjoint; exams are broadcast duplicates), reload
        from repro.lms.persistence import _collect_payload

        try:
            lms = lms_from_payload(
                merge_payloads(
                    [_collect_payload(report.lms) for report in reports]
                )
            )
        except Exception as exc:
            print(f"merge failed: {exc}", file=sys.stderr)
            return 2
        print(f"merged {len(reports)} shard recoveries")
    for exam_id in lms.offered_exams():
        open_sittings = sum(
            1
            for (_, eid) in lms._sittings
            if eid == exam_id
        )
        print(
            f"  exam {exam_id}: {len(lms.enrolled(exam_id))} enrolled, "
            f"{len(lms.results_for(exam_id))} graded, "
            f"{open_sittings} sitting record(s)"
        )
    print(f"  learners: {len(lms.learners)}")
    print(f"  tracking events: {len(lms.tracking)}")
    if args.out:
        from repro.lms.persistence import save_lms

        # per-shard LSN sequences are independent; for a merged export
        # the max is informational only
        save_lms(
            lms,
            args.out,
            wal_lsn=max(report.last_lsn for report in reports),
        )
        print(f"wrote recovered state to {args.out}", file=sys.stderr)
    return 0


def _cmd_analytics(args) -> int:
    """Offline read-model folds: the differential oracle + time travel.

    A single journal's ``--exam`` analysis is computed from the fold's
    own live matrix (submission order) — bit-identical to what one
    ``serve --readmodel`` process answers.  Several journals are merged
    through canonical partials — bit-identical to the cluster's
    scatter-gathered answer over the same shard journals.
    """
    import json as json_module

    from repro.readmodel import as_of, rebuild

    try:
        wal_dirs = _recover_wal_dirs(args)
    except Exception as exc:
        print(f"cannot expand journal dirs: {exc}", file=sys.stderr)
        return 2
    if args.action == "asof":
        if (args.lsn is None) == (args.ts is None):
            print(
                "asof needs exactly one of --lsn / --ts", file=sys.stderr
            )
            return 2
        if args.lsn is not None and len(wal_dirs) > 1:
            print(
                "--lsn is a per-shard coordinate; use --ts to time-travel "
                "across shard journals",
                file=sys.stderr,
            )
            return 2
    elif args.lsn is not None or args.ts is not None:
        print("--lsn/--ts only apply to the asof action", file=sys.stderr)
        return 2
    models = []
    try:
        for wal_dir in wal_dirs:
            if args.action == "asof":
                model, replayed = as_of(wal_dir, lsn=args.lsn, ts=args.ts)
                print(
                    f"{wal_dir}: as of lsn {model.applied_lsn} "
                    f"({replayed} suffix record(s) replayed)",
                    file=sys.stderr,
                )
            else:
                model = rebuild(wal_dir)
                print(
                    f"{wal_dir}: rebuilt {model.applied_events} event(s) "
                    f"to lsn {model.applied_lsn}",
                    file=sys.stderr,
                )
            models.append(model)
        payload = _analytics_payload(models, args.exam)
    except Exception as exc:
        print(f"analytics fold failed: {exc}", file=sys.stderr)
        return 2
    rendered = json_module.dumps(payload, indent=2, sort_keys=True)
    print(rendered)
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(rendered + "\n", encoding="utf-8")
        print(f"wrote {args.out}", file=sys.stderr)
    return 0


def _analytics_payload(models, exam_id):
    """Merge per-journal folds into one whole-cohort JSON payload."""
    overviews = [model.overview() for model in models]
    payload = {
        "journals": len(models),
        "applied_events": sum(o["applied_events"] for o in overviews),
        "learners": sum(o["learners"] for o in overviews),
        "exams": sorted(
            {entry["exam_id"] for o in overviews for entry in o["exams"]}
        ),
    }
    if exam_id is None:
        return payload
    from repro.core.errors import NotFoundError
    from repro.readmodel.model import merge_summaries
    from repro.server.serialize import analysis_to_dict

    holders = [
        model.exam(exam_id) for model in models if exam_id in model.exams
    ]
    if not holders:
        raise NotFoundError(f"no journal holds exam {exam_id!r}")
    payload["summary"] = merge_summaries(
        [holder.summary() for holder in holders]
    )
    if len(holders) == 1:
        # one journal: the fold's own matrix, submission order — exactly
        # what a single serve --readmodel process answers
        payload["analysis"] = analysis_to_dict(holders[0].analysis())
    else:
        # several journals: canonical merge, exactly the cluster's
        # scatter-gathered answer
        from repro.core.columnar import merge_partials

        matrix = merge_partials(
            holders[0].exam.question_specs(),
            [holder.partial() for holder in holders],
        )
        payload["analysis"] = analysis_to_dict(matrix.analyze())
    return payload


def _cmd_loadgen(args) -> int:
    from repro.server.loadgen import run_loadgen

    report = run_loadgen(
        args.url,
        learners=args.students,
        questions=args.questions,
        seed=args.seed,
        workers=args.workers,
        setup=not args.no_setup,
        batch=args.batch,
        cluster=args.cluster,
        adaptive=args.adaptive,
    )
    print(report.render())
    if args.out:
        import json as json_module
        from pathlib import Path

        Path(args.out).write_text(
            json_module.dumps(report.to_dict(), indent=2), encoding="utf-8"
        )
        print(f"wrote {args.out}", file=sys.stderr)
    return 0


def _cmd_calibrate(args) -> int:
    """The journal-fed calibration loop: WAL -> 2PL fit -> snapshot.

    Recovers the LMS from the journal, harvests the completed-sitting
    response matrix per adaptive exam (missing = never administered),
    re-fits via :func:`~repro.adaptive.item_calibration.calibrate_2pl`,
    and writes a ``params-<exam>-v<N>.json`` snapshot one version above
    the exam's current one — exactly what a serving process scans for
    at boot and on ``POST /admin/calibration/reload``.
    """
    from pathlib import Path

    from repro.adaptive.item_calibration import calibrate_2pl
    from repro.adaptive.online import (
        collect_calibration_matrix,
        write_calibration_snapshot,
    )
    from repro.store import recover

    try:
        report = recover(args.wal_dir)
    except Exception as exc:  # surface store errors to the operator
        print(f"recovery failed: {exc}", file=sys.stderr)
        return 2
    print(report.summary(), file=sys.stderr)
    lms = report.lms
    out_dir = (
        Path(args.out_dir)
        if args.out_dir is not None
        else Path(args.wal_dir) / "calibration"
    )
    exam_ids = (
        [args.exam] if args.exam is not None else lms.offered_exams()
    )
    wrote = 0
    for exam_id in exam_ids:
        exam = lms.exam(exam_id)
        if exam.adaptive is None:
            if args.exam is not None:
                print(
                    f"exam {exam_id!r} has no adaptive policy; nothing "
                    f"to calibrate",
                    file=sys.stderr,
                )
                return 2
            continue
        item_ids, matrix = collect_calibration_matrix(lms, exam_id)
        if len(matrix) < args.min_sittings:
            print(
                f"  {exam_id}: {len(matrix)} graded sitting(s) < "
                f"--min-sittings {args.min_sittings}; skipped"
            )
            continue
        result = calibrate_2pl(matrix, max_iterations=args.iterations)
        version = lms.calibration_version(exam_id) + 1
        path = write_calibration_snapshot(
            out_dir,
            exam_id,
            version,
            result.as_pool(item_ids),
            diagnostics={
                "sittings": len(matrix),
                "items": len(item_ids),
                "iterations": result.iterations,
                "converged": result.converged,
                "log_likelihood": result.log_likelihood,
            },
        )
        wrote += 1
        fit = "converged" if result.converged else "NOT converged"
        print(
            f"  {exam_id}: fitted {len(item_ids)} item(s) from "
            f"{len(matrix)} sitting(s) in {result.iterations} EM "
            f"iteration(s) ({fit}) -> {path}"
        )
    if not wrote:
        print("no calibration snapshots written", file=sys.stderr)
        return 1
    print(
        f"{wrote} snapshot(s) in {out_dir}; a serving process picks "
        f"them up at boot or on POST /admin/calibration/reload"
    )
    return 0


_COMMANDS = {
    "tree": _cmd_tree,
    "rules": _cmd_rules,
    "simulate": _cmd_simulate,
    "paper": _cmd_paper,
    "export": _cmd_export,
    "package": _cmd_package,
    "inspect": _cmd_inspect,
    "serve": _cmd_serve,
    "recover": _cmd_recover,
    "analytics": _cmd_analytics,
    "loadgen": _cmd_loadgen,
    "calibrate": _cmd_calibrate,
}


def _run_profiled(args) -> int:
    """Run a command under the observability registry, then report."""
    sink = None
    if args.profile != "-":
        sink = obs.JsonLinesSink(args.profile)
    obs.enable(*([sink] if sink else []))
    try:
        with obs.span(f"cli.{args.command}"):
            code = _COMMANDS[args.command](args)
        obs.flush()
        print(obs.render(), file=sys.stderr)
        if sink is not None:
            print(
                f"profile: {sink.lines_written} events -> {args.profile}",
                file=sys.stderr,
            )
    finally:
        obs.disable()
        obs.reset()
        if sink is not None:
            obs.get_registry().remove_sink(sink)
            sink.close()
    return code


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if getattr(args, "profile", None) is not None:
        return _run_profiled(args)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
