"""Simulation workloads: whole cohorts sitting whole exams.

This is the layer the benchmarks drive.  It wires the response model,
the time model, and the exam/analysis bridge together:

* :func:`simulate_sitting_data` — a cohort answers an exam's
  choice-style questions; returns the analysis-ready
  :class:`~repro.core.question_analysis.ExamineeResponses` plus
  per-examinee answer-time series;
* :func:`classroom_exam` + :func:`classroom_parameters` — a 10-question
  exam whose items are *constructed* to exhibit the paper's quality
  patterns (good items, a weak distractor, an ambiguous key, guessing),
  so the benches can show each rule and signal firing on realistic data;
* :func:`pre_post_cohorts` — pre-teaching and post-teaching sittings for
  the Instructional Sensitivity Index.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.core.cognition import CognitionLevel
from repro.core.errors import AnalysisError
from repro.core.grouping import GroupSplit
from repro.core.question_analysis import ExamineeResponses, QuestionSpec
from repro.core.rules import DEFAULT_SPREAD_THRESHOLD
from repro.core.signals import DEFAULT_POLICY, SignalPolicy
from repro.exams.authoring import ExamBuilder
from repro.exams.exam import Exam
from repro.items.choice import MultipleChoiceItem
from repro.sim.learner_model import (
    ItemParameters,
    SimulatedLearner,
    sample_selection,
)
from repro.sim.population import make_population
from repro.sim.response_time import cumulative_answer_times, sample_item_time

__all__ = [
    "SimulatedSittingData",
    "simulate_sitting_data",
    "classroom_exam",
    "classroom_adaptive_exam",
    "classroom_parameters",
    "pre_post_cohorts",
]


@dataclass
class SimulatedSittingData:
    """Everything a simulated administration produced."""

    responses: List[ExamineeResponses]
    answer_times: List[List[float]]
    specs: List[QuestionSpec]

    @property
    def durations(self) -> List[float]:
        """Total sitting duration per examinee (last commit time)."""
        return [times[-1] if times else 0.0 for times in self.answer_times]

    def analyze(
        self,
        split: Optional[GroupSplit] = None,
        engine: str = "columnar",
        policy: SignalPolicy = DEFAULT_POLICY,
        spread_threshold: float = DEFAULT_SPREAD_THRESHOLD,
    ):
        """Run the §4.1 analysis over the simulated sitting.

        Routed through :func:`repro.core.question_analysis.analyze_cohort`
        so simulation workloads exercise the same engine switch as the
        production layers (columnar by default).  ``policy`` and
        ``spread_threshold`` are forwarded (the kwargs-threading audit
        found them silently unreachable from simulated workloads).
        """
        from repro.core.question_analysis import analyze_cohort

        return analyze_cohort(
            self.responses,
            self.specs,
            split=split if split is not None else GroupSplit(),
            policy=policy,
            spread_threshold=spread_threshold,
            engine=engine,
        )


def simulate_sitting_data(
    exam: Exam,
    parameters: Dict[str, ItemParameters],
    learners: Sequence[SimulatedLearner],
    seed: int = 0,
    base_seconds: float = 45.0,
    omit_rate: float = 0.0,
    sigma: float = 0.35,
    sim_engine: str = "scalar",
):
    """Simulate every learner answering every analyzable item.

    ``parameters`` maps item ids to their IRT parameters; items without
    an entry get defaults.  Selections, times, and omissions are all
    drawn from one seeded RNG, so runs are reproducible.  ``sigma`` is
    the lognormal spread of the per-item time model, threaded to both
    engines (it used to be reachable only by calling the vectorized
    engine directly).

    ``sim_engine`` selects the generator: ``"scalar"`` (default) is this
    per-learner loop, byte-stable across releases; ``"vectorized"`` is
    the batch engine of :mod:`repro.sim.vectorized`, which returns the
    array-native ``VectorizedSittingData`` (duck-compatible with
    :class:`SimulatedSittingData`, ~10-100x faster at cohort scale, and
    distributionally — not bit- — equivalent, see docs/simulation.md);
    ``"auto"`` picks vectorized when numpy is available.
    """
    if sim_engine == "auto":
        from repro.sim.vectorized import HAVE_NUMPY

        sim_engine = "vectorized" if HAVE_NUMPY else "scalar"
    if sim_engine == "vectorized":
        from repro.sim.vectorized import simulate_sitting_arrays

        return simulate_sitting_arrays(
            exam,
            parameters,
            learners,
            seed=seed,
            base_seconds=base_seconds,
            omit_rate=omit_rate,
            sigma=sigma,
        )
    if sim_engine != "scalar":
        raise AnalysisError(
            f"unknown sim engine {sim_engine!r}; "
            f"expected 'scalar', 'vectorized', or 'auto'"
        )
    with obs.span(
        "sim.generate",
        engine="scalar",
        learners=len(learners),
        questions=len(exam.analyzable_items()),
    ):
        rng = random.Random(seed)
        specs = exam.question_specs()
        items = exam.analyzable_items()
        responses: List[ExamineeResponses] = []
        answer_times: List[List[float]] = []
        default = ItemParameters()
        for learner in learners:
            selections: List[Optional[str]] = []
            item_times: List[float] = []
            for item, spec in zip(items, specs):
                params = parameters.get(item.item_id, default)
                selections.append(
                    sample_selection(
                        rng, learner, params, spec.options, spec.correct,
                        omit_rate=omit_rate,
                    )
                )
                item_times.append(
                    sample_item_time(
                        rng, learner, params,
                        base_seconds=base_seconds, sigma=sigma,
                    )
                )
            commits = cumulative_answer_times(item_times)
            responses.append(
                ExamineeResponses.of(
                    learner.learner_id,
                    selections,
                    duration_seconds=commits[-1] if commits else 0.0,
                )
            )
            answer_times.append(commits)
    obs.count("sim.learners.generated", len(responses))
    return SimulatedSittingData(
        responses=responses, answer_times=answer_times, specs=specs
    )


# --------------------------------------------------------------------------
# The classroom scenario used throughout the benches
# --------------------------------------------------------------------------

_CONCEPTS = ("sorting", "hashing", "trees")
_LEVELS = (
    CognitionLevel.KNOWLEDGE,
    CognitionLevel.KNOWLEDGE,
    CognitionLevel.COMPREHENSION,
    CognitionLevel.COMPREHENSION,
    CognitionLevel.APPLICATION,
    CognitionLevel.KNOWLEDGE,
    CognitionLevel.COMPREHENSION,
    CognitionLevel.APPLICATION,
    CognitionLevel.ANALYSIS,
    CognitionLevel.KNOWLEDGE,
)


def classroom_exam(question_count: int = 10) -> Exam:
    """A multiple-choice exam over three concepts with tagged levels."""
    builder = ExamBuilder("classroom-mid", "Classroom Midterm").time_limit(
        45 * 60
    )
    for index in range(question_count):
        concept = _CONCEPTS[index % len(_CONCEPTS)]
        level = _LEVELS[index % len(_LEVELS)]
        builder.add_item(
            MultipleChoiceItem.build(
                f"q{index + 1:02d}",
                f"Question {index + 1} on {concept}?",
                ["alpha", "beta", "gamma", "delta", "epsilon"],
                correct_index=index % 5,
                subject=concept,
                cognition_level=level,
            )
        )
    return builder.build()


def classroom_adaptive_exam(
    question_count: int = 10,
    max_items: Optional[int] = None,
    se_target: float = 0.35,
) -> Exam:
    """The classroom exam with an adaptive (CAT) policy attached.

    The policy pins the classroom scenario's engineered IRT parameters
    (:func:`classroom_parameters`), so adaptive item selection over this
    exam is deterministic and exercises the same item pathologies the
    fixed-form benches rely on.  ``max_items`` defaults to half the pool
    (floor 3) — the point of an adaptive sitting is to stop early.
    """
    from repro.adaptive.online import AdaptivePolicy

    exam = classroom_exam(question_count)
    cap = max_items if max_items is not None else max(3, question_count // 2)
    exam.adaptive = AdaptivePolicy(
        max_items=cap,
        min_items=min(3, cap),
        se_target=se_target,
        parameters=classroom_parameters(question_count),
    )
    exam.validate()
    return exam


def classroom_parameters(question_count: int = 10) -> Dict[str, ItemParameters]:
    """Item parameters engineered to show the paper's quality patterns.

    * q1, q4, q7, ... — healthy items (good a, centred b);
    * q2 — a *dead distractor*: one wrong option has zero attraction
      (Rule 1's "the option's allure is low");
    * q3 — a *flat* item: near-zero discrimination with guessing, so D
      stays out of the green band (Table 3 "fix"/"eliminate" territory);
    * q5 — a *too-hard guessing* item: b far above the cohort, flat a —
      both groups choose uniformly (Rules 3/4);
    * q6 — a *weak* item: low a, lands in the yellow band.
    """
    exam = classroom_exam(question_count)
    parameters: Dict[str, ItemParameters] = {}
    for index, item in enumerate(exam.items):
        item_id = item.item_id
        role = index % 10
        if role == 1:
            wrong = [o for o in item.labels if o != item.correct_label]
            attractions = {option: 1.0 for option in wrong}
            attractions[wrong[0]] = 0.0  # the dead distractor
            parameters[item_id] = ItemParameters(
                a=1.4, b=-0.2, attractions=attractions
            )
        elif role == 2:
            parameters[item_id] = ItemParameters(a=0.2, b=4.5, c=0.2)
        elif role == 4:
            parameters[item_id] = ItemParameters(a=0.25, b=4.0, c=0.0)
        elif role == 5:
            parameters[item_id] = ItemParameters(a=0.55, b=0.4)
        else:
            parameters[item_id] = ItemParameters(a=1.6, b=-0.5 + 0.25 * role)
    return parameters


def pre_post_cohorts(
    exam: Exam,
    parameters: Dict[str, ItemParameters],
    size: int = 60,
    teaching_gain: float = 1.2,
    seed: int = 7,
    base_seconds: float = 45.0,
    omit_rate: float = 0.0,
    sigma: float = 0.35,
    sim_engine: str = "scalar",
) -> Tuple[SimulatedSittingData, SimulatedSittingData]:
    """Simulate the same class before and after teaching (§3.4 ISI).

    The post-teaching cohort is the same population with every ability
    shifted up by ``teaching_gain`` logits.  ``base_seconds``,
    ``omit_rate``, ``sigma``, and ``sim_engine`` are threaded through to
    *both* sittings (they used to be silently dropped, so ISI studies
    could not model omission or pacing at all).
    """
    before = make_population(size, mean_ability=-0.6, seed=seed)
    after = [
        SimulatedLearner(
            learner_id=learner.learner_id,
            ability=learner.ability + teaching_gain,
            pace=learner.pace,
        )
        for learner in before
    ]
    pre = simulate_sitting_data(
        exam,
        parameters,
        before,
        seed=seed + 1,
        base_seconds=base_seconds,
        omit_rate=omit_rate,
        sigma=sigma,
        sim_engine=sim_engine,
    )
    post = simulate_sitting_data(
        exam,
        parameters,
        after,
        seed=seed + 2,
        base_seconds=base_seconds,
        omit_rate=omit_rate,
        sigma=sigma,
        sim_engine=sim_engine,
    )
    return pre, post
