"""Vectorized adaptive cohorts — whole populations sitting CAT exams.

The scalar way to simulate an adaptive cohort is to loop
:class:`~repro.adaptive.online.AdaptiveSession` per learner: each step
selects from the information table, folds the response into a
61-point log-posterior, and re-estimates theta — Python-loop work that
is O(learners x steps x grid) in interpreter time.  This module runs
the *whole cohort* one step at a time instead:

* the cohort's log-posteriors live as one ``(N, grid)`` matrix;
* per-step selection gathers each active learner's nearest info-table
  row and takes a masked argmax (numpy's first-max tie-break equals the
  table's strict-``>`` scan over sorted ids);
* the EAP update (exp-normalize, mean, SD) is two matrix reductions.

Response draws are **pre-sampled per (learner, item)** from the same
per-learner seeded streams regardless of engine, so the scalar loop and
the array engine administer from identical randomness; under a fixed
seed either engine is fully deterministic.  A pure-stdlib fallback
(the scalar loop) keeps the entry point working on no-numpy installs.

The result duck-types :class:`~repro.sim.workloads.SimulatedSittingData`
(``responses`` / ``answer_times`` / ``specs`` / ``analyze()``) with the
never-administered cells left as omissions, plus the adaptive extras the
benches and recovery tests want: the per-learner item sequence, the
(theta, SE) trajectory, and the stopping reason.
"""

from __future__ import annotations

import math
import random
from bisect import bisect_right
from itertools import accumulate
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.core.errors import AnalysisError
from repro.core.grouping import GroupSplit
from repro.core.question_analysis import ExamineeResponses, QuestionSpec
from repro.exams.exam import Exam
from repro.sim.learner_model import SimulatedLearner, probability_correct
from repro.sim.vectorized import HAVE_NUMPY, _np

__all__ = ["AdaptiveCohortData", "simulate_adaptive_cohort"]


class AdaptiveCohortData:
    """Everything a simulated adaptive administration produced.

    Duck-compatible with :class:`~repro.sim.workloads.
    SimulatedSittingData` — ``responses`` carry ``None`` for items the
    policy never served (the calibration-matrix convention), so the
    §4.1 analysis and the 2PL calibration loop consume adaptive cohorts
    unchanged.
    """

    def __init__(
        self,
        specs: Sequence[QuestionSpec],
        responses: List[ExamineeResponses],
        answer_times: List[List[float]],
        item_sequences: List[List[str]],
        response_flags: List[List[bool]],
        trajectories: List[List[Tuple[float, float]]],
        thetas: List[float],
        standard_errors: List[float],
        stop_reasons: List[str],
    ) -> None:
        self.specs = list(specs)
        self.responses = responses
        self.answer_times = answer_times
        #: the server-would-have-chosen item order per learner
        self.item_sequences = item_sequences
        #: correctness per administered item, same order
        self.response_flags = response_flags
        #: (theta, SE) after each response, per learner
        self.trajectories = trajectories
        #: final ability estimate / SE per learner
        self.thetas = thetas
        self.standard_errors = standard_errors
        #: ``max_items`` / ``pool_exhausted`` / ``se_target`` per learner
        self.stop_reasons = stop_reasons

    def __len__(self) -> int:
        return len(self.responses)

    @property
    def durations(self) -> List[float]:
        """Total sitting duration per examinee (last commit time)."""
        return [times[-1] if times else 0.0 for times in self.answer_times]

    @property
    def items_administered(self) -> int:
        """Total answers across the cohort (the CAT saving metric)."""
        return sum(len(sequence) for sequence in self.item_sequences)

    def analyze(self, split: Optional[GroupSplit] = None,
                engine: str = "columnar", **kwargs):
        """Run the §4.1 analysis over the administered subset."""
        from repro.core.question_analysis import analyze_cohort

        return analyze_cohort(
            self.responses,
            self.specs,
            split=split if split is not None else GroupSplit(),
            engine=engine,
            **kwargs,
        )


def _predraw(
    learner: SimulatedLearner, seed: int, width: int, sigma: float
) -> Tuple[List[float], List[float], List[float]]:
    """Per-(learner, item) uniforms and time noise, in table-column order.

    Seeding is per-learner (the loadgen convention), and consumption
    order is fixed by the table's sorted item ids — NOT by the
    administration order — so both engines, and any re-run, draw
    identical randomness no matter which items the policy picks.
    """
    rng = random.Random(f"{seed}:adaptive:{learner.learner_id}")
    u_correct = [rng.random() for _ in range(width)]
    u_distract = [rng.random() for _ in range(width)]
    time_noise = [rng.lognormvariate(0.0, sigma) for _ in range(width)]
    return u_correct, u_distract, time_noise


def _distractor_tables(
    specs: Sequence[QuestionSpec],
    spec_of: Dict[str, int],
    item_ids: Sequence[str],
    pool,
) -> Tuple[List[Optional[List[str]]], List[Optional[List[float]]]]:
    """Per table column: wrong-option labels + cumulative attractions."""
    labels: List[Optional[List[str]]] = []
    bounds: List[Optional[List[float]]] = []
    for item_id in item_ids:
        spec = specs[spec_of[item_id]]
        wrong = [option for option in spec.options if option != spec.correct]
        weights = [
            pool[item_id].attractions.get(option, 1.0) for option in wrong
        ]
        cumulative = list(accumulate(weights))
        if not wrong or cumulative[-1] <= 0:
            labels.append(None)
            bounds.append(None)
        else:
            labels.append(wrong)
            bounds.append(cumulative)
    return labels, bounds


def simulate_adaptive_cohort(
    exam: Exam,
    learners: Sequence[SimulatedLearner],
    seed: int = 0,
    base_seconds: float = 45.0,
    sigma: float = 0.35,
    engine: str = "auto",
) -> AdaptiveCohortData:
    """Every learner sits ``exam`` under its adaptive policy.

    ``exam.adaptive`` must be set (see :func:`~repro.sim.workloads.
    classroom_adaptive_exam`); the same :class:`~repro.adaptive.online.
    ItemInformationTable` the delivery tier would install drives
    selection here.  ``engine``: ``"scalar"`` loops
    :class:`~repro.adaptive.online.AdaptiveSession` per learner;
    ``"vectorized"`` runs the cohort step-synchronously as arrays
    (falling back to scalar without numpy); ``"auto"`` picks for you.
    Either engine consumes the same pre-sampled randomness.
    """
    from repro.adaptive.online import ItemInformationTable

    policy = exam.adaptive
    if policy is None:
        raise AnalysisError(
            f"exam {exam.exam_id!r} has no adaptive policy; "
            f"set exam.adaptive or use classroom_adaptive_exam()"
        )
    if engine not in ("auto", "scalar", "vectorized"):
        raise AnalysisError(
            f"unknown adaptive sim engine {engine!r}; "
            f"expected 'scalar', 'vectorized', or 'auto'"
        )
    if sigma < 0:
        raise AnalysisError(f"sigma must be non-negative, got {sigma}")
    if base_seconds <= 0:
        raise AnalysisError(
            f"base_seconds must be positive, got {base_seconds}"
        )
    if engine == "auto":
        engine = "vectorized" if HAVE_NUMPY else "scalar"
    if engine == "vectorized" and not HAVE_NUMPY:
        engine = "scalar"  # the stdlib fallback: same draws, loop speed

    pool = policy.pool_for(exam)
    table = ItemInformationTable.build(
        pool,
        grid_points=policy.grid_points,
        grid_half_width=policy.grid_half_width,
        prior_sd=policy.prior_sd,
    )
    item_ids = table.item_ids
    width = len(item_ids)
    specs = exam.question_specs()
    spec_of = {
        item.item_id: index
        for index, item in enumerate(exam.analyzable_items())
    }
    draws = [_predraw(learner, seed, width, sigma) for learner in learners]

    with obs.span(
        "sim.adaptive",
        engine=engine,
        learners=len(learners),
        pool=width,
    ):
        if engine == "vectorized":
            sequences, flags, trajectories, thetas, errors = (
                _drive_numpy(table, policy, pool, learners, draws)
            )
        else:
            sequences, flags, trajectories, thetas, errors = (
                _drive_scalar(table, policy, pool, learners, draws)
            )
    obs.count("sim.adaptive.learners", len(learners))

    # decode sequences into analysis-ready objects: selections for
    # administered items, omissions (None) everywhere else
    distractors, bounds = _distractor_tables(specs, spec_of, item_ids, pool)
    column = table._index
    responses: List[ExamineeResponses] = []
    answer_times: List[List[float]] = []
    reasons: List[str] = []
    for index, learner in enumerate(learners):
        _, u_distract, time_noise = draws[index]
        selections: List[Optional[str]] = [None] * len(specs)
        commits: List[float] = []
        elapsed = 0.0
        for item_id, correct in zip(sequences[index], flags[index]):
            col = column[item_id]
            spec = specs[spec_of[item_id]]
            if correct or distractors[col] is None:
                chosen = spec.correct
            else:
                cumulative = bounds[col]
                draw = u_distract[col] * cumulative[-1]
                picked = min(
                    bisect_right(cumulative, draw), len(cumulative) - 1
                )
                chosen = distractors[col][picked]
            selections[spec_of[item_id]] = chosen
            gap = max(-1.0, min(1.0, pool[item_id].b - learner.ability))
            elapsed += (
                base_seconds
                * learner.pace
                * math.exp(0.25 * gap)
                * time_noise[col]
            )
            commits.append(elapsed)
        responses.append(
            ExamineeResponses.of(
                learner.learner_id,
                selections,
                duration_seconds=commits[-1] if commits else 0.0,
            )
        )
        answer_times.append(commits)
        count = len(sequences[index])
        if count >= policy.max_items:
            reasons.append("max_items")
        elif count >= width:
            reasons.append("pool_exhausted")
        else:
            reasons.append("se_target")
    return AdaptiveCohortData(
        specs=specs,
        responses=responses,
        answer_times=answer_times,
        item_sequences=sequences,
        response_flags=flags,
        trajectories=trajectories,
        thetas=thetas,
        standard_errors=errors,
        stop_reasons=reasons,
    )


def _drive_scalar(table, policy, pool, learners, draws):
    """The stdlib engine: one :class:`AdaptiveSession` per learner."""
    from repro.adaptive.online import AdaptiveSession

    column = table._index
    sequences: List[List[str]] = []
    flags: List[List[bool]] = []
    trajectories: List[List[Tuple[float, float]]] = []
    thetas: List[float] = []
    errors: List[float] = []
    for index, learner in enumerate(learners):
        u_correct = draws[index][0]
        session = AdaptiveSession.for_exam(table, policy)
        while True:
            item_id = session.next_item()
            if item_id is None:
                break
            p = probability_correct(learner.ability, pool[item_id])
            session.record(item_id, u_correct[column[item_id]] < p)
        sequences.append(list(session.administered))
        flags.append(list(session.responses))
        trajectories.append(list(session.trajectory))
        thetas.append(session.theta)
        errors.append(session.standard_error)
    return sequences, flags, trajectories, thetas, errors


def _drive_numpy(table, policy, pool, learners, draws):
    """The array engine: the whole cohort advances one step per pass."""
    np = _np
    count = len(learners)
    width = len(table.item_ids)
    grid = np.asarray(table.grid)
    info = np.asarray(table.info)  # grid x items
    logp_t = np.asarray(table.logp).T  # items x grid (gather by column)
    logq_t = np.asarray(table.logq).T
    posterior = np.tile(np.asarray(table.log_prior), (count, 1))
    administered = np.zeros((count, width), dtype=bool)
    steps = np.zeros(count, dtype=np.int64)
    ability = np.asarray([learner.ability for learner in learners])
    u_correct = np.asarray([entry[0] for entry in draws])
    # P(correct | true ability) over the whole (learner, item) grid,
    # the same clipped 3PL the scalar probability_correct computes
    a = np.asarray([pool[item_id].a for item_id in table.item_ids])
    b = np.asarray([pool[item_id].b for item_id in table.item_ids])
    c = np.asarray([pool[item_id].c for item_id in table.item_ids])
    z = np.clip(a[None, :] * (ability[:, None] - b[None, :]), -700.0, 700.0)
    p_true = c + (1.0 - c) / (1.0 + np.exp(-z))

    def eap(matrix):
        peak = matrix.max(axis=1, keepdims=True)
        weights = np.exp(matrix - peak)
        total = weights.sum(axis=1)
        mean = (weights @ grid) / total
        spread = grid[None, :] - mean[:, None]
        variance = (weights * spread**2).sum(axis=1) / total
        return mean, np.sqrt(np.maximum(variance, 1e-12))

    theta, se = eap(posterior)
    lo, step_size = table._lo, table._step
    last = len(table.grid) - 1
    sequences: List[List[str]] = [[] for _ in range(count)]
    flags: List[List[bool]] = [[] for _ in range(count)]
    trajectories: List[List[Tuple[float, float]]] = [
        [] for _ in range(count)
    ]
    active = np.ones(count, dtype=bool)
    while active.any():
        rows = np.nonzero(active)[0]
        k = np.rint((theta[rows] - lo) / step_size).astype(np.int64)
        np.clip(k, 0, last, out=k)
        candidates = info[k]  # active x items
        candidates = np.where(administered[rows], -np.inf, candidates)
        # first max == the table's strict-> scan over sorted item ids
        chosen = candidates.argmax(axis=1)
        correct = u_correct[rows, chosen] < p_true[rows, chosen]
        posterior[rows] += np.where(
            correct[:, None], logp_t[chosen], logq_t[chosen]
        )
        administered[rows, chosen] = True
        steps[rows] += 1
        new_theta, new_se = eap(posterior[rows])
        theta[rows] = new_theta
        se[rows] = new_se
        for offset, learner_row in enumerate(rows):
            sequences[learner_row].append(table.item_ids[chosen[offset]])
            flags[learner_row].append(bool(correct[offset]))
            trajectories[learner_row].append(
                (float(new_theta[offset]), float(new_se[offset]))
            )
        stopped = (
            (steps[rows] >= policy.max_items)
            | (steps[rows] >= width)
            | ((steps[rows] >= policy.min_items)
               & (se[rows] <= policy.se_target))
        )
        active[rows[stopped]] = False
    return (
        sequences,
        flags,
        trajectories,
        theta.tolist(),
        se.tolist(),
    )
