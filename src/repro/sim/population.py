"""Synthetic learner populations.

Cohorts are drawn with seeded RNGs so every bench and test run is
reproducible.  Abilities follow a normal distribution (the standard IRT
assumption); pace multipliers follow a lognormal so a few learners are
notably slow, as in real classes.
"""

from __future__ import annotations

import random
from typing import List

from repro.core.errors import AnalysisError
from repro.sim.learner_model import SimulatedLearner

__all__ = ["make_population", "ability_grid"]


def make_population(
    size: int,
    mean_ability: float = 0.0,
    sd_ability: float = 1.0,
    seed: int = 0,
    id_prefix: str = "sim",
) -> List[SimulatedLearner]:
    """Draw a cohort of ``size`` learners with Normal(mean, sd) abilities."""
    if size < 1:
        raise AnalysisError(f"population size must be positive, got {size}")
    if sd_ability < 0:
        raise AnalysisError(f"ability sd must be non-negative, got {sd_ability}")
    rng = random.Random(seed)
    learners = []
    for index in range(size):
        ability = rng.gauss(mean_ability, sd_ability)
        pace = rng.lognormvariate(0.0, 0.25)
        learners.append(
            SimulatedLearner(
                learner_id=f"{id_prefix}-{index:04d}",
                ability=ability,
                pace=pace,
            )
        )
    return learners


def ability_grid(
    low: float = -3.0, high: float = 3.0, steps: int = 13
) -> List[float]:
    """Evenly spaced abilities, for sweeps and CAT evaluation."""
    if steps < 2:
        raise AnalysisError(f"need at least 2 grid steps, got {steps}")
    if high <= low:
        raise AnalysisError(f"grid bounds must satisfy low < high")
    width = (high - low) / (steps - 1)
    return [low + index * width for index in range(steps)]
