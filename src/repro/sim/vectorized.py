"""Vectorized cohort simulation — :mod:`repro.sim` at array speed.

:func:`repro.sim.workloads.simulate_sitting_data` samples every selection
and response time in a per-learner, per-item Python loop and materializes
one :class:`~repro.core.question_analysis.ExamineeResponses` object plus
string lists per learner — object-at-a-time generation that cannot feed
the roadmap's million-learner workloads.  This module generates a whole
cohort's sitting as arrays instead:

* 3PL correctness is one vectorized logistic over the ``(N, Q)``
  ability/difficulty grid;
* distractor draws go through per-question cumulative-attraction tables
  and ``searchsorted`` (a zero-attraction distractor is structurally
  unreachable — its cumulative bound is flat, so no draw lands on it);
* omissions are a mask applied after selection, so ``omit_rate`` is
  honored exactly in expectation;
* lognormal item times compose into cumulative commit times with one
  ``cumsum``;

all from one seeded :class:`numpy.random.Generator`.  The result is a
:class:`VectorizedSittingData`: option *codes* (the columnar engine's
native encoding) plus scores and commit times, which flow straight into
:meth:`repro.core.columnar.ResponseMatrix.from_arrays` — per-learner
Python objects are only materialized if a legacy consumer asks for
``.responses``.

Vectorized draws cannot be bit-identical to the scalar engine's
``random.Random`` stream (different generators, different draw order), so
equivalence is *distributional*, enforced by
``tests/sim/test_vectorized.py``: per-item P, option-choice frequencies,
score moments, and time medians agree within tight tolerances on the
same parameters.  Determinism under a fixed seed is exact.

A pure-stdlib fallback keeps every entry point working on no-numpy
installs (same array-native outputs, scalar-speed generation), and
:func:`simulate_sharded` streams arbitrarily large cohorts through a
:class:`~repro.core.columnar.ResponseMatrix` or
:class:`~repro.core.columnar.LiveCohortAnalysis` in bounded-memory
shards, optionally fanning generation out across a process pool.
"""

from __future__ import annotations

import math
import random
from bisect import bisect_right
from dataclasses import dataclass
from itertools import accumulate
from typing import Callable, List, Mapping, Optional, Sequence, Tuple

from repro import obs
from repro.core.columnar import SKIP, ResponseMatrix
from repro.core.errors import AnalysisError
from repro.core.grouping import GroupSplit
from repro.core.question_analysis import ExamineeResponses, QuestionSpec
from repro.exams.exam import Exam
from repro.sim.learner_model import (
    ItemParameters,
    SimulatedLearner,
    probability_correct,
)

try:  # numpy is the fast path; the stdlib fallback stays fully working
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None

#: Whether the vectorized backend is available (else the stdlib fallback
#: generates the same array-native outputs at scalar speed).
HAVE_NUMPY = _np is not None

#: Lognormal spread of the per-item time model (matches the scalar
#: :func:`repro.sim.response_time.sample_item_time` default).
DEFAULT_TIME_SIGMA = 0.35

#: Lognormal spread of learner pace in generated shard populations
#: (matches :func:`repro.sim.population.make_population`).
_PACE_SIGMA = 0.25

__all__ = [
    "HAVE_NUMPY",
    "VectorizedSittingData",
    "SimShard",
    "simulate_sitting_arrays",
    "simulate_sharded",
]


def _check_common(seed: int, base_seconds: float, omit_rate: float, sigma: float) -> None:
    if not isinstance(seed, int) or seed < 0:
        raise AnalysisError(f"vectorized sim seed must be a non-negative int, got {seed!r}")
    if base_seconds <= 0:
        raise AnalysisError(f"base_seconds must be positive, got {base_seconds}")
    if not 0.0 <= omit_rate < 1.0:
        raise AnalysisError(f"omit_rate must be in [0, 1), got {omit_rate}")
    if sigma < 0:
        raise AnalysisError(f"sigma must be non-negative, got {sigma}")


class _ItemTables:
    """Per-question parameter tables shared by both generation backends.

    For each question: the correct option's code, the distractor codes in
    option order, and the *cumulative* attraction bounds those codes are
    drawn against.  ``None`` entries mean "no drawable distractor" (a
    single-option item, or every attraction zero) — the sampler keeps the
    key, exactly like the scalar engine.
    """

    def __init__(
        self, specs: Sequence[QuestionSpec], params: Sequence[ItemParameters]
    ) -> None:
        self.specs = list(specs)
        self.params = list(params)
        self.correct_codes: List[int] = []
        self.distractor_codes: List[Optional[List[int]]] = []
        self.distractor_bounds: List[Optional[List[float]]] = []
        for spec, param in zip(self.specs, self.params):
            if spec.correct not in spec.options:
                raise AnalysisError(
                    f"correct option {spec.correct!r} not in {tuple(spec.options)}"
                )
            self.correct_codes.append(spec.options.index(spec.correct))
            codes = [
                index
                for index, option in enumerate(spec.options)
                if option != spec.correct
            ]
            weights = [
                param.attractions.get(spec.options[index], 1.0)
                for index in codes
            ]
            bounds = list(accumulate(weights))
            if not codes or bounds[-1] <= 0:
                self.distractor_codes.append(None)
                self.distractor_bounds.append(None)
            else:
                self.distractor_codes.append(codes)
                self.distractor_bounds.append(bounds)
        if _np is not None:
            self._np_correct = _np.array(self.correct_codes, dtype=_np.uint8)
            self._np_a = _np.array([p.a for p in self.params], dtype=_np.float64)
            self._np_b = _np.array([p.b for p in self.params], dtype=_np.float64)
            self._np_c = _np.array([p.c for p in self.params], dtype=_np.float64)
            self._np_dist = [
                None if codes is None else _np.array(codes, dtype=_np.uint8)
                for codes in self.distractor_codes
            ]
            self._np_bounds = [
                None if bounds is None else _np.asarray(bounds, dtype=_np.float64)
                for bounds in self.distractor_bounds
            ]

    def __getstate__(self) -> dict:
        # shards travel to pool workers as (specs, params); the derived
        # arrays are cheap to rebuild and may be numpy-shaped, so strip
        # everything but the construction inputs
        return {"specs": self.specs, "params": self.params}

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["specs"], state["params"])


class VectorizedSittingData:
    """Array-native sitting data — duck-compatible with
    :class:`~repro.sim.workloads.SimulatedSittingData`.

    The cohort lives as the columnar engine's own encoding: ``codes`` is
    the row-major ``N x Q`` byte buffer of option indices (:data:`SKIP`
    for omissions), ``scores`` the per-learner totals, and commit times a
    single ``(N, Q)`` array.  ``analyze()`` hands the buffer to
    :meth:`ResponseMatrix.from_arrays` — no per-learner objects exist
    anywhere on that path.  The ``responses`` / ``answer_times``
    properties materialize the legacy object shapes lazily for consumers
    that still want them (the CLI report builder, the reference engine).
    """

    def __init__(
        self,
        specs: Sequence[QuestionSpec],
        examinee_ids: Sequence[str],
        codes: bytes,
        commit_times,
        scores: List[int],
    ) -> None:
        self.specs = list(specs)
        self.examinee_ids = list(examinee_ids)
        self.codes = codes
        self.scores = scores
        self._commit = commit_times
        self._responses: Optional[List[ExamineeResponses]] = None
        self._answer_times: Optional[List[List[float]]] = None

    def __len__(self) -> int:
        return len(self.examinee_ids)

    @property
    def width(self) -> int:
        return len(self.specs)

    @property
    def durations(self) -> List[float]:
        """Total sitting duration per examinee (last commit time)."""
        if _np is not None and isinstance(self._commit, _np.ndarray):
            if self._commit.shape[1] == 0:
                return [0.0] * len(self.examinee_ids)
            return self._commit[:, -1].tolist()
        return [times[-1] if times else 0.0 for times in self._commit]

    @property
    def answer_times(self) -> List[List[float]]:
        """Per-examinee commit-time series (materialized lazily)."""
        if self._answer_times is None:
            if _np is not None and isinstance(self._commit, _np.ndarray):
                self._answer_times = self._commit.tolist()
            else:
                self._answer_times = self._commit
        return self._answer_times

    @property
    def responses(self) -> List[ExamineeResponses]:
        """Per-learner objects, decoded from the code buffer on first use."""
        if self._responses is None:
            width = self.width
            options = [spec.options for spec in self.specs]
            durations = self.durations
            decoded: List[ExamineeResponses] = []
            for index, identifier in enumerate(self.examinee_ids):
                row = self.codes[index * width : (index + 1) * width]
                selections = tuple(
                    None if code == SKIP else options[question][code]
                    for question, code in enumerate(row)
                )
                decoded.append(
                    ExamineeResponses(identifier, selections, durations[index])
                )
            self._responses = decoded
        return self._responses

    def to_matrix(self) -> ResponseMatrix:
        """The cohort as a freshly built columnar :class:`ResponseMatrix`."""
        return ResponseMatrix.from_arrays(
            self.specs, self.examinee_ids, self.codes
        )

    def analyze(
        self,
        split: Optional[GroupSplit] = None,
        engine: str = "columnar",
        policy=None,
        spread_threshold: Optional[float] = None,
    ):
        """Run the §4.1 analysis; the columnar engine consumes the code
        buffer directly (no object materialization).

        ``policy`` and ``spread_threshold`` forward to the engine like
        :meth:`SimulatedSittingData.analyze` (kwargs-threading audit:
        they were previously only reachable on the object path).
        """
        from repro.core.rules import DEFAULT_SPREAD_THRESHOLD
        from repro.core.signals import DEFAULT_POLICY

        policy = policy if policy is not None else DEFAULT_POLICY
        spread_threshold = (
            spread_threshold
            if spread_threshold is not None
            else DEFAULT_SPREAD_THRESHOLD
        )
        if engine == "columnar":
            return self.to_matrix().analyze(
                split=split if split is not None else GroupSplit(),
                policy=policy,
                spread_threshold=spread_threshold,
            )
        from repro.core.question_analysis import analyze_cohort

        return analyze_cohort(
            self.responses,
            self.specs,
            split=split if split is not None else GroupSplit(),
            policy=policy,
            spread_threshold=spread_threshold,
            engine=engine,
        )


# --------------------------------------------------------------------------
# Generation backends
# --------------------------------------------------------------------------


def _generate_numpy(
    tables: _ItemTables,
    abilities,
    paces,
    rng,
    base_seconds: float,
    omit_rate: float,
    sigma: float,
):
    """One cohort as arrays: codes (bytes), scores, (N, Q) commit times."""
    count = len(abilities)
    width = len(tables.specs)
    theta = _np.asarray(abilities, dtype=_np.float64)
    pace = _np.asarray(paces, dtype=_np.float64)
    if width == 0:
        return b"", [0] * count, _np.zeros((count, 0))
    # P(correct | theta) on the whole grid; clip the exponent like the
    # scalar probability_correct guards math.exp
    z = _np.clip(
        tables._np_a[None, :] * (theta[:, None] - tables._np_b[None, :]),
        -700.0,
        700.0,
    )
    p_correct = tables._np_c + (1.0 - tables._np_c) / (1.0 + _np.exp(-z))
    # fixed draw order: omit grid, correctness grid, distractor grid,
    # time grid — the stream depends only on (N, Q, seed)
    u_omit = rng.random((count, width))
    correct_mask = rng.random((count, width)) < p_correct
    u_dist = rng.random((count, width))
    codes = _np.empty((count, width), dtype=_np.uint8)
    codes[:] = tables._np_correct[None, :]
    for question in range(width):
        dist_codes = tables._np_dist[question]
        if dist_codes is None:  # nothing drawable: the key stands
            continue
        bounds = tables._np_bounds[question]
        rows = ~correct_mask[:, question]
        if not rows.any():
            continue
        draws = u_dist[rows, question] * bounds[-1]
        picked = _np.searchsorted(bounds, draws, side="right")
        # a draw rounding up to exactly bounds[-1] would index one past
        # the end; clamp to the final distractor (its true share)
        _np.minimum(picked, len(bounds) - 1, out=picked)
        codes[rows, question] = dist_codes[picked]
    if omit_rate:
        codes[u_omit < omit_rate] = SKIP
    scores = (codes == tables._np_correct[None, :]).sum(axis=1).tolist()
    gap = _np.clip(tables._np_b[None, :] - theta[:, None], -1.0, 1.0)
    times = (
        base_seconds
        * pace[:, None]
        * _np.exp(0.25 * gap)
        * _np.exp(rng.normal(0.0, sigma, (count, width)))
    )
    return codes.tobytes(), scores, _np.cumsum(times, axis=1)


def _generate_python(
    tables: _ItemTables,
    abilities,
    paces,
    rng: random.Random,
    base_seconds: float,
    omit_rate: float,
    sigma: float,
):
    """Stdlib fallback: same outputs and sampling semantics, loop speed."""
    width = len(tables.specs)
    codes = bytearray()
    scores: List[int] = []
    commits: List[List[float]] = []
    for ability, pace in zip(abilities, paces):
        score = 0
        for question in range(width):
            params = tables.params[question]
            if omit_rate and rng.random() < omit_rate:
                codes.append(SKIP)
                continue
            if rng.random() < probability_correct(ability, params):
                codes.append(tables.correct_codes[question])
                score += 1
                continue
            dist_codes = tables.distractor_codes[question]
            if dist_codes is None:
                codes.append(tables.correct_codes[question])
                score += 1
                continue
            bounds = tables.distractor_bounds[question]
            draw = rng.random() * bounds[-1]
            picked = min(bisect_right(bounds, draw), len(bounds) - 1)
            codes.append(dist_codes[picked])
        scores.append(score)
        elapsed = 0.0
        row_times: List[float] = []
        for question in range(width):
            params = tables.params[question]
            gap = max(-1.0, min(1.0, params.b - ability))
            factor = math.exp(gap * 0.25)
            elapsed += (
                base_seconds
                * pace
                * factor
                * rng.lognormvariate(0.0, sigma)
            )
            row_times.append(elapsed)
        commits.append(row_times)
    return bytes(codes), scores, commits


def _exam_tables(
    exam: Exam, parameters: Mapping[str, ItemParameters]
) -> Tuple[List[QuestionSpec], List[ItemParameters]]:
    specs = exam.question_specs()
    default = ItemParameters()
    params = [
        parameters.get(item.item_id, default)
        for item in exam.analyzable_items()
    ]
    return specs, params


def simulate_sitting_arrays(
    exam: Exam,
    parameters: Mapping[str, ItemParameters],
    learners: Sequence[SimulatedLearner],
    seed: int = 0,
    base_seconds: float = 45.0,
    omit_rate: float = 0.0,
    sigma: float = DEFAULT_TIME_SIGMA,
) -> VectorizedSittingData:
    """Simulate a whole cohort's sitting as arrays (the batch engine).

    The drop-in vectorized counterpart of
    :func:`repro.sim.workloads.simulate_sitting_data` — same exam,
    parameters, and learner inputs, but the output is array-native
    (:class:`VectorizedSittingData`) and generation is one numpy pass.
    Runs are deterministic under a fixed seed; they are *distributionally*
    (not bit-) equivalent to the scalar engine on the same parameters.
    """
    _check_common(seed, base_seconds, omit_rate, sigma)
    specs, params = _exam_tables(exam, parameters)
    tables = _ItemTables(specs, params)
    ids = [learner.learner_id for learner in learners]
    abilities = [learner.ability for learner in learners]
    paces = [learner.pace for learner in learners]
    backend = "stdlib" if _np is None else "numpy"
    with obs.span(
        "sim.generate",
        engine="vectorized",
        backend=backend,
        learners=len(ids),
        questions=len(specs),
    ):
        # the whole cohort is one generation unit — a single shard in
        # the sharded driver's terms, so profiles of either path show
        # the same span shape
        with obs.span("sim.shard", index=0, learners=len(ids)):
            if _np is None:
                codes, scores, commits = _generate_python(
                    tables, abilities, paces, random.Random(seed),
                    base_seconds, omit_rate, sigma,
                )
            else:
                codes, scores, commits = _generate_numpy(
                    tables, abilities, paces, _np.random.default_rng(seed),
                    base_seconds, omit_rate, sigma,
                )
    obs.count("sim.shards.generated")
    obs.count("sim.learners.generated", len(ids))
    return VectorizedSittingData(specs, ids, codes, commits, scores)


# --------------------------------------------------------------------------
# Sharded streaming driver
# --------------------------------------------------------------------------


@dataclass
class SimShard:
    """One generated chunk of a sharded cohort.

    Carries only bounded, array-native state: ids, the code buffer, the
    per-learner scores, and total sitting durations (full commit-time
    matrices are deliberately not kept — at 1M x 50 they alone would be
    ~400 MB).
    """

    start: int
    examinee_ids: List[str]
    codes: bytes
    scores: List[int]
    durations: List[float]


def _generate_shard(task: tuple) -> SimShard:
    """Pool-friendly worker: one task tuple in, one :class:`SimShard` out.

    Each shard draws from its own generator keyed on ``(seed, index)``,
    so the serial and process-pool drivers produce identical cohorts.
    """
    (
        specs,
        params,
        start,
        count,
        seed,
        shard_index,
        base_seconds,
        omit_rate,
        sigma,
        mean_ability,
        sd_ability,
        id_prefix,
    ) = task
    tables = _ItemTables(specs, params)
    ids = [f"{id_prefix}-{start + offset:07d}" for offset in range(count)]
    if _np is None:
        rng = random.Random((seed + 1) * 0x9E3779B1 + shard_index)
        abilities = [rng.gauss(mean_ability, sd_ability) for _ in range(count)]
        paces = [rng.lognormvariate(0.0, _PACE_SIGMA) for _ in range(count)]
        codes, scores, commits = _generate_python(
            tables, abilities, paces, rng, base_seconds, omit_rate, sigma
        )
        durations = [row[-1] if row else 0.0 for row in commits]
    else:
        rng = _np.random.default_rng([seed, shard_index])
        abilities = rng.normal(mean_ability, sd_ability, count)
        paces = rng.lognormal(0.0, _PACE_SIGMA, count)
        codes, scores, commits = _generate_numpy(
            tables, abilities, paces, rng, base_seconds, omit_rate, sigma
        )
        durations = (
            commits[:, -1].tolist() if commits.shape[1] else [0.0] * count
        )
    return SimShard(start, ids, codes, scores, durations)


def simulate_sharded(
    exam: Exam,
    parameters: Mapping[str, ItemParameters],
    size: int,
    *,
    shard_size: int = 10_000,
    seed: int = 0,
    base_seconds: float = 45.0,
    omit_rate: float = 0.0,
    sigma: float = DEFAULT_TIME_SIGMA,
    mean_ability: float = 0.0,
    sd_ability: float = 1.0,
    id_prefix: str = "shard",
    workers: Optional[int] = None,
    into=None,
    on_shard: Optional[Callable[[SimShard], None]] = None,
):
    """Stream a ``size``-learner cohort through the analysis in shards.

    Generates the population *and* its responses ``shard_size`` learners
    at a time (each shard seeded independently from ``(seed, index)``)
    and folds every shard into ``into`` via ``extend_codes`` — a
    :class:`ResponseMatrix` (default: a fresh one, returned) or a
    :class:`LiveCohortAnalysis`.  Peak memory is bounded by one shard's
    working set plus the 1-byte-per-cell matrix: no full-cohort list of
    per-learner Python objects ever exists, which is what lets a
    1M x 50 cohort fit where the object pipeline cannot.

    ``workers`` > 1 fans shard *generation* out across a process pool
    (ingestion stays in-process and ordered); results are identical to
    the serial driver because shard seeding is positional.  ``on_shard``
    observes each shard after ingestion — for progress reporting or
    side-channel statistics (e.g. accumulating duration quantiles).
    """
    if size < 1:
        raise AnalysisError(f"cohort size must be positive, got {size}")
    if shard_size < 1:
        raise AnalysisError(f"shard_size must be positive, got {shard_size}")
    if sd_ability < 0:
        raise AnalysisError(f"ability sd must be non-negative, got {sd_ability}")
    _check_common(seed, base_seconds, omit_rate, sigma)
    specs, params = _exam_tables(exam, parameters)
    _ItemTables(specs, params)  # validate parameters before any work
    sink = into if into is not None else ResponseMatrix(specs)
    if getattr(sink, "width", len(specs)) != len(specs):
        raise AnalysisError(
            f"sink expects {sink.width} questions; exam has {len(specs)}"
        )
    tasks = [
        (
            specs,
            params,
            start,
            min(shard_size, size - start),
            seed,
            index,
            base_seconds,
            omit_rate,
            sigma,
            mean_ability,
            sd_ability,
            id_prefix,
        )
        for index, start in enumerate(range(0, size, shard_size))
    ]
    with obs.span(
        "sim.sharded",
        learners=size,
        questions=len(specs),
        shards=len(tasks),
        workers=workers or 1,
    ):
        if workers is not None and workers > 1 and len(tasks) > 1:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(max_workers=workers) as pool:
                shards = pool.map(_generate_shard, tasks)
                for index, shard in enumerate(shards):
                    # generation ran in a worker process; this span times
                    # the in-process half (receive + ingest) of the shard
                    with obs.span(
                        "sim.shard", index=index, learners=len(shard.examinee_ids)
                    ):
                        sink.extend_codes(shard.examinee_ids, shard.codes)
                        if on_shard is not None:
                            on_shard(shard)
                    obs.count("sim.shards.generated")
        else:
            for index, task in enumerate(tasks):
                with obs.span(
                    "sim.shard", index=index, learners=task[3]
                ):
                    shard = _generate_shard(task)
                    sink.extend_codes(shard.examinee_ids, shard.codes)
                    if on_shard is not None:
                        on_shard(shard)
                obs.count("sim.shards.generated")
    obs.count("sim.learners.generated", size)
    obs.gauge("sim.cohort_size", size)
    return sink
