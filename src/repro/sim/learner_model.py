"""Simulated learner response model.

The paper evaluated its analysis on real classes; this reproduction
substitutes a standard psychometric simulation (see DESIGN.md): each
learner has an ability θ, each item has 2PL/3PL parameters
(discrimination ``a``, difficulty ``b``, guessing ``c``), and

    P(correct | θ) = c + (1 − c) / (1 + exp(−a (θ − b)))

When the sampled response is incorrect on a choice item, a distractor is
drawn from the item's attraction weights — which lets scenarios construct
items that reproduce each of the paper's four rule patterns (a dead
distractor, an over-attractive wrong option, uniform low-group guessing).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from itertools import accumulate
from typing import Mapping, Optional, Sequence

from repro.core.errors import AnalysisError

__all__ = ["ItemParameters", "SimulatedLearner", "probability_correct", "sample_selection"]


@dataclass(frozen=True)
class ItemParameters:
    """IRT parameters plus distractor attractions for one item.

    ``attractions`` weights the *wrong* options for learners who miss the
    item; omitted options get weight 1.  A zero weight makes a distractor
    that attracts nobody (the paper's Rule 1 pattern).
    """

    a: float = 1.0
    b: float = 0.0
    c: float = 0.0
    attractions: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.a <= 0:
            raise AnalysisError(f"discrimination a must be positive, got {self.a}")
        if not 0.0 <= self.c < 1.0:
            raise AnalysisError(f"guessing c must be in [0, 1), got {self.c}")
        if any(weight < 0 for weight in self.attractions.values()):
            raise AnalysisError("attraction weights must be non-negative")


@dataclass(frozen=True)
class SimulatedLearner:
    """One synthetic examinee."""

    learner_id: str
    ability: float
    #: speed multiplier for the response-time model (1.0 = average pace)
    pace: float = 1.0


def probability_correct(ability: float, params: ItemParameters) -> float:
    """The 3PL response probability (2PL when c == 0, 1PL when a == 1)."""
    exponent = -params.a * (ability - params.b)
    # guard math.exp overflow for extreme |exponent|
    if exponent > 700:
        logistic = 0.0
    elif exponent < -700:
        logistic = 1.0
    else:
        logistic = 1.0 / (1.0 + math.exp(exponent))
    return params.c + (1.0 - params.c) * logistic


def sample_selection(
    rng: random.Random,
    learner: SimulatedLearner,
    params: ItemParameters,
    options: Sequence[str],
    correct: str,
    omit_rate: float = 0.0,
) -> Optional[str]:
    """Sample the option a learner selects (None = omitted).

    A correct Bernoulli draw selects the key; otherwise a distractor is
    drawn proportionally to its attraction weight.  If every distractor
    has zero attraction the learner picks the key anyway (there is nothing
    else they would plausibly choose).
    """
    if correct not in options:
        raise AnalysisError(f"correct option {correct!r} not in {options}")
    if not 0.0 <= omit_rate < 1.0:
        raise AnalysisError(f"omit_rate must be in [0, 1), got {omit_rate}")
    if omit_rate and rng.random() < omit_rate:
        return None
    if rng.random() < probability_correct(learner.ability, params):
        return correct
    distractors = [option for option in options if option != correct]
    if not distractors:
        return correct
    weights = [params.attractions.get(option, 1.0) for option in distractors]
    # precompute the cumulative sums once and compare strictly: the draw
    # is scaled by the *accumulated* total (not an independently summed
    # one), so the final distractor keeps its exact share, and `draw <
    # bound` keeps a zero-weight distractor unreachable even when
    # rng.random() returns exactly 0.0 (`draw <= cumulative` at a 0.0
    # bound would have picked it)
    bounds = list(accumulate(weights))
    total = bounds[-1]
    if total <= 0:
        return correct
    draw = rng.random() * total
    for option, bound in zip(distractors, bounds):
        if draw < bound:
            return option
    return distractors[-1]
