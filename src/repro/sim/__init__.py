"""Simulated learners, populations, response times, and workloads — the
synthetic substitute for the paper's real student cohorts (see DESIGN.md
substitution table)."""

from repro.sim.adaptive_cohort import (
    AdaptiveCohortData,
    simulate_adaptive_cohort,
)
from repro.sim.learner_model import (
    ItemParameters,
    SimulatedLearner,
    probability_correct,
    sample_selection,
)
from repro.sim.population import ability_grid, make_population
from repro.sim.response_time import cumulative_answer_times, sample_item_time
from repro.sim.vectorized import (
    SimShard,
    VectorizedSittingData,
    simulate_sharded,
    simulate_sitting_arrays,
)
from repro.sim.workloads import (
    SimulatedSittingData,
    classroom_adaptive_exam,
    classroom_exam,
    classroom_parameters,
    pre_post_cohorts,
    simulate_sitting_data,
)

__all__ = [
    "AdaptiveCohortData",
    "simulate_adaptive_cohort",
    "SimShard",
    "VectorizedSittingData",
    "simulate_sharded",
    "simulate_sitting_arrays",
    "ItemParameters",
    "SimulatedLearner",
    "probability_correct",
    "sample_selection",
    "make_population",
    "ability_grid",
    "sample_item_time",
    "cumulative_answer_times",
    "SimulatedSittingData",
    "simulate_sitting_data",
    "classroom_exam",
    "classroom_adaptive_exam",
    "classroom_parameters",
    "pre_post_cohorts",
]
