"""Response-time model for simulated sittings.

Time-on-item follows the standard lognormal model: harder items (relative
to the learner) take longer, slow-paced learners take longer on
everything.  These times feed the §4.2.1 figure (1) series and the §3.4
Average Time statistic.
"""

from __future__ import annotations

import math
import random
from typing import List

from repro.core.errors import AnalysisError
from repro.sim.learner_model import ItemParameters, SimulatedLearner

__all__ = ["sample_item_time", "cumulative_answer_times"]


def sample_item_time(
    rng: random.Random,
    learner: SimulatedLearner,
    params: ItemParameters,
    base_seconds: float = 45.0,
    sigma: float = 0.35,
) -> float:
    """Seconds spent on one item.

    ``base_seconds`` is the median time an average learner spends on an
    item matched to their ability; difficulty above ability stretches it
    (up to ~2x at a 3-logit gap) and the learner's pace multiplies it.
    """
    if base_seconds <= 0:
        raise AnalysisError(f"base_seconds must be positive, got {base_seconds}")
    if sigma < 0:
        raise AnalysisError(f"sigma must be non-negative, got {sigma}")
    gap = params.b - learner.ability
    difficulty_factor = math.exp(max(-1.0, min(1.0, gap)) * 0.25)
    noise = rng.lognormvariate(0.0, sigma)
    return base_seconds * learner.pace * difficulty_factor * noise


def cumulative_answer_times(item_times: List[float]) -> List[float]:
    """Turn per-item durations into elapsed commit times."""
    elapsed = 0.0
    commits = []
    for duration in item_times:
        if duration < 0:
            raise AnalysisError(f"negative item time: {duration}")
        elapsed += duration
        commits.append(elapsed)
    return commits
