"""SCORM 1.2 run-time API error codes.

The paper (§5.5) notes that SCORM content needs "error handler (ex. error
message transfer, error status record, error dialog)" functions.  These
are the standard AICC/SCORM 1.2 error codes returned by
``LMSGetLastError`` and described by ``LMSGetErrorString``.
"""

from __future__ import annotations

import enum
from typing import Dict

__all__ = ["ScormError", "ERROR_STRINGS"]


class ScormError(enum.IntEnum):
    """The SCORM 1.2 API error code vocabulary."""

    NO_ERROR = 0
    GENERAL_EXCEPTION = 101
    INVALID_ARGUMENT = 201
    ELEMENT_CANNOT_HAVE_CHILDREN = 202
    ELEMENT_NOT_AN_ARRAY = 203
    NOT_INITIALIZED = 301
    NOT_IMPLEMENTED = 401
    INVALID_SET_VALUE = 402
    ELEMENT_IS_READ_ONLY = 403
    ELEMENT_IS_WRITE_ONLY = 404
    INCORRECT_DATA_TYPE = 405


#: Human-readable descriptions, per the SCORM 1.2 RTE specification.
ERROR_STRINGS: Dict[ScormError, str] = {
    ScormError.NO_ERROR: "No error",
    ScormError.GENERAL_EXCEPTION: "General exception",
    ScormError.INVALID_ARGUMENT: "Invalid argument error",
    ScormError.ELEMENT_CANNOT_HAVE_CHILDREN: "Element cannot have children",
    ScormError.ELEMENT_NOT_AN_ARRAY: "Element not an array - cannot have count",
    ScormError.NOT_INITIALIZED: "Not initialized",
    ScormError.NOT_IMPLEMENTED: "Not implemented error",
    ScormError.INVALID_SET_VALUE: "Invalid set value, element is a keyword",
    ScormError.ELEMENT_IS_READ_ONLY: "Element is read only",
    ScormError.ELEMENT_IS_WRITE_ONLY: "Element is write only",
    ScormError.INCORRECT_DATA_TYPE: "Incorrect data type",
}
