"""Course hierarchy and structure (paper §2.2).

"In an e-learning environment, course structure will effect on the
learning resource transformation ... the previous idea is
content-block-sco.  With the AICC nomenclature, the course structure is
divided into two elements."

This module models that hierarchy: a :class:`Course` is a tree of
:class:`Block` nodes (AICC's structural element) whose leaves are
:class:`Sco` assignable units.  The tree maps directly onto a manifest
organization (:func:`course_to_organization`), which is how a course
structure travels inside a content package.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Union

from repro.core.errors import AuthoringError, NotFoundError
from repro.scorm.manifest import ManifestItem, Organization

__all__ = ["Sco", "Block", "Course", "course_to_organization", "organization_to_course"]


@dataclass
class Sco:
    """An assignable unit: the launchable leaf of the course tree."""

    sco_id: str
    title: str
    resource_id: str = ""
    #: mastery score (percent) the learner must reach, if any
    mastery_score: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.sco_id:
            raise AuthoringError("sco_id must be non-empty")
        if self.mastery_score is not None and not 0 <= self.mastery_score <= 100:
            raise AuthoringError(
                f"mastery score must be a percent, got {self.mastery_score}"
            )


@dataclass
class Block:
    """A structural grouping: AICC's "block" element (chapter, unit, ...)."""

    block_id: str
    title: str
    children: List[Union["Block", Sco]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.block_id:
            raise AuthoringError("block_id must be non-empty")

    def add(self, child: Union["Block", Sco]) -> "Block":
        """Append a child block or SCO; returns self for chaining."""
        self.children.append(child)
        return self

    def walk(self) -> Iterator[Union["Block", Sco]]:
        """Depth-first traversal of the subtree (excluding self)."""
        for child in self.children:
            yield child
            if isinstance(child, Block):
                yield from child.walk()


@dataclass
class Course:
    """The content → block → SCO hierarchy of §2.2."""

    course_id: str
    title: str
    root: Block = field(default_factory=lambda: Block(block_id="root", title="root"))

    def __post_init__(self) -> None:
        if not self.course_id:
            raise AuthoringError("course_id must be non-empty")

    def scos(self) -> List[Sco]:
        """Every assignable unit in document order."""
        return [node for node in self.root.walk() if isinstance(node, Sco)]

    def blocks(self) -> List[Block]:
        """Every structural block in document order."""
        return [node for node in self.root.walk() if isinstance(node, Block)]

    def find_sco(self, sco_id: str) -> Sco:
        """The SCO with the given id; raises NotFoundError otherwise."""
        for sco in self.scos():
            if sco.sco_id == sco_id:
                return sco
        raise NotFoundError(f"course {self.course_id!r} has no SCO {sco_id!r}")

    def validate(self) -> None:
        """Unique ids across blocks and SCOs; at least one SCO."""
        seen: set = set()
        problems: List[str] = []
        for node in self.root.walk():
            identifier = (
                node.sco_id if isinstance(node, Sco) else node.block_id
            )
            if identifier in seen:
                problems.append(f"duplicate identifier {identifier!r}")
            seen.add(identifier)
        if not self.scos():
            problems.append("course has no assignable units")
        if problems:
            raise AuthoringError(
                f"course {self.course_id!r} invalid: " + "; ".join(problems)
            )


def course_to_organization(course: Course) -> Organization:
    """Map a course tree onto a manifest ``<organization>``."""
    course.validate()
    return Organization(
        identifier=f"org-{course.course_id}",
        title=course.title,
        items=[_node_to_item(child) for child in course.root.children],
    )


def _node_to_item(node: Union[Block, Sco]) -> ManifestItem:
    if isinstance(node, Sco):
        return ManifestItem(
            identifier=f"item-{node.sco_id}",
            title=node.title,
            identifierref=node.resource_id or f"res-{node.sco_id}",
        )
    return ManifestItem(
        identifier=f"item-{node.block_id}",
        title=node.title,
        children=[_node_to_item(child) for child in node.children],
    )


def organization_to_course(organization: Organization) -> Course:
    """Rebuild a course tree from a manifest organization.

    Items with an ``identifierref`` become SCOs; items with children
    become blocks.  Identifier prefixes written by
    :func:`course_to_organization` are stripped when present.
    """
    course_id = organization.identifier
    if course_id.startswith("org-"):
        course_id = course_id[len("org-"):]
    course = Course(course_id=course_id, title=organization.title)
    for item in organization.items:
        course.root.add(_item_to_node(item))
    return course


def _item_to_node(item: ManifestItem) -> Union[Block, Sco]:
    identifier = item.identifier
    if identifier.startswith("item-"):
        identifier = identifier[len("item-"):]
    if item.identifierref is not None:
        return Sco(
            sco_id=identifier,
            title=item.title,
            resource_id=item.identifierref,
        )
    block = Block(block_id=identifier, title=item.title)
    for child in item.children:
        block.add(_item_to_node(child))
    return block
