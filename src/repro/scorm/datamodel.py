"""The SCORM 1.2 CMI data model (paper §2.4, §5.5).

The paper's Run-Time Environment contains a "data model" the API
functions read and write: "learner record, learner progress, learner
status".  This module implements the SCORM 1.2 ``cmi.*`` tree with the
element semantics the specification defines:

* read-only elements (``cmi.core.student_id``, ...) reject writes;
* write-only elements (``cmi.core.exit``, ``cmi.core.session_time``)
  reject reads;
* ``_children`` pseudo-elements list a branch's children;
* ``_count`` pseudo-elements report collection sizes;
* vocabulary-typed elements (``lesson_status``, ``credit``, ...) validate
  their values;
* ``cmi.interactions.n.*`` and ``cmi.objectives.n.*`` collections grow by
  writing index ``n == count``.

The model is deliberately a faithful subset: the elements SCORM 1.2
declares mandatory plus the interactions/objectives collections the
assessment system needs for answer tracking.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.scorm.errors import ScormError

__all__ = ["CmiDataModel", "CMI_VOCABULARIES"]

#: Vocabularies for the enumerated CMI elements (SCORM 1.2 §3.4).
CMI_VOCABULARIES: Dict[str, Tuple[str, ...]] = {
    "cmi.core.lesson_status": (
        "passed",
        "completed",
        "failed",
        "incomplete",
        "browsed",
        "not attempted",
    ),
    "cmi.core.credit": ("credit", "no-credit"),
    "cmi.core.entry": ("ab-initio", "resume", ""),
    "cmi.core.exit": ("time-out", "suspend", "logout", ""),
    "cmi.interactions.n.type": (
        "true-false",
        "choice",
        "fill-in",
        "matching",
        "performance",
        "sequencing",
        "likert",
        "numeric",
    ),
    "cmi.interactions.n.result": (
        "correct",
        "wrong",
        "unanticipated",
        "neutral",
    ),
}

_TIMESPAN_RE = re.compile(r"^\d{2,4}:\d{2}:\d{2}(\.\d{1,2})?$")
_DECIMAL_RE = re.compile(r"^-?\d+(\.\d+)?$")


@dataclass
class _Element:
    """One scalar CMI element: its access mode and value type."""

    readable: bool = True
    writable: bool = True
    vocabulary: Optional[str] = None  # key into CMI_VOCABULARIES
    numeric_range: Optional[Tuple[float, float]] = None
    timespan: bool = False
    value: str = ""


def _core_elements() -> Dict[str, _Element]:
    return {
        "cmi.core.student_id": _Element(writable=False),
        "cmi.core.student_name": _Element(writable=False),
        "cmi.core.lesson_location": _Element(),
        "cmi.core.credit": _Element(
            writable=False, vocabulary="cmi.core.credit", value="credit"
        ),
        "cmi.core.lesson_status": _Element(
            vocabulary="cmi.core.lesson_status", value="not attempted"
        ),
        "cmi.core.entry": _Element(
            writable=False, vocabulary="cmi.core.entry", value="ab-initio"
        ),
        "cmi.core.score.raw": _Element(numeric_range=(0.0, 100.0)),
        "cmi.core.score.min": _Element(numeric_range=(0.0, 100.0)),
        "cmi.core.score.max": _Element(numeric_range=(0.0, 100.0)),
        "cmi.core.total_time": _Element(writable=False, value="0000:00:00"),
        "cmi.core.exit": _Element(readable=False, vocabulary="cmi.core.exit"),
        "cmi.core.session_time": _Element(readable=False, timespan=True),
        "cmi.suspend_data": _Element(),
        "cmi.launch_data": _Element(writable=False),
        "cmi.comments": _Element(),
        "cmi.comments_from_lms": _Element(writable=False),
    }


_CHILDREN: Dict[str, str] = {
    "cmi.core._children": (
        "student_id,student_name,lesson_location,credit,lesson_status,entry,"
        "score,total_time,exit,session_time"
    ),
    "cmi.core.score._children": "raw,min,max",
    "cmi.interactions._children": (
        "id,objectives,time,type,correct_responses,weighting,"
        "student_response,result,latency"
    ),
    "cmi.objectives._children": "id,score,status",
}

_INTERACTION_FIELDS = {
    "id": _Element(readable=False),
    "time": _Element(readable=False, timespan=False),
    "type": _Element(readable=False, vocabulary="cmi.interactions.n.type"),
    "weighting": _Element(readable=False),
    "student_response": _Element(readable=False),
    "result": _Element(readable=False, vocabulary="cmi.interactions.n.result"),
    "latency": _Element(readable=False, timespan=True),
}

_OBJECTIVE_FIELDS = {
    "id": _Element(),
    "score.raw": _Element(numeric_range=(0.0, 100.0)),
    "score.min": _Element(numeric_range=(0.0, 100.0)),
    "score.max": _Element(numeric_range=(0.0, 100.0)),
    "status": _Element(vocabulary="cmi.core.lesson_status"),
}

_INTERACTION_RE = re.compile(r"^cmi\.interactions\.(\d+)\.(.+)$")
_OBJECTIVE_RE = re.compile(r"^cmi\.objectives\.(\d+)\.(.+)$")


class CmiDataModel:
    """A SCO's view of the CMI data model.

    All operations return ``(value, error)`` pairs rather than raising:
    the API adapter surfaces these as SCORM error codes, matching how the
    JavaScript API behaves in a real LMS.
    """

    def __init__(
        self,
        student_id: str = "",
        student_name: str = "",
        launch_data: str = "",
        entry: str = "ab-initio",
        suspend_data: str = "",
    ) -> None:
        self._elements = _core_elements()
        self._elements["cmi.core.student_id"].value = student_id
        self._elements["cmi.core.student_name"].value = student_name
        self._elements["cmi.launch_data"].value = launch_data
        self._elements["cmi.core.entry"].value = entry
        self._elements["cmi.suspend_data"].value = suspend_data
        self._interactions: List[Dict[str, str]] = []
        self._interaction_responses: List[List[str]] = []
        self._objectives: List[Dict[str, str]] = []

    # -- reads -------------------------------------------------------------

    def get(self, element: str) -> Tuple[str, ScormError]:
        """Read one element; returns (value, error_code)."""
        if not element:
            return "", ScormError.INVALID_ARGUMENT
        if element in _CHILDREN:
            return _CHILDREN[element], ScormError.NO_ERROR
        if element == "cmi.interactions._count":
            return str(len(self._interactions)), ScormError.NO_ERROR
        if element == "cmi.objectives._count":
            return str(len(self._objectives)), ScormError.NO_ERROR
        if element.endswith("._count"):
            return "", ScormError.ELEMENT_NOT_AN_ARRAY
        if element.endswith("._children"):
            return "", ScormError.INVALID_ARGUMENT

        interaction = _INTERACTION_RE.match(element)
        if interaction:
            # SCORM 1.2 declares interaction elements write-only
            index, fieldname = interaction.groups()
            if int(index) < len(self._interactions) and (
                fieldname in _INTERACTION_FIELDS
                or fieldname.startswith("correct_responses")
            ):
                return "", ScormError.ELEMENT_IS_WRITE_ONLY
            return "", ScormError.INVALID_ARGUMENT

        objective = _OBJECTIVE_RE.match(element)
        if objective:
            index, fieldname = objective.groups()
            position = int(index)
            if position >= len(self._objectives) or fieldname not in _OBJECTIVE_FIELDS:
                return "", ScormError.INVALID_ARGUMENT
            return self._objectives[position].get(fieldname, ""), ScormError.NO_ERROR

        scalar = self._elements.get(element)
        if scalar is None:
            return "", ScormError.INVALID_ARGUMENT
        if not scalar.readable:
            return "", ScormError.ELEMENT_IS_WRITE_ONLY
        return scalar.value, ScormError.NO_ERROR

    # -- writes ------------------------------------------------------------

    def set(self, element: str, value: str) -> ScormError:
        """Write one element; returns the error code."""
        if not element:
            return ScormError.INVALID_ARGUMENT
        if element in _CHILDREN or element.endswith(("._children", "._count")):
            return ScormError.INVALID_SET_VALUE

        interaction = _INTERACTION_RE.match(element)
        if interaction:
            return self._set_interaction(interaction, value)
        objective = _OBJECTIVE_RE.match(element)
        if objective:
            return self._set_objective(objective, value)

        scalar = self._elements.get(element)
        if scalar is None:
            return ScormError.INVALID_ARGUMENT
        if not scalar.writable:
            return ScormError.ELEMENT_IS_READ_ONLY
        check = self._type_check(scalar, element, value)
        if check is not ScormError.NO_ERROR:
            return check
        scalar.value = value
        return ScormError.NO_ERROR

    def _type_check(
        self, spec: _Element, element: str, value: str
    ) -> ScormError:
        if spec.vocabulary is not None:
            if value not in CMI_VOCABULARIES[spec.vocabulary]:
                return ScormError.INCORRECT_DATA_TYPE
        if spec.numeric_range is not None:
            if not _DECIMAL_RE.match(value):
                return ScormError.INCORRECT_DATA_TYPE
            low, high = spec.numeric_range
            if not low <= float(value) <= high:
                return ScormError.INCORRECT_DATA_TYPE
        if spec.timespan and not _TIMESPAN_RE.match(value):
            return ScormError.INCORRECT_DATA_TYPE
        return ScormError.NO_ERROR

    def _set_interaction(self, match: "re.Match", value: str) -> ScormError:
        index, fieldname = match.groups()
        position = int(index)
        if position > len(self._interactions):
            return ScormError.INVALID_ARGUMENT  # must grow contiguously
        if position == len(self._interactions):
            self._interactions.append({})
            self._interaction_responses.append([])
        correct = re.match(r"^correct_responses\.(\d+)\.pattern$", fieldname)
        if correct:
            response_index = int(correct.group(1))
            responses = self._interaction_responses[position]
            if response_index > len(responses):
                return ScormError.INVALID_ARGUMENT
            if response_index == len(responses):
                responses.append(value)
            else:
                responses[response_index] = value
            return ScormError.NO_ERROR
        spec = _INTERACTION_FIELDS.get(fieldname)
        if spec is None:
            return ScormError.INVALID_ARGUMENT
        check = self._type_check(spec, fieldname, value)
        if check is not ScormError.NO_ERROR:
            return check
        self._interactions[position][fieldname] = value
        return ScormError.NO_ERROR

    def _set_objective(self, match: "re.Match", value: str) -> ScormError:
        index, fieldname = match.groups()
        position = int(index)
        if position > len(self._objectives):
            return ScormError.INVALID_ARGUMENT
        if position == len(self._objectives):
            self._objectives.append({})
        spec = _OBJECTIVE_FIELDS.get(fieldname)
        if spec is None:
            return ScormError.INVALID_ARGUMENT
        check = self._type_check(spec, fieldname, value)
        if check is not ScormError.NO_ERROR:
            return check
        self._objectives[position][fieldname] = value
        return ScormError.NO_ERROR

    # -- snapshots -----------------------------------------------------------

    def interactions(self) -> List[Dict[str, object]]:
        """The recorded interactions (for LMS-side tracking)."""
        result: List[Dict[str, object]] = []
        for record, responses in zip(
            self._interactions, self._interaction_responses
        ):
            combined: Dict[str, object] = dict(record)
            combined["correct_responses"] = list(responses)
            result.append(combined)
        return result

    def objectives(self) -> List[Dict[str, str]]:
        """The recorded objectives (copies, safe to mutate)."""
        return [dict(record) for record in self._objectives]

    def snapshot(self) -> Dict[str, object]:
        """Everything the SCO wrote, for LMS persistence on commit."""
        return {
            "core": {
                name.rsplit(".", 1)[-1] if "score" not in name else name[len("cmi.core."):]:
                    spec.value
                for name, spec in self._elements.items()
                if name.startswith("cmi.core.")
            },
            "suspend_data": self._elements["cmi.suspend_data"].value,
            "comments": self._elements["cmi.comments"].value,
            "interactions": self.interactions(),
            "objectives": self.objectives(),
        }
