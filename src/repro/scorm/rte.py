"""The SCORM run-time environment and launch mechanism (paper §2.4).

"In the Run-Time Environment, there are data model, SCO, Asset, API,
Launch mechanism and LMS."

:class:`RunTimeEnvironment` owns the launch mechanism: it creates one
:class:`~repro.scorm.api.ApiAdapter` per (learner, SCO) attempt, seeds the
CMI data model from the learner's stored state (so a suspended attempt
resumes with ``cmi.core.entry == "resume"`` and its suspend data), and
persists committed snapshots back into its attempt store.  The LMS
(:mod:`repro.lms`) holds one RTE and reads tracking data out of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.errors import DeliveryError
from repro.scorm.api import ApiAdapter, ApiState
from repro.scorm.datamodel import CmiDataModel

__all__ = ["AttemptRecord", "RunTimeEnvironment"]


@dataclass
class AttemptRecord:
    """Persisted state of one learner's attempts on one SCO."""

    learner_id: str
    sco_id: str
    attempts: int = 0
    last_snapshot: Optional[Dict[str, object]] = None
    commits: int = 0
    suspended: bool = False

    @property
    def lesson_status(self) -> str:
        """The last committed cmi.core.lesson_status ("not attempted" if none)."""
        if self.last_snapshot is None:
            return "not attempted"
        core = self.last_snapshot.get("core", {})
        return str(core.get("lesson_status", "not attempted"))

    @property
    def score_raw(self) -> Optional[float]:
        """The last committed cmi.core.score.raw, as a float when present."""
        if self.last_snapshot is None:
            return None
        core = self.last_snapshot.get("core", {})
        raw = core.get("score.raw", "")
        try:
            return float(raw) if raw != "" else None
        except (TypeError, ValueError):
            return None


class RunTimeEnvironment:
    """Launch mechanism + attempt store for SCOs."""

    def __init__(self) -> None:
        self._records: Dict[Tuple[str, str], AttemptRecord] = {}
        self._active: Dict[Tuple[str, str], ApiAdapter] = {}

    def record(self, learner_id: str, sco_id: str) -> AttemptRecord:
        """The attempt record (created empty on first access)."""
        key = (learner_id, sco_id)
        if key not in self._records:
            self._records[key] = AttemptRecord(
                learner_id=learner_id, sco_id=sco_id
            )
        return self._records[key]

    def launch(
        self,
        learner_id: str,
        sco_id: str,
        learner_name: str = "",
        launch_data: str = "",
    ) -> ApiAdapter:
        """Launch a SCO for a learner and return its API instance.

        A learner whose previous attempt exited with ``suspend`` resumes:
        ``cmi.core.entry`` is ``"resume"`` and the suspend data is
        restored.  Launching while an attempt is still running is an
        error (one window per SCO, as in a browser LMS).
        """
        key = (learner_id, sco_id)
        active = self._active.get(key)
        if active is not None and active.state is ApiState.RUNNING:
            raise DeliveryError(
                f"learner {learner_id!r} already has a running attempt on "
                f"{sco_id!r}"
            )
        record = self.record(learner_id, sco_id)
        suspend_data = ""
        entry = "ab-initio"
        if record.suspended and record.last_snapshot is not None:
            entry = "resume"
            suspend_data = str(record.last_snapshot.get("suspend_data", ""))
        datamodel = CmiDataModel(
            student_id=learner_id,
            student_name=learner_name,
            launch_data=launch_data,
            entry=entry,
            suspend_data=suspend_data,
        )

        def on_commit(snapshot: Dict[str, object]) -> None:
            """Persist the snapshot into this attempt's record."""
            record.last_snapshot = snapshot
            record.commits += 1
            core = snapshot.get("core", {})
            record.suspended = core.get("exit") == "suspend"

        adapter = ApiAdapter(datamodel=datamodel, on_commit=on_commit)
        record.attempts += 1
        self._active[key] = adapter
        return adapter

    def active_attempts(self) -> List[Tuple[str, str]]:
        """(learner, sco) pairs with a currently running API session."""
        return [
            key
            for key, adapter in self._active.items()
            if adapter.state is ApiState.RUNNING
        ]

    def all_records(self) -> List[AttemptRecord]:
        """Every (learner, SCO) attempt record the RTE has seen."""
        return list(self._records.values())
