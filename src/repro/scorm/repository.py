"""The SCORM-compatible external repository (paper §5, Figure 3).

The architecture has "two databases, one is internal problem and exam
database, and another one is SCORM compatible external repository" —
instructors publish packaged exams to the repository and "reuse the
problem and exam files from SCORM compatible external repository".

:class:`PackageRepository` is that repository, backed by a directory of
Package Interchange Files with a JSON catalog.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List

from repro.core.errors import DuplicateIdError, NotFoundError, PackagingError
from repro.exams.exam import Exam
from repro.scorm.package import ContentPackage, extract_exam, package_exam

__all__ = ["CatalogEntry", "PackageRepository"]

_CATALOG_FILE = "catalog.json"


@dataclass(frozen=True)
class CatalogEntry:
    """One published package: its identifier, title, and file name."""

    identifier: str
    title: str
    filename: str
    item_count: int


class PackageRepository:
    """A directory-backed repository of SCORM content packages."""

    def __init__(self, root: "str | Path") -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._catalog_path = self.root / _CATALOG_FILE
        if not self._catalog_path.exists():
            self._write_catalog({})

    # -- catalog ------------------------------------------------------------

    def _read_catalog(self) -> Dict[str, Dict[str, object]]:
        try:
            return json.loads(self._catalog_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise PackagingError(f"repository catalog is corrupt: {exc}") from exc

    def _write_catalog(self, catalog: Dict[str, Dict[str, object]]) -> None:
        self._catalog_path.write_text(
            json.dumps(catalog, indent=2), encoding="utf-8"
        )

    def list_entries(self) -> List[CatalogEntry]:
        """Every published package, sorted by identifier."""
        catalog = self._read_catalog()
        return [
            CatalogEntry(
                identifier=identifier,
                title=str(record.get("title", "")),
                filename=str(record.get("filename", "")),
                item_count=int(record.get("item_count", 0)),
            )
            for identifier, record in sorted(catalog.items())
        ]

    def __contains__(self, identifier: str) -> bool:
        return identifier in self._read_catalog()

    def __len__(self) -> int:
        return len(self._read_catalog())

    # -- publish / fetch -------------------------------------------------------

    def publish(self, exam: Exam) -> CatalogEntry:
        """Package an exam and store it under its exam_id."""
        catalog = self._read_catalog()
        if exam.exam_id in catalog:
            raise DuplicateIdError(
                f"package {exam.exam_id!r} already published"
            )
        filename = f"{exam.exam_id}.zip"
        package_exam(exam, self.root / filename)
        catalog[exam.exam_id] = {
            "title": exam.title,
            "filename": filename,
            "item_count": len(exam.items),
        }
        self._write_catalog(catalog)
        return CatalogEntry(
            identifier=exam.exam_id,
            title=exam.title,
            filename=filename,
            item_count=len(exam.items),
        )

    def publish_package(self, identifier: str, data: bytes, title: str = "") -> None:
        """Store an externally produced package (validated on ingest)."""
        package = ContentPackage(data)  # validates manifest integrity
        catalog = self._read_catalog()
        if identifier in catalog:
            raise DuplicateIdError(f"package {identifier!r} already published")
        filename = f"{identifier}.zip"
        (self.root / filename).write_bytes(data)
        catalog[identifier] = {
            "title": title or package.manifest.identifier,
            "filename": filename,
            "item_count": 0,
        }
        self._write_catalog(catalog)

    def fetch(self, identifier: str) -> ContentPackage:
        """Open a published package."""
        catalog = self._read_catalog()
        record = catalog.get(identifier)
        if record is None:
            raise NotFoundError(f"no package {identifier!r} in the repository")
        return ContentPackage.from_file(self.root / str(record["filename"]))

    def fetch_exam(self, identifier: str) -> Exam:
        """Fetch a package and restore its exam for reuse."""
        return extract_exam(self.fetch(identifier))

    def remove(self, identifier: str) -> None:
        """Delete a published package and its catalog entry."""
        catalog = self._read_catalog()
        record = catalog.pop(identifier, None)
        if record is None:
            raise NotFoundError(f"no package {identifier!r} to remove")
        package_path = self.root / str(record["filename"])
        if package_path.exists():
            package_path.unlink()
        self._write_catalog(catalog)
