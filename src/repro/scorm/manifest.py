"""imsmanifest.xml: the SCORM content-package manifest (paper §5.5).

"A main description is an xml file called imsmanifest.xml.  With this
imsmanifest.xml, we can parse the whole course structure."

The model follows the IMS Content Packaging structure SCORM 1.2 adopts:

* a ``<manifest>`` with an identifier;
* ``<organizations>`` holding one or more ``<organization>`` trees of
  ``<item>`` nodes, leaves referencing resources via ``identifierref``;
* ``<resources>`` listing ``<resource>`` entries (type, scormtype, href)
  with their ``<file>`` members and optional metadata file references.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.errors import ManifestError

__all__ = [
    "ManifestItem",
    "Organization",
    "Resource",
    "Manifest",
    "manifest_to_xml",
    "manifest_from_xml",
]


@dataclass
class ManifestItem:
    """One node in an organization tree."""

    identifier: str
    title: str
    identifierref: Optional[str] = None  # leaf -> resource
    children: List["ManifestItem"] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.identifier:
            raise ManifestError("manifest item identifier must be non-empty")
        if self.identifierref is not None and self.children:
            raise ManifestError(
                f"item {self.identifier!r} cannot both reference a resource "
                f"and have children"
            )

    def walk(self):
        """Yield this item and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass
class Organization:
    """One course structure tree."""

    identifier: str
    title: str
    items: List[ManifestItem] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.identifier:
            raise ManifestError("organization identifier must be non-empty")

    def walk(self):
        """Yield every item in the organization, depth-first."""
        for item in self.items:
            yield from item.walk()


@dataclass
class Resource:
    """One packaged resource and its files."""

    identifier: str
    href: str
    scorm_type: str = "sco"  # "sco" or "asset"
    resource_type: str = "webcontent"
    files: List[str] = field(default_factory=list)
    metadata_href: Optional[str] = None
    dependencies: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.identifier:
            raise ManifestError("resource identifier must be non-empty")
        if self.scorm_type not in ("sco", "asset"):
            raise ManifestError(
                f"resource {self.identifier!r}: scorm_type must be 'sco' or "
                f"'asset', got {self.scorm_type!r}"
            )
        if self.href and self.href not in self.files:
            self.files.insert(0, self.href)


@dataclass
class Manifest:
    """The whole imsmanifest.xml document."""

    identifier: str
    organizations: List[Organization] = field(default_factory=list)
    resources: List[Resource] = field(default_factory=list)
    default_organization: Optional[str] = None
    schema_version: str = "1.2"

    def __post_init__(self) -> None:
        if not self.identifier:
            raise ManifestError("manifest identifier must be non-empty")

    def validate(self) -> None:
        """Check referential integrity: unique ids, every identifierref
        resolving to a resource, the default organization existing."""
        problems: List[str] = []
        resource_ids = [resource.identifier for resource in self.resources]
        if len(set(resource_ids)) != len(resource_ids):
            problems.append("duplicate resource identifiers")
        organization_ids = [org.identifier for org in self.organizations]
        if len(set(organization_ids)) != len(organization_ids):
            problems.append("duplicate organization identifiers")
        if (
            self.default_organization is not None
            and self.default_organization not in organization_ids
        ):
            problems.append(
                f"default organization {self.default_organization!r} does "
                f"not exist"
            )
        known_resources = set(resource_ids)
        item_ids: Dict[str, None] = {}
        for organization in self.organizations:
            for item in organization.walk():
                if item.identifier in item_ids:
                    problems.append(f"duplicate item identifier {item.identifier!r}")
                item_ids[item.identifier] = None
                if (
                    item.identifierref is not None
                    and item.identifierref not in known_resources
                ):
                    problems.append(
                        f"item {item.identifier!r} references missing "
                        f"resource {item.identifierref!r}"
                    )
        for resource in self.resources:
            for dependency in resource.dependencies:
                if dependency not in known_resources:
                    problems.append(
                        f"resource {resource.identifier!r} depends on missing "
                        f"resource {dependency!r}"
                    )
        if problems:
            raise ManifestError(
                "manifest validation failed: " + "; ".join(problems)
            )

    def resource(self, identifier: str) -> Resource:
        """The resource with the given identifier; ManifestError otherwise."""
        for candidate in self.resources:
            if candidate.identifier == identifier:
                return candidate
        raise ManifestError(f"no resource {identifier!r} in manifest")

    def all_files(self) -> List[str]:
        """Every file any resource declares (deduplicated, in order)."""
        seen: Dict[str, None] = {}
        for resource in self.resources:
            for filename in resource.files:
                seen.setdefault(filename, None)
            if resource.metadata_href:
                seen.setdefault(resource.metadata_href, None)
        return list(seen)


# --------------------------------------------------------------------------
# XML binding
# --------------------------------------------------------------------------


#: The ADL control namespace SCORM 1.2 uses for scormtype/location.
ADLCP_NS = "http://www.adlnet.org/xsd/adlcp_rootv1p2"


def manifest_to_xml(manifest: Manifest) -> str:
    """Serialize to imsmanifest.xml text."""
    root = ET.Element(
        "manifest",
        attrib={
            "identifier": manifest.identifier,
            "version": "1.1",
            "xmlns:adlcp": ADLCP_NS,
        },
    )
    metadata = ET.SubElement(root, "metadata")
    schema = ET.SubElement(metadata, "schema")
    schema.text = "ADL SCORM"
    schemaversion = ET.SubElement(metadata, "schemaversion")
    schemaversion.text = manifest.schema_version

    organizations_attrib = {}
    if manifest.default_organization is not None:
        organizations_attrib["default"] = manifest.default_organization
    organizations = ET.SubElement(root, "organizations", organizations_attrib)
    for organization in manifest.organizations:
        org_el = ET.SubElement(
            organizations,
            "organization",
            attrib={"identifier": organization.identifier},
        )
        title = ET.SubElement(org_el, "title")
        title.text = organization.title
        for item in organization.items:
            _item_to_xml(org_el, item)

    resources = ET.SubElement(root, "resources")
    for resource in manifest.resources:
        attrib = {
            "identifier": resource.identifier,
            "type": resource.resource_type,
            "adlcp:scormtype": resource.scorm_type,
        }
        if resource.href:
            attrib["href"] = resource.href
        resource_el = ET.SubElement(resources, "resource", attrib)
        if resource.metadata_href:
            metadata_el = ET.SubElement(resource_el, "metadata")
            adlcp = ET.SubElement(metadata_el, "adlcp:location")
            adlcp.text = resource.metadata_href
        for filename in resource.files:
            ET.SubElement(resource_el, "file", attrib={"href": filename})
        for dependency in resource.dependencies:
            ET.SubElement(
                resource_el, "dependency", attrib={"identifierref": dependency}
            )
    ET.indent(root)
    return ET.tostring(root, encoding="unicode")


def _item_to_xml(parent: ET.Element, item: ManifestItem) -> None:
    attrib = {"identifier": item.identifier}
    if item.identifierref is not None:
        attrib["identifierref"] = item.identifierref
    item_el = ET.SubElement(parent, "item", attrib)
    title = ET.SubElement(item_el, "title")
    title.text = item.title
    for child in item.children:
        _item_to_xml(item_el, child)


def manifest_from_xml(text: str) -> Manifest:
    """Parse imsmanifest.xml text back into a :class:`Manifest`."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise ManifestError(f"malformed imsmanifest.xml: {exc}") from exc
    if root.tag != "manifest":
        raise ManifestError(f"expected <manifest> root, got <{root.tag}>")
    identifier = root.get("identifier", "")
    schema_version = root.findtext("metadata/schemaversion", "1.2")

    organizations: List[Organization] = []
    organizations_el = root.find("organizations")
    default_organization = None
    if organizations_el is not None:
        default_organization = organizations_el.get("default")
        for org_el in organizations_el.findall("organization"):
            organizations.append(
                Organization(
                    identifier=org_el.get("identifier", ""),
                    title=org_el.findtext("title", ""),
                    items=[
                        _item_from_xml(item_el)
                        for item_el in org_el.findall("item")
                    ],
                )
            )

    resources: List[Resource] = []
    resources_el = root.find("resources")
    if resources_el is not None:
        for resource_el in resources_el.findall("resource"):
            scorm_type = (
                resource_el.get(f"{{{ADLCP_NS}}}scormtype")
                or resource_el.get("adlcp:scormtype")
                or "asset"
            )
            resources.append(
                Resource(
                    identifier=resource_el.get("identifier", ""),
                    href=resource_el.get("href", ""),
                    scorm_type=scorm_type,
                    resource_type=resource_el.get("type", "webcontent"),
                    files=[
                        file_el.get("href", "")
                        for file_el in resource_el.findall("file")
                    ],
                    metadata_href=resource_el.findtext(
                        f"metadata/{{{ADLCP_NS}}}location"
                    ),
                    dependencies=[
                        dep.get("identifierref", "")
                        for dep in resource_el.findall("dependency")
                    ],
                )
            )
    manifest = Manifest(
        identifier=identifier,
        organizations=organizations,
        resources=resources,
        default_organization=default_organization,
        schema_version=schema_version,
    )
    return manifest


def _item_from_xml(item_el: ET.Element) -> ManifestItem:
    return ManifestItem(
        identifier=item_el.get("identifier", ""),
        title=item_el.findtext("title", ""),
        identifierref=item_el.get("identifierref"),
        children=[_item_from_xml(child) for child in item_el.findall("item")],
    )
