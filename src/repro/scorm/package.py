"""SCORM content packages and the §5.5 output service.

"In order to share the material of our problem and exam, our system
provides SCORM format package output service.  The service can package
the original problem and exam files to SCORM compatible files."

A content package is a zip (the Package Interchange File) whose root
holds ``imsmanifest.xml``; every content file the manifest references is
inside.  Per the paper, "each file ... has a descriptive xml file with
the same level in the course structure" — the output service writes one
MINE metadata XML per item file — and "java script files to communicate
with API and learning management system are necessary", so the package
carries an ``APIWrapper.js`` (a faithful, minimal LMS-API locator script).

:func:`package_exam` is the output service; :class:`ContentPackage`
reads/validates a package; :func:`extract_exam` restores the exam on the
import side.
"""

from __future__ import annotations

import io
import json
import zipfile
from pathlib import Path
from typing import Dict, List, Optional

from repro import obs
from repro.core.errors import PackagingError
from repro.core.metadata_xml import to_xml as metadata_to_xml
from repro.bank.exambank import exam_from_record, exam_to_record
from repro.exams.exam import Exam
from repro.items.qti import item_to_qti_xml
from repro.scorm.manifest import (
    Manifest,
    ManifestItem,
    Organization,
    Resource,
    manifest_from_xml,
    manifest_to_xml,
)

__all__ = ["package_exam", "ContentPackage", "extract_exam", "API_WRAPPER_JS"]

#: Minimal but real SCORM 1.2 API locator script, included in every
#: package per §5.5 ("Without these java scripts, the learning management
#: can't find the API to communicate").
API_WRAPPER_JS = """\
// SCORM 1.2 API locator (MINE assessment packages)
var apiHandle = null;
function findAPI(win) {
  var tries = 0;
  while ((win.API == null) && (win.parent != null) && (win.parent != win)) {
    tries++;
    if (tries > 7) { return null; }
    win = win.parent;
  }
  return win.API;
}
function getAPI() {
  if (apiHandle == null) {
    apiHandle = findAPI(window);
    if ((apiHandle == null) && (window.opener != null)) {
      apiHandle = findAPI(window.opener);
    }
  }
  return apiHandle;
}
function doInitialize()        { return getAPI().LMSInitialize(""); }
function doFinish()            { return getAPI().LMSFinish(""); }
function doGetValue(name)      { return getAPI().LMSGetValue(name); }
function doSetValue(name, v)   { return getAPI().LMSSetValue(name, v); }
function doCommit()            { return getAPI().LMSCommit(""); }
function doGetLastError()      { return getAPI().LMSGetLastError(); }
function doGetErrorString(c)   { return getAPI().LMSGetErrorString(c); }
function doGetDiagnostic(c)    { return getAPI().LMSGetDiagnostic(c); }
"""

_EXAM_RECORD_FILE = "exam.json"
_MANIFEST_FILE = "imsmanifest.xml"


def package_exam(exam: Exam, path: "Optional[str | Path]" = None) -> bytes:
    """The §5.5 SCORM format package output service.

    Builds a Package Interchange File for an exam: ``imsmanifest.xml``
    describing the course structure (one organization; one item per exam
    group, or a flat list when ungrouped), one QTI XML file per problem,
    one MINE metadata XML per problem file ("a descriptive xml file with
    the same level"), the exam record itself, and the API wrapper script.

    Returns the zip bytes; also writes them to ``path`` when given.
    """
    with obs.span(
        "scorm.package", exam_id=exam.exam_id, items=len(exam.items)
    ):
        payload = _package_exam(exam)
    obs.count("scorm.packages.written")
    obs.count("scorm.bytes.written", len(payload))
    if path is not None:
        Path(path).write_bytes(payload)
    return payload


def _package_exam(exam: Exam) -> bytes:
    exam.validate()
    files: Dict[str, bytes] = {}
    resources: List[Resource] = [
        Resource(
            identifier="res-exam",
            href=_EXAM_RECORD_FILE,
            scorm_type="sco",
            files=[_EXAM_RECORD_FILE, "APIWrapper.js"],
            metadata_href=f"{_EXAM_RECORD_FILE}.metadata.xml",
        )
    ]
    files[_EXAM_RECORD_FILE] = json.dumps(
        exam_to_record(exam), indent=2
    ).encode("utf-8")
    files[f"{_EXAM_RECORD_FILE}.metadata.xml"] = metadata_to_xml(
        exam.metadata
    ).encode("utf-8")
    files["APIWrapper.js"] = API_WRAPPER_JS.encode("utf-8")

    for item in exam.items:
        item_file = f"items/{item.item_id}.xml"
        metadata_file = f"items/{item.item_id}.metadata.xml"
        files[item_file] = item_to_qti_xml(item).encode("utf-8")
        files[metadata_file] = metadata_to_xml(item.metadata).encode("utf-8")
        resources.append(
            Resource(
                identifier=f"res-{item.item_id}",
                href=item_file,
                scorm_type="asset",
                files=[item_file],
                metadata_href=metadata_file,
            )
        )

    organization = Organization(
        identifier="org-1",
        title=exam.title,
        items=_organization_items(exam),
    )
    manifest = Manifest(
        identifier=f"pkg-{exam.exam_id}",
        organizations=[organization],
        resources=resources,
        default_organization="org-1",
    )
    manifest.validate()
    files[_MANIFEST_FILE] = manifest_to_xml(manifest).encode("utf-8")

    buffer = io.BytesIO()
    with zipfile.ZipFile(buffer, "w", zipfile.ZIP_DEFLATED) as archive:
        for name in sorted(files):
            archive.writestr(name, files[name])
    return buffer.getvalue()


def _organization_items(exam: Exam) -> List[ManifestItem]:
    root = ManifestItem(
        identifier=f"item-{exam.exam_id}",
        title=exam.title,
        identifierref="res-exam",
    )
    nodes: List[ManifestItem] = [root]
    grouped: set = set()
    for group in exam.groups:
        children = [
            ManifestItem(
                identifier=f"item-{item_id}",
                title=exam.item(item_id).question[:60],
                identifierref=f"res-{item_id}",
            )
            for item_id in group.item_ids
        ]
        grouped.update(group.item_ids)
        nodes.append(
            ManifestItem(
                identifier=f"group-{group.name}",
                title=group.name,
                children=children,
            )
        )
    loose = [
        ManifestItem(
            identifier=f"item-{item.item_id}",
            title=item.question[:60],
            identifierref=f"res-{item.item_id}",
        )
        for item in exam.items
        if item.item_id not in grouped
    ]
    return nodes + loose


class ContentPackage:
    """A readable, validated SCORM content package."""

    def __init__(self, data: bytes) -> None:
        try:
            self._archive = zipfile.ZipFile(io.BytesIO(data))
        except zipfile.BadZipFile as exc:
            raise PackagingError(f"not a zip package: {exc}") from exc
        names = set(self._archive.namelist())
        if _MANIFEST_FILE not in names:
            raise PackagingError(
                f"package has no {_MANIFEST_FILE} at its root"
            )
        self.manifest = manifest_from_xml(
            self._archive.read(_MANIFEST_FILE).decode("utf-8")
        )
        self.manifest.validate()
        missing = [name for name in self.manifest.all_files() if name not in names]
        if missing:
            raise PackagingError(
                f"manifest references files missing from the package: {missing}"
            )

    @classmethod
    def from_file(cls, path: "str | Path") -> "ContentPackage":
        """Open and validate a package from a zip file on disk."""
        file_path = Path(path)
        if not file_path.exists():
            raise PackagingError(f"package file does not exist: {file_path}")
        return cls(file_path.read_bytes())

    def read(self, name: str) -> bytes:
        """The bytes of one packaged file; PackagingError when absent."""
        try:
            return self._archive.read(name)
        except KeyError:
            raise PackagingError(f"package has no file {name!r}") from None

    def names(self) -> List[str]:
        """Every file name inside the package."""
        return self._archive.namelist()


def extract_exam(package: ContentPackage) -> Exam:
    """Restore the exam from a package built by :func:`package_exam`.

    "Other instructors may reuse the problem and exam files from SCORM
    compatible external repository."
    """
    try:
        record = json.loads(package.read(_EXAM_RECORD_FILE).decode("utf-8"))
    except json.JSONDecodeError as exc:
        raise PackagingError(f"exam record is not valid JSON: {exc}") from exc
    return exam_from_record(record)
