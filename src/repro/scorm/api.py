"""The SCORM 1.2 run-time API adapter (paper §2.4, §5.5).

The paper: "java script files to communicate with API and learning
management system are necessary to SCORM standard ... Some API functions
are used to set value (ex. learner record, learner progress, learner
status), get value, error handler ... and course beginning and ending
(ex. course initial and course finish)."

:class:`ApiAdapter` is that API, in Python: the eight LMS* functions with
the SCORM 1.2 state machine (not-initialized → running → finished), error
tracking, and commit callbacks into the LMS.  Return conventions follow
the spec: boolean functions return the strings ``"true"``/``"false"``,
``LMSGetValue`` returns ``""`` on error, and ``LMSGetLastError`` reports
the code of the most recent call.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Optional

from repro.scorm.datamodel import CmiDataModel
from repro.scorm.errors import ERROR_STRINGS, ScormError

__all__ = ["ApiAdapter", "ApiState"]


class ApiState(enum.Enum):
    """The SCORM session states: not initialized, running, finished."""
    NOT_INITIALIZED = "not_initialized"
    RUNNING = "running"
    FINISHED = "finished"


class ApiAdapter:
    """One SCO's API instance, bound to a CMI data model.

    ``on_commit`` is called with the data-model snapshot on every
    successful ``LMSCommit`` and on ``LMSFinish`` — the LMS wires its
    persistence in there.
    """

    def __init__(
        self,
        datamodel: Optional[CmiDataModel] = None,
        on_commit: Optional[Callable[[Dict[str, object]], None]] = None,
    ) -> None:
        self.datamodel = datamodel if datamodel is not None else CmiDataModel()
        self._on_commit = on_commit
        self._state = ApiState.NOT_INITIALIZED
        self._last_error = ScormError.NO_ERROR
        self._diagnostics: Dict[int, str] = {}

    @property
    def state(self) -> ApiState:
        """The adapter state (not initialized / running / finished)."""
        return self._state

    # -- session control ---------------------------------------------------

    def LMSInitialize(self, parameter: str = "") -> str:
        """Begin the communication session ("course initial")."""
        if parameter != "":
            return self._fail(ScormError.INVALID_ARGUMENT)
        if self._state is not ApiState.NOT_INITIALIZED:
            return self._fail(
                ScormError.GENERAL_EXCEPTION,
                diagnostic="LMSInitialize called twice",
            )
        self._state = ApiState.RUNNING
        return self._ok()

    def LMSFinish(self, parameter: str = "") -> str:
        """End the communication session ("course finish"); commits."""
        if parameter != "":
            return self._fail(ScormError.INVALID_ARGUMENT)
        if self._state is not ApiState.RUNNING:
            return self._fail(ScormError.NOT_INITIALIZED)
        self._commit()
        self._state = ApiState.FINISHED
        return self._ok()

    # -- data transfer --------------------------------------------------------

    def LMSGetValue(self, element: str) -> str:
        """Read a CMI element; returns "" and sets the error on failure."""
        if self._state is not ApiState.RUNNING:
            self._last_error = ScormError.NOT_INITIALIZED
            return ""
        value, error = self.datamodel.get(element)
        self._last_error = error
        return value if error is ScormError.NO_ERROR else ""

    def LMSSetValue(self, element: str, value: str) -> str:
        """Write a CMI element; returns "true"/"false"."""
        if self._state is not ApiState.RUNNING:
            return self._fail(ScormError.NOT_INITIALIZED)
        error = self.datamodel.set(element, str(value))
        self._last_error = error
        return "true" if error is ScormError.NO_ERROR else "false"

    def LMSCommit(self, parameter: str = "") -> str:
        """Persist the data model via the on_commit hook."""
        if parameter != "":
            return self._fail(ScormError.INVALID_ARGUMENT)
        if self._state is not ApiState.RUNNING:
            return self._fail(ScormError.NOT_INITIALIZED)
        self._commit()
        return self._ok()

    # -- error handler ----------------------------------------------------------

    def LMSGetLastError(self) -> str:
        """The most recent call's error code, as a decimal string."""
        return str(int(self._last_error))

    def LMSGetErrorString(self, code: str) -> str:
        """The standard description for a SCORM error code ("" if unknown)."""
        try:
            return ERROR_STRINGS[ScormError(int(code))]
        except (ValueError, KeyError):
            return ""

    def LMSGetDiagnostic(self, code: str) -> str:
        """Implementation-specific detail for an error code, when recorded."""
        try:
            return self._diagnostics.get(int(code), "")
        except ValueError:
            return ""

    # -- internals ---------------------------------------------------------------

    def _commit(self) -> None:
        if self._on_commit is not None:
            self._on_commit(self.datamodel.snapshot())

    def _ok(self) -> str:
        self._last_error = ScormError.NO_ERROR
        return "true"

    def _fail(self, error: ScormError, diagnostic: str = "") -> str:
        self._last_error = error
        if diagnostic:
            self._diagnostics[int(error)] = diagnostic
        return "false"
