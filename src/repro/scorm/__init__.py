"""The SCORM substrate (paper §2.4, §5.5): CMI data model, run-time API,
content packaging with imsmanifest.xml, and the external repository."""

from repro.scorm.api import ApiAdapter, ApiState
from repro.scorm.datamodel import CMI_VOCABULARIES, CmiDataModel
from repro.scorm.errors import ERROR_STRINGS, ScormError
from repro.scorm.course import (
    Block,
    Course,
    Sco,
    course_to_organization,
    organization_to_course,
)
from repro.scorm.manifest import (
    Manifest,
    ManifestItem,
    Organization,
    Resource,
    manifest_from_xml,
    manifest_to_xml,
)
from repro.scorm.package import (
    API_WRAPPER_JS,
    ContentPackage,
    extract_exam,
    package_exam,
)
from repro.scorm.repository import CatalogEntry, PackageRepository
from repro.scorm.rte import AttemptRecord, RunTimeEnvironment

__all__ = [
    "Course",
    "Block",
    "Sco",
    "course_to_organization",
    "organization_to_course",
    "ScormError",
    "ERROR_STRINGS",
    "CmiDataModel",
    "CMI_VOCABULARIES",
    "ApiAdapter",
    "ApiState",
    "Manifest",
    "ManifestItem",
    "Organization",
    "Resource",
    "manifest_to_xml",
    "manifest_from_xml",
    "package_exam",
    "ContentPackage",
    "extract_exam",
    "API_WRAPPER_JS",
    "PackageRepository",
    "CatalogEntry",
    "RunTimeEnvironment",
    "AttemptRecord",
]
