"""Learner records (paper §2.4 "student management", §5.5 "learner record,
learner progress, learner status")."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.core.errors import DuplicateIdError, NotFoundError

__all__ = ["Learner", "LearnerRegistry"]


@dataclass
class Learner:
    """One registered learner and their per-course progress records."""

    learner_id: str
    name: str
    email: str = ""
    #: course_id -> status ("not attempted", "incomplete", "passed", ...)
    course_status: Dict[str, str] = field(default_factory=dict)
    #: course_id -> best score percent
    course_scores: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.learner_id:
            raise NotFoundError("learner_id must be non-empty")

    def status_for(self, course_id: str) -> str:
        """The learner's status on a course ('not attempted' default)."""
        return self.course_status.get(course_id, "not attempted")

    def record_result(
        self, course_id: str, status: str, score_percent: Optional[float]
    ) -> None:
        """Store a course outcome, keeping the best score."""
        self.course_status[course_id] = status
        if score_percent is not None:
            best = self.course_scores.get(course_id)
            if best is None or score_percent > best:
                self.course_scores[course_id] = score_percent


class LearnerRegistry:
    """The student-management directory."""

    def __init__(self) -> None:
        self._learners: Dict[str, Learner] = {}

    def register(self, learner: Learner) -> None:
        """Add a learner; ids must be unique."""
        if learner.learner_id in self._learners:
            raise DuplicateIdError(
                f"learner {learner.learner_id!r} already registered"
            )
        self._learners[learner.learner_id] = learner

    def get(self, learner_id: str) -> Learner:
        """The learner with this id; NotFoundError otherwise."""
        try:
            return self._learners[learner_id]
        except KeyError:
            raise NotFoundError(f"no learner {learner_id!r}") from None

    def remove(self, learner_id: str) -> Learner:
        """Delete and return a learner."""
        try:
            return self._learners.pop(learner_id)
        except KeyError:
            raise NotFoundError(f"no learner {learner_id!r}") from None

    def __len__(self) -> int:
        return len(self._learners)

    def __contains__(self, learner_id: str) -> bool:
        return learner_id in self._learners

    def __iter__(self) -> Iterator[Learner]:
        return iter(self._learners.values())

    def ids(self) -> List[str]:
        """Every learner id, in registration order."""
        return list(self._learners)
