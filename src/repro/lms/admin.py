"""Administrator functions (paper §5: "Administrator control the database
and learning management (LMS) monitor function").

:class:`Administrator` wraps an LMS with the management operations the
paper assigns to the administrator role: controlling the monitor
(enable/disable, capture interval, purge reviewed footage), withdrawing
exam offerings, and removing learners.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.errors import MonitorError, NotFoundError
from repro.lms.lms import Lms

__all__ = ["Administrator"]


class Administrator:
    """The administrator role over one LMS instance."""

    def __init__(self, lms: Lms, admin_id: str = "admin") -> None:
        self.lms = lms
        self.admin_id = admin_id

    # -- monitor control ----------------------------------------------------

    def enable_monitor(self) -> None:
        """Turn picture capture on."""
        self.lms.monitor.enabled = True

    def disable_monitor(self) -> None:
        """Turn picture capture off."""
        self.lms.monitor.enabled = False

    def set_capture_interval(self, seconds: float) -> None:
        """Change how often frames are captured."""
        if seconds <= 0:
            raise MonitorError(
                f"capture interval must be positive, got {seconds}"
            )
        self.lms.monitor.interval_seconds = seconds

    def purge_footage(self, learner_id: str, exam_id: str) -> int:
        """Delete a sitting's reviewed frames; returns how many."""
        return self.lms.monitor.clear(learner_id, exam_id)

    def monitored_sittings(self) -> List[Tuple[str, str]]:
        """Sittings with retained monitor footage."""
        return self.lms.monitor.monitored_sittings()

    # -- database control -------------------------------------------------------

    def withdraw_exam(self, exam_id: str) -> None:
        """Remove an exam offering (existing results are retained)."""
        if exam_id not in self.lms._exams:
            raise NotFoundError(f"no exam {exam_id!r} offered")
        del self.lms._exams[exam_id]
        self.lms._enrollment.pop(exam_id, None)

    def remove_learner(self, learner_id: str) -> None:
        """Delete a learner and their enrollments."""
        self.lms.learners.remove(learner_id)
        for enrolled in self.lms._enrollment.values():
            enrolled.discard(learner_id)
