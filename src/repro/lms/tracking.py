"""The tracking service (paper §2.4: "tracking service").

Every notable learner action — enrollment, launch, answer, suspend,
resume, submit, monitor capture — is appended to an event log the LMS and
the exam monitor query.  Events carry a logical timestamp from the
delivery clock so simulated and real runs share one code path.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

__all__ = ["EventKind", "TrackingEvent", "TrackingService"]


class EventKind(enum.Enum):
    """The tracked action types."""
    ENROLLED = "enrolled"
    LAUNCHED = "launched"
    ANSWERED = "answered"
    SUSPENDED = "suspended"
    RESUMED = "resumed"
    SUBMITTED = "submitted"
    GRADED = "graded"
    MONITOR_CAPTURE = "monitor_capture"
    COMMITTED = "committed"


@dataclass(frozen=True)
class TrackingEvent:
    """One tracked action."""

    kind: EventKind
    learner_id: str
    course_id: str
    timestamp: float
    detail: str = ""


class TrackingService:
    """An append-only event log with simple query methods."""

    def __init__(self) -> None:
        self._events: List[TrackingEvent] = []

    def record(
        self,
        kind: EventKind,
        learner_id: str,
        course_id: str,
        timestamp: float,
        detail: str = "",
    ) -> TrackingEvent:
        """Append one event to the log and return it."""
        event = TrackingEvent(
            kind=kind,
            learner_id=learner_id,
            course_id=course_id,
            timestamp=timestamp,
            detail=detail,
        )
        self._events.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TrackingEvent]:
        return iter(self._events)

    def events(
        self,
        kind: Optional[EventKind] = None,
        learner_id: Optional[str] = None,
        course_id: Optional[str] = None,
    ) -> List[TrackingEvent]:
        """Filtered view of the log, in append order."""
        result = []
        for event in self._events:
            if kind is not None and event.kind is not kind:
                continue
            if learner_id is not None and event.learner_id != learner_id:
                continue
            if course_id is not None and event.course_id != course_id:
                continue
            result.append(event)
        return result

    def counts_by_kind(self) -> Dict[EventKind, int]:
        """Event totals per kind."""
        counts: Dict[EventKind, int] = {}
        for event in self._events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts
