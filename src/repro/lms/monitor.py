"""The on-line exam monitor (paper §5, §6).

"When learners take the exam, monitor function captures the client
picture for monitoring the exam progress."  The paper's monitor grabs a
webcam/screen picture on a schedule while a sitting runs.

This reproduction substitutes synthetic frames for real pictures (there
is no camera in a library), preserving the code path end to end: a
capture *schedule* driven by the session clock, per-sitting frame
storage with bounded retention, and a review API for proctors.  Frames
are deterministic byte payloads derived from (learner, exam, sequence
number), so tests can verify integrity.
"""

from __future__ import annotations

import base64
import hashlib
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.core.errors import MonitorError

__all__ = ["CapturedFrame", "ExamMonitor"]


@dataclass(frozen=True)
class CapturedFrame:
    """One captured picture: identity, capture time, and payload."""

    learner_id: str
    exam_id: str
    sequence: int
    elapsed_seconds: float
    payload: bytes

    def checksum(self) -> str:
        """SHA-256 of the frame payload, for integrity checks."""
        return hashlib.sha256(self.payload).hexdigest()


def _synthetic_picture(learner_id: str, exam_id: str, sequence: int) -> bytes:
    """A deterministic stand-in for a captured client picture."""
    seed = f"{learner_id}|{exam_id}|{sequence}".encode()
    block = hashlib.sha256(seed).digest()
    # 1 KiB payload: repeated digest, like a tiny fake JPEG body
    return b"MINEPIC0" + block * 32


class ExamMonitor:
    """Capture scheduling and frame storage for running sittings.

    ``interval_seconds`` — how often a frame is due; ``max_frames`` —
    retention bound per sitting (oldest dropped first, as a real proctor
    store would cap disk usage).
    """

    def __init__(
        self,
        interval_seconds: float = 30.0,
        max_frames: int = 200,
        enabled: bool = True,
    ) -> None:
        if interval_seconds <= 0:
            raise MonitorError(
                f"capture interval must be positive, got {interval_seconds}"
            )
        if max_frames < 1:
            raise MonitorError(f"max_frames must be positive, got {max_frames}")
        self.interval_seconds = interval_seconds
        self.max_frames = max_frames
        self.enabled = enabled
        self._frames: Dict[Tuple[str, str], List[CapturedFrame]] = {}
        self._last_capture: Dict[Tuple[str, str], float] = {}
        self._dropped: Dict[Tuple[str, str], int] = {}
        self._captured_total = 0
        self._polls_total = 0
        # leaf lock: the LMS polls the monitor from concurrent sittings
        # (shared-mode hot paths), so the frame store guards itself
        self._lock = threading.RLock()

    # -- capturing -----------------------------------------------------------

    def poll(
        self, learner_id: str, exam_id: str, elapsed_seconds: float
    ) -> Optional[CapturedFrame]:
        """Capture a frame if one is due at this elapsed time.

        Call this on every learner interaction (or a timer tick); it
        captures at most one frame per interval.  Returns the new frame,
        or None when none was due or the monitor is disabled.
        """
        if not self.enabled:
            return None
        if elapsed_seconds < 0:
            raise MonitorError(f"elapsed time cannot be negative: {elapsed_seconds}")
        with self._lock:
            self._polls_total += 1
            key = (learner_id, exam_id)
            last = self._last_capture.get(key)
            if (
                last is not None
                and elapsed_seconds - last < self.interval_seconds
            ):
                return None
            return self.capture(learner_id, exam_id, elapsed_seconds)

    def capture(
        self, learner_id: str, exam_id: str, elapsed_seconds: float
    ) -> CapturedFrame:
        """Capture a frame unconditionally (proctor-triggered snapshot)."""
        if not self.enabled:
            raise MonitorError("monitor is disabled")
        with self._lock:
            key = (learner_id, exam_id)
            frames = self._frames.setdefault(key, [])
            sequence = self._dropped.get(key, 0) + len(frames)
            frame = CapturedFrame(
                learner_id=learner_id,
                exam_id=exam_id,
                sequence=sequence,
                elapsed_seconds=elapsed_seconds,
                payload=_synthetic_picture(learner_id, exam_id, sequence),
            )
            frames.append(frame)
            self._captured_total += 1
            obs.count("monitor.frames.captured")
            if len(frames) > self.max_frames:
                frames.pop(0)
                self._dropped[key] = self._dropped.get(key, 0) + 1
                obs.count("monitor.frames.dropped")
            self._last_capture[key] = elapsed_seconds
            return frame

    # -- review -----------------------------------------------------------------

    def frames_for(self, learner_id: str, exam_id: str) -> List[CapturedFrame]:
        """All retained frames of one sitting, in capture order."""
        with self._lock:
            return list(self._frames.get((learner_id, exam_id), []))

    def dropped_count(self, learner_id: str, exam_id: str) -> int:
        """Frames discarded by the retention bound."""
        with self._lock:
            return self._dropped.get((learner_id, exam_id), 0)

    def monitored_sittings(self) -> List[Tuple[str, str]]:
        """(learner, exam) pairs with retained frames."""
        with self._lock:
            return list(self._frames)

    # -- live metrics (the Fig. 6 progress view, animated) -------------------

    def metrics(self) -> Dict[str, int]:
        """Live monitor counters — the paper's Fig. 6 progress panel.

        ``frames_captured`` and ``polls`` are lifetime totals (they
        survive :meth:`clear`); the rest reflect the current frame
        store.  The same numbers flow into
        :mod:`repro.obs` counters (``monitor.frames.*``) when profiling
        is enabled, so a ``--profile`` run shows capture pressure next to
        the span tree.
        """
        with self._lock:
            return {
                "sittings_monitored": len(self._frames),
                "frames_captured": self._captured_total,
                "frames_retained": sum(
                    len(frames) for frames in self._frames.values()
                ),
                "frames_dropped": sum(self._dropped.values()),
                "polls": self._polls_total,
            }

    def sitting_metrics(self, learner_id: str, exam_id: str) -> Dict[str, float]:
        """One sitting's live view: frames held, dropped, last capture."""
        key = (learner_id, exam_id)
        with self._lock:
            return {
                "frames_retained": len(self._frames.get(key, ())),
                "frames_dropped": self._dropped.get(key, 0),
                "last_capture_elapsed": self._last_capture.get(key, -1.0),
            }

    def clear(self, learner_id: str, exam_id: str) -> int:
        """Purge a sitting's frames (after review); returns count purged."""
        with self._lock:
            frames = self._frames.pop((learner_id, exam_id), [])
            self._last_capture.pop((learner_id, exam_id), None)
            self._dropped.pop((learner_id, exam_id), None)
            return len(frames)

    # -- persistence -----------------------------------------------------------

    def export_state(self) -> Dict[str, object]:
        """The monitor's full durable state as a JSON-compatible dict.

        Everything a restart would otherwise lose: configuration, the
        retained frames (payloads base64-encoded), the capture schedule,
        per-sitting drop counts, and the lifetime totals.  Consumed by
        :func:`repro.lms.persistence.save_lms`.
        """
        with self._lock:
            return self._export_state_locked()

    def _export_state_locked(self) -> Dict[str, object]:
        frames = [
            {
                "learner_id": frame.learner_id,
                "exam_id": frame.exam_id,
                "sequence": frame.sequence,
                "elapsed_seconds": frame.elapsed_seconds,
                "payload_b64": base64.b64encode(frame.payload).decode(
                    "ascii"
                ),
            }
            for sitting_frames in self._frames.values()
            for frame in sitting_frames
        ]
        return {
            "interval_seconds": self.interval_seconds,
            "max_frames": self.max_frames,
            "enabled": self.enabled,
            "frames": frames,
            "last_capture": [
                {"learner_id": lid, "exam_id": eid, "elapsed_seconds": at}
                for (lid, eid), at in self._last_capture.items()
            ],
            "dropped": [
                {"learner_id": lid, "exam_id": eid, "count": count}
                for (lid, eid), count in self._dropped.items()
            ],
            "captured_total": self._captured_total,
            "polls_total": self._polls_total,
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "ExamMonitor":
        """Rebuild a monitor from :meth:`export_state` output."""
        monitor = cls(
            interval_seconds=float(state.get("interval_seconds", 30.0)),
            max_frames=int(state.get("max_frames", 200)),
            enabled=bool(state.get("enabled", True)),
        )
        for record in state.get("frames", []):
            key = (record["learner_id"], record["exam_id"])
            monitor._frames.setdefault(key, []).append(
                CapturedFrame(
                    learner_id=record["learner_id"],
                    exam_id=record["exam_id"],
                    sequence=int(record["sequence"]),
                    elapsed_seconds=float(record["elapsed_seconds"]),
                    payload=base64.b64decode(record["payload_b64"]),
                )
            )
        for frames in monitor._frames.values():
            frames.sort(key=lambda frame: frame.sequence)
        for record in state.get("last_capture", []):
            monitor._last_capture[
                (record["learner_id"], record["exam_id"])
            ] = float(record["elapsed_seconds"])
        for record in state.get("dropped", []):
            monitor._dropped[
                (record["learner_id"], record["exam_id"])
            ] = int(record["count"])
        monitor._captured_total = int(state.get("captured_total", 0))
        monitor._polls_total = int(state.get("polls_total", 0))
        return monitor
