"""Learner transcripts.

The learner-facing record of §5.5's "learner record, learner progress,
learner status": every exam a learner has taken, their best score and
status per exam, attempt counts from the SCORM RTE, and a text rendering
suitable for the learner portal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.errors import NotFoundError
from repro.lms.lms import Lms

__all__ = ["TranscriptRow", "Transcript", "build_transcript"]


@dataclass(frozen=True)
class TranscriptRow:
    """One exam's line on a transcript."""

    exam_id: str
    exam_title: str
    status: str
    best_score_percent: Optional[float]
    attempts: int
    sittings: int


@dataclass
class Transcript:
    """A learner's complete course record."""

    learner_id: str
    learner_name: str
    rows: List[TranscriptRow]

    @property
    def passed_count(self) -> int:
        """How many exams on the transcript were passed."""
        return sum(1 for row in self.rows if row.status == "passed")

    def render(self) -> str:
        """The transcript as learner-portal text."""
        lines = [f"Transcript - {self.learner_name} ({self.learner_id})"]
        if not self.rows:
            lines.append("  (no exams taken)")
            return "\n".join(lines)
        for row in self.rows:
            score = (
                f"{row.best_score_percent:.0f}%"
                if row.best_score_percent is not None
                else "-"
            )
            lines.append(
                f"  {row.exam_title:<30} {row.status:<13} best {score:>5}  "
                f"attempts {row.attempts}"
            )
        lines.append(
            f"  {self.passed_count} of {len(self.rows)} exams passed"
        )
        return "\n".join(lines)


def build_transcript(lms: Lms, learner_id: str) -> Transcript:
    """Assemble a learner's transcript from LMS and RTE records.

    Rows cover every exam the learner has a recorded result or attempt
    for, in the LMS's offering order; exams merely enrolled in but never
    attempted are listed as "not attempted".
    """
    learner = lms.learners.get(learner_id)  # raises NotFoundError
    rows: List[TranscriptRow] = []
    for exam_id in lms.offered_exams():
        if learner_id not in lms.enrolled(exam_id):
            continue
        exam = lms.exam(exam_id)
        sittings = [
            sitting
            for sitting in lms.results_for(exam_id)
            if sitting.learner_id == learner_id
        ]
        attempt_record = lms.rte.record(learner_id, exam_id)
        rows.append(
            TranscriptRow(
                exam_id=exam_id,
                exam_title=exam.title,
                status=learner.status_for(exam_id),
                best_score_percent=learner.course_scores.get(exam_id),
                attempts=attempt_record.attempts,
                sittings=len(sittings),
            )
        )
    return Transcript(
        learner_id=learner_id, learner_name=learner.name, rows=rows
    )
