"""LMS state persistence.

A real LMS survives restarts.  This module serializes the durable parts
of an :class:`~repro.lms.lms.Lms` — offered exams, learners with their
progress, enrollment, graded results, the tracking log, the exam
monitor's proctoring record (captured frames, capture schedule, drop
counts), and every sitting's full delivery-session state (including
**in-flight** sittings: their answer history, elapsed-time accounting,
and SCORM interaction record) — to a JSON file and restores them.
Earlier revisions deliberately dropped in-flight sittings; with the
:mod:`repro.store` write-ahead log those sittings are durable, so
snapshots must carry them too or a checkpoint would truncate a learner
mid-exam.

Restores re-anchor the clock: the snapshot records the writer's
``clock.now()`` and :func:`load_lms` installs an
:class:`~repro.delivery.clock.OffsetClock` continuing that timeline, so
stored timestamps stay comparable and an in-progress sitting keeps
ticking instead of jumping (``time.monotonic`` restarts every boot).

Writes are **atomic**: the payload lands in a temporary file in the
destination directory and is :func:`os.replace`-d into place, so a crash
(or a killed snapshot thread) mid-write can never leave a truncated,
unloadable state file behind — the previous snapshot survives intact.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional

from repro.core.errors import BankError
from repro.bank.exambank import exam_from_record, exam_to_record
from repro.delivery.clock import OffsetClock
from repro.delivery.scoring import GradedSitting, grade_session
from repro.delivery.session import ExamSession, SessionState
from repro.items.responses import ScoredResponse
from repro.lms.learners import Learner
from repro.lms.lms import Lms, LmsSitting
from repro.lms.monitor import ExamMonitor
from repro.lms.tracking import EventKind

__all__ = [
    "save_lms",
    "load_lms",
    "load_payload",
    "lms_from_payload",
    "merge_payloads",
]

_FORMAT = "mine-lms-v1"


def _scored_to_record(score: ScoredResponse) -> Dict[str, object]:
    return {
        "points": score.points,
        "max_points": score.max_points,
        "correct": score.correct,
        "needs_manual_grading": score.needs_manual_grading,
        "selected": score.selected,
    }


def _scored_from_record(record: Dict[str, object]) -> ScoredResponse:
    return ScoredResponse(
        points=float(record["points"]),
        max_points=float(record["max_points"]),
        correct=record.get("correct"),
        needs_manual_grading=bool(record.get("needs_manual_grading", False)),
        selected=record.get("selected"),
    )


def _write_atomic(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` via a same-directory temp + rename."""
    directory = path.parent if str(path.parent) else Path(".")
    handle, tmp_name = tempfile.mkstemp(
        dir=str(directory), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "w", encoding="utf-8") as stream:
            stream.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def save_lms(
    lms: Lms, path: "str | Path", wal_lsn: Optional[int] = None
) -> None:
    """Write the LMS's durable state to a JSON file, atomically.

    The whole collection happens under :attr:`Lms.lock`, so a snapshot
    taken while server threads are mutating the LMS is a consistent
    point-in-time view, and the temp-file + :func:`os.replace` dance
    guarantees the file on disk is always a complete snapshot.

    ``wal_lsn`` stamps the snapshot with the highest journal LSN it
    covers — the checkpoint engine (:mod:`repro.store.checkpoint`)
    passes it while holding the LMS lock, and recovery replays only
    records past it.
    """
    with lms.lock:
        payload = _collect_payload(lms)
        if wal_lsn is not None:
            payload["wal_lsn"] = int(wal_lsn)
    _write_atomic(Path(path), json.dumps(payload, indent=2))


def _collect_payload(lms: Lms) -> Dict[str, object]:
    learners: List[Dict[str, object]] = []
    for learner in lms.learners:
        learners.append(
            {
                "learner_id": learner.learner_id,
                "name": learner.name,
                "email": learner.email,
                "course_status": dict(learner.course_status),
                "course_scores": dict(learner.course_scores),
            }
        )
    results: Dict[str, List[Dict[str, object]]] = {}
    for exam_id in lms.offered_exams():
        sittings = []
        for sitting in lms.results_for(exam_id):
            sittings.append(
                {
                    "learner_id": sitting.learner_id,
                    "duration_seconds": sitting.duration_seconds,
                    "answer_times": list(sitting.answer_times),
                    "scores": {
                        item_id: _scored_to_record(score)
                        for item_id, score in sitting.scores.items()
                    },
                }
            )
        results[exam_id] = sittings
    events = [
        {
            "kind": event.kind.value,
            "learner_id": event.learner_id,
            "course_id": event.course_id,
            "timestamp": event.timestamp,
            "detail": event.detail,
        }
        for event in lms.tracking
    ]
    sittings = [
        {
            "learner_id": sitting.learner_id,
            "exam_id": sitting.exam_id,
            "item_order": list(sitting.item_order),
            "session": sitting.session.export_state(),
        }
        for sitting in lms._sittings.values()
    ]
    calibrations = {}
    for exam_id, (version, overlay) in lms._calibrations.items():
        from repro.adaptive.online import parameters_to_record

        calibrations[exam_id] = {
            "version": version,
            "parameters": parameters_to_record(overlay),
        }
    return {
        "format": _FORMAT,
        "clock": lms.clock.now(),
        "exams": [exam_to_record(lms.exam(e)) for e in lms.offered_exams()],
        "calibrations": calibrations,
        "learners": learners,
        "enrollment": {
            exam_id: sorted(lms.enrolled(exam_id))
            for exam_id in lms.offered_exams()
        },
        "results": results,
        "tracking": events,
        "monitor": lms.monitor.export_state(),
        "sittings": sittings,
    }


def load_payload(path: "str | Path") -> Dict[str, object]:
    """Read and validate a snapshot file into its JSON payload."""
    file_path = Path(path)
    if not file_path.exists():
        raise BankError(f"LMS state file does not exist: {file_path}")
    try:
        payload = json.loads(file_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise BankError(f"LMS state file is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("format") != _FORMAT:
        raise BankError(
            "unrecognized LMS state format: "
            f"{payload.get('format') if isinstance(payload, dict) else payload!r}"
        )
    return payload


def load_lms(path: "str | Path", clock=None) -> Lms:
    """Restore an LMS from a file written by :func:`save_lms`."""
    return lms_from_payload(load_payload(path), clock=clock)


def lms_from_payload(payload: Dict[str, object], clock=None) -> Lms:
    """Build an :class:`Lms` from a snapshot payload.

    Without an explicit ``clock``, snapshots that recorded their clock
    get an :class:`OffsetClock` continuing that timeline (older files
    fall back to a fresh wall clock).
    """
    if clock is None and isinstance(payload.get("clock"), (int, float)):
        clock = OffsetClock(float(payload["clock"]))
    # restore the proctoring record; files written before the monitor
    # section existed simply get a fresh monitor
    monitor_state = payload.get("monitor")
    monitor = (
        ExamMonitor.from_state(monitor_state)
        if isinstance(monitor_state, dict)
        else None
    )
    lms = Lms(clock=clock, monitor=monitor)
    for record in payload.get("exams", []):
        lms.offer_exam(exam_from_record(record))
    # calibration overlays must land before sittings are restored: a
    # restored adaptive sitting replays against the exam's current table
    for exam_id, record in payload.get("calibrations", {}).items():
        if exam_id not in lms._exams:
            continue
        from repro.adaptive.online import parameters_from_record

        lms._install_calibration(
            exam_id,
            int(record.get("version", 0)),
            parameters_from_record(record.get("parameters", {})),
        )
    for record in payload.get("learners", []):
        learner = Learner(
            learner_id=record["learner_id"],
            name=record.get("name", ""),
            email=record.get("email", ""),
            course_status=dict(record.get("course_status", {})),
            course_scores={
                key: float(value)
                for key, value in record.get("course_scores", {}).items()
            },
        )
        lms.learners.register(learner)
    for exam_id, learner_ids in payload.get("enrollment", {}).items():
        for learner_id in learner_ids:
            if exam_id in lms._exams and learner_id in lms.learners:
                lms._enrollment[exam_id].add(learner_id)
    for exam_id, sittings in payload.get("results", {}).items():
        restored = []
        for record in sittings:
            restored.append(
                GradedSitting(
                    exam_id=exam_id,
                    learner_id=record["learner_id"],
                    scores={
                        item_id: _scored_from_record(score)
                        for item_id, score in record.get("scores", {}).items()
                    },
                    duration_seconds=float(record.get("duration_seconds", 0.0)),
                    answer_times=[
                        float(v) for v in record.get("answer_times", [])
                    ],
                )
            )
        lms._results[exam_id] = restored
    for record in payload.get("tracking", []):
        lms.tracking.record(
            EventKind(record["kind"]),
            record.get("learner_id", ""),
            record.get("course_id", ""),
            float(record.get("timestamp", 0.0)),
            detail=record.get("detail", ""),
        )
    for record in payload.get("sittings", []):
        _restore_sitting(lms, record)
    return lms


def _restore_sitting(lms: Lms, record: Dict[str, object]) -> None:
    """Rebuild one sitting — delivery session plus its SCORM API.

    The CMI record is regenerated by re-issuing the same interaction /
    suspend / finish sequences the live LMS performed (via the shared
    ``Lms._cmi_*`` helpers), so a restored sitting's SCORM conversation
    matches what a browser SCO would have produced.  Sittings whose
    exam or learner is absent from the snapshot are skipped, mirroring
    the enrollment loop's tolerance.
    """
    exam_id = str(record.get("exam_id", ""))
    learner_id = str(record.get("learner_id", ""))
    if exam_id not in lms._exams or learner_id not in lms.learners:
        return
    exam = lms.exam(exam_id)
    learner = lms.learners.get(learner_id)
    state = record.get("session", {})
    session = ExamSession.from_state(exam, state, clock=lms.clock)
    api = lms.rte.launch(learner_id, exam_id, learner_name=learner.name)
    if api.LMSInitialize("") != "true":
        raise BankError(
            f"SCORM API failed to initialize while restoring the sitting "
            f"of {exam_id!r} by {learner_id!r}"
        )
    sitting = LmsSitting(
        session=session,
        api=api,
        item_order=[str(item_id) for item_id in record.get("item_order", [])],
    )
    for event in state.get("events", []):
        item = exam.item(str(event["item_id"]))
        scored = item.score(event.get("response"))
        lms._cmi_record_answer(sitting, str(event["item_id"]), item, scored)
    if exam.adaptive is not None:
        # re-record the same scored sequence: selection is deterministic,
        # so the rebuilt posterior/trajectory is bit-identical to live
        sitting.adaptive = lms._rebuild_adaptive(
            exam,
            [
                (str(event["item_id"]), event.get("response"))
                for event in state.get("events", [])
            ],
        )
    if session.state is SessionState.SUSPENDED:
        lms._cmi_suspend(sitting)
    elif session.state is SessionState.SUBMITTED:
        lms._cmi_finish(sitting, grade_session(session))
    lms._sittings[(learner_id, exam_id)] = sitting


def merge_payloads(payloads: List[Dict[str, object]]) -> Dict[str, object]:
    """Merge per-shard snapshot payloads into one whole-cohort payload.

    The sharded delivery tier partitions *learners* (and everything
    hanging off a learner: enrollment, sittings, results, proctoring
    frames) across workers, while *exams* are broadcast to every shard.
    Merging is therefore mostly concatenation of disjoint sets — with
    exams deduplicated by id, tracking ordered by timestamp, and
    monitor counters summed.  The merged payload loads through
    :func:`lms_from_payload` exactly like a single-process snapshot.
    """
    if not payloads:
        raise BankError("nothing to merge: no snapshot payloads given")
    for payload in payloads:
        if payload.get("format") != _FORMAT:
            raise BankError(
                f"cannot merge: unrecognized format {payload.get('format')!r}"
            )
    merged: Dict[str, object] = {
        "format": _FORMAT,
        # the merged timeline continues from the furthest-along shard
        "clock": max(
            float(payload.get("clock", 0.0)) for payload in payloads
        ),
        "calibrations": {},
        "exams": [],
        "learners": [],
        "enrollment": {},
        "results": {},
        "tracking": [],
        "monitor": None,
        "sittings": [],
    }
    seen_exams: set = set()
    seen_learners: set = set()
    enrollment: Dict[str, set] = {}
    results: Dict[str, List[Dict[str, object]]] = {}
    monitor: Optional[Dict[str, object]] = None
    wal_lsns: List[int] = []
    for payload in payloads:
        for record in payload.get("exams", []):
            exam_id = record.get("exam_id")
            if exam_id not in seen_exams:
                seen_exams.add(exam_id)
                merged["exams"].append(record)
        for record in payload.get("learners", []):
            learner_id = record.get("learner_id")
            if learner_id in seen_learners:
                raise BankError(
                    f"cannot merge: learner {learner_id!r} appears in "
                    f"more than one shard snapshot"
                )
            seen_learners.add(learner_id)
            merged["learners"].append(record)
        for exam_id, learner_ids in payload.get("enrollment", {}).items():
            enrollment.setdefault(exam_id, set()).update(learner_ids)
        for exam_id, record in payload.get("calibrations", {}).items():
            # exams are broadcast, so every shard applies the same swap;
            # keep the newest version if shards ever diverge mid-apply
            existing = merged["calibrations"].get(exam_id)
            if existing is None or int(record.get("version", 0)) > int(
                existing.get("version", 0)
            ):
                merged["calibrations"][exam_id] = record
        for exam_id, sittings in payload.get("results", {}).items():
            results.setdefault(exam_id, []).extend(sittings)
        merged["tracking"].extend(payload.get("tracking", []))
        merged["sittings"].extend(payload.get("sittings", []))
        state = payload.get("monitor")
        if isinstance(state, dict):
            if monitor is None:
                monitor = {
                    key: (list(value) if isinstance(value, list) else value)
                    for key, value in state.items()
                }
            else:
                for key in ("frames", "last_capture", "dropped"):
                    monitor[key].extend(state.get(key, []))
                for key in ("captured_total", "polls_total"):
                    monitor[key] = int(monitor.get(key, 0)) + int(
                        state.get(key, 0)
                    )
        if isinstance(payload.get("wal_lsn"), int):
            wal_lsns.append(payload["wal_lsn"])
    merged["enrollment"] = {
        exam_id: sorted(learner_ids)
        for exam_id, learner_ids in enrollment.items()
    }
    merged["results"] = results
    merged["monitor"] = monitor
    # shard clocks are independent; a cross-shard sort by timestamp is
    # the best single timeline there is (stable, so same-time events
    # keep shard order)
    merged["tracking"].sort(key=lambda event: float(event.get("timestamp", 0.0)))
    if wal_lsns:
        # informational only: per-shard LSN sequences are independent
        merged["wal_lsn"] = max(wal_lsns)
    return merged
