"""LMS state persistence.

A real LMS survives restarts.  This module serializes the durable parts
of an :class:`~repro.lms.lms.Lms` — offered exams, learners with their
progress, enrollment, graded results, the tracking log, and the exam
monitor's proctoring record (captured frames, capture schedule, drop
counts) — to a JSON file and restores them.  In-flight sittings and
SCORM API instances are deliberately *not* persisted (they are live
conversations; on restart a learner relaunches and, for resumable
exams, the RTE suspend data brings them back), matching how
browser-based LMSes behave.

Writes are **atomic**: the payload lands in a temporary file in the
destination directory and is :func:`os.replace`-d into place, so a crash
(or a killed snapshot thread) mid-write can never leave a truncated,
unloadable state file behind — the previous snapshot survives intact.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List

from repro.core.errors import BankError
from repro.bank.exambank import exam_from_record, exam_to_record
from repro.delivery.scoring import GradedSitting
from repro.items.responses import ScoredResponse
from repro.lms.learners import Learner
from repro.lms.lms import Lms
from repro.lms.monitor import ExamMonitor
from repro.lms.tracking import EventKind

__all__ = ["save_lms", "load_lms"]

_FORMAT = "mine-lms-v1"


def _scored_to_record(score: ScoredResponse) -> Dict[str, object]:
    return {
        "points": score.points,
        "max_points": score.max_points,
        "correct": score.correct,
        "needs_manual_grading": score.needs_manual_grading,
        "selected": score.selected,
    }


def _scored_from_record(record: Dict[str, object]) -> ScoredResponse:
    return ScoredResponse(
        points=float(record["points"]),
        max_points=float(record["max_points"]),
        correct=record.get("correct"),
        needs_manual_grading=bool(record.get("needs_manual_grading", False)),
        selected=record.get("selected"),
    )


def _write_atomic(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` via a same-directory temp + rename."""
    directory = path.parent if str(path.parent) else Path(".")
    handle, tmp_name = tempfile.mkstemp(
        dir=str(directory), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "w", encoding="utf-8") as stream:
            stream.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def save_lms(lms: Lms, path: "str | Path") -> None:
    """Write the LMS's durable state to a JSON file, atomically.

    The whole collection happens under :attr:`Lms.lock`, so a snapshot
    taken while server threads are mutating the LMS is a consistent
    point-in-time view, and the temp-file + :func:`os.replace` dance
    guarantees the file on disk is always a complete snapshot.
    """
    with lms.lock:
        payload = _collect_payload(lms)
    _write_atomic(Path(path), json.dumps(payload, indent=2))


def _collect_payload(lms: Lms) -> Dict[str, object]:
    learners: List[Dict[str, object]] = []
    for learner in lms.learners:
        learners.append(
            {
                "learner_id": learner.learner_id,
                "name": learner.name,
                "email": learner.email,
                "course_status": dict(learner.course_status),
                "course_scores": dict(learner.course_scores),
            }
        )
    results: Dict[str, List[Dict[str, object]]] = {}
    for exam_id in lms.offered_exams():
        sittings = []
        for sitting in lms.results_for(exam_id):
            sittings.append(
                {
                    "learner_id": sitting.learner_id,
                    "duration_seconds": sitting.duration_seconds,
                    "answer_times": list(sitting.answer_times),
                    "scores": {
                        item_id: _scored_to_record(score)
                        for item_id, score in sitting.scores.items()
                    },
                }
            )
        results[exam_id] = sittings
    events = [
        {
            "kind": event.kind.value,
            "learner_id": event.learner_id,
            "course_id": event.course_id,
            "timestamp": event.timestamp,
            "detail": event.detail,
        }
        for event in lms.tracking
    ]
    return {
        "format": _FORMAT,
        "exams": [exam_to_record(lms.exam(e)) for e in lms.offered_exams()],
        "learners": learners,
        "enrollment": {
            exam_id: sorted(lms.enrolled(exam_id))
            for exam_id in lms.offered_exams()
        },
        "results": results,
        "tracking": events,
        "monitor": lms.monitor.export_state(),
    }


def load_lms(path: "str | Path", clock=None) -> Lms:
    """Restore an LMS from a file written by :func:`save_lms`."""
    file_path = Path(path)
    if not file_path.exists():
        raise BankError(f"LMS state file does not exist: {file_path}")
    try:
        payload = json.loads(file_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise BankError(f"LMS state file is not valid JSON: {exc}") from exc
    if payload.get("format") != _FORMAT:
        raise BankError(
            f"unrecognized LMS state format: {payload.get('format')!r}"
        )
    # restore the proctoring record; files written before the monitor
    # section existed simply get a fresh monitor
    monitor_state = payload.get("monitor")
    monitor = (
        ExamMonitor.from_state(monitor_state)
        if isinstance(monitor_state, dict)
        else None
    )
    lms = Lms(clock=clock, monitor=monitor)
    for record in payload.get("exams", []):
        lms.offer_exam(exam_from_record(record))
    for record in payload.get("learners", []):
        learner = Learner(
            learner_id=record["learner_id"],
            name=record.get("name", ""),
            email=record.get("email", ""),
            course_status=dict(record.get("course_status", {})),
            course_scores={
                key: float(value)
                for key, value in record.get("course_scores", {}).items()
            },
        )
        lms.learners.register(learner)
    for exam_id, learner_ids in payload.get("enrollment", {}).items():
        for learner_id in learner_ids:
            if exam_id in lms._exams and learner_id in lms.learners:
                lms._enrollment[exam_id].add(learner_id)
    for exam_id, sittings in payload.get("results", {}).items():
        restored = []
        for record in sittings:
            restored.append(
                GradedSitting(
                    exam_id=exam_id,
                    learner_id=record["learner_id"],
                    scores={
                        item_id: _scored_from_record(score)
                        for item_id, score in record.get("scores", {}).items()
                    },
                    duration_seconds=float(record.get("duration_seconds", 0.0)),
                    answer_times=[
                        float(v) for v in record.get("answer_times", [])
                    ],
                )
            )
        lms._results[exam_id] = restored
    for record in payload.get("tracking", []):
        lms.tracking.record(
            EventKind(record["kind"]),
            record.get("learner_id", ""),
            record.get("course_id", ""),
            float(record.get("timestamp", 0.0)),
            detail=record.get("detail", ""),
        )
    return lms
