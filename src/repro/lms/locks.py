"""Fine-grained LMS locking: a shard-level RW lock plus per-sitting locks.

The LMS used to serialize *everything* behind one coarse ``RLock``: a
slow submit (grading a long exam) stalled every unrelated learner's
answer.  This module is the replacement:

* :class:`ShardLock` — a reentrant reader-writer lock.  ``with
  lms.lock:`` still means what it always meant (**exclusive**: the
  world is quiesced — snapshots, checkpoints, and
  ``state_fingerprint`` rely on it), but the per-learner hot paths now
  take the lock in **shared** mode, so answers to *different* sittings
  run concurrently and only structural mutations (offer, register,
  enroll, start) serialize.
* per-sitting :class:`InstrumentedRLock`\\ s — each open sitting gets
  its own lock, so two learners answering at the same time never touch
  the same mutex, while two racing requests for the *same* sitting
  still serialize (single-winner submit, ordered answers).
* :class:`LockStats` — contention visibility.  Every acquisition is
  counted and its wait time accumulated per scope (``shard.shared``,
  ``shard.exclusive``, ``sitting``); contended sitting acquisitions
  additionally record their ``learner:exam`` label (bounded map).  The
  server surfaces the snapshot under ``"locks"`` in ``/metrics``, and
  contended waits emit :mod:`repro.obs` counters / gauges when
  profiling is on.

Lock ordering (strict, deadlock-free): ``shard (shared or exclusive)``
→ ``sitting`` → ``commit`` (the small mutex around shared result
structures) → leaf locks (journal, monitor).  Upgrading shared →
exclusive on the same thread is forbidden and raises; taking shared
while already holding exclusive nests onto the exclusive hold.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Optional

from repro import obs

__all__ = ["LockStats", "ShardLock", "InstrumentedRLock"]

#: per-sitting labels retained in the contention map before new ones
#: are folded into the ``(other)`` bucket
MAX_SITTING_LABELS = 100


class LockStats:
    """Thread-safe contention accounting shared by a shard's locks."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # scope -> [acquisitions, contended, wait_total_s, wait_max_s]
        self._scopes: Dict[str, list] = {}
        # "learner:exam" -> contended acquisition count (bounded)
        self._sitting_contention: Dict[str, int] = {}

    def record(
        self,
        scope: str,
        waited_seconds: float,
        contended: bool,
        label: Optional[str] = None,
    ) -> None:
        """Fold one acquisition into the per-scope aggregates."""
        with self._lock:
            entry = self._scopes.setdefault(scope, [0, 0, 0.0, 0.0])
            entry[0] += 1
            if contended:
                entry[1] += 1
                entry[2] += waited_seconds
                entry[3] = max(entry[3], waited_seconds)
                if label is not None:
                    buckets = self._sitting_contention
                    if (
                        label not in buckets
                        and len(buckets) >= MAX_SITTING_LABELS
                    ):
                        label = "(other)"
                    buckets[label] = buckets.get(label, 0) + 1
        if contended:
            # profiling-only: the obs helpers no-op when disabled
            obs.count("lms.lock.contended", scope=scope)
            obs.gauge(
                "lms.lock.wait_ms", waited_seconds * 1000.0, scope=scope
            )

    def snapshot(self) -> Dict[str, object]:
        """The ``/metrics`` payload: per-scope counts and wait times."""
        with self._lock:
            scopes = {
                scope: {
                    "acquisitions": entry[0],
                    "contended": entry[1],
                    "wait_ms_total": round(entry[2] * 1000.0, 3),
                    "wait_ms_max": round(entry[3] * 1000.0, 3),
                }
                for scope, entry in sorted(self._scopes.items())
            }
            contended_sittings = dict(
                sorted(
                    self._sitting_contention.items(),
                    key=lambda pair: -pair[1],
                )
            )
        return {"scopes": scopes, "contended_sittings": contended_sittings}


class ShardLock:
    """A reentrant reader-writer lock with the coarse-lock's old API.

    ``acquire``/``release``/``__enter__``/``__exit__`` take the lock
    **exclusively** (writer), so existing ``with lms.lock:`` callers —
    snapshots, checkpoints, fingerprinting, embedders making a
    multi-call sequence atomic — keep their stop-the-world semantics.
    :meth:`shared` is the new hot-path mode: any number of threads hold
    it together, excluded only by a writer.

    Reentrancy rules: a writer may re-acquire exclusively *and* may
    enter :meth:`shared` (nests onto the write hold); a reader may
    re-enter :meth:`shared`; a reader asking for exclusive would be a
    lock *upgrade* (classic deadlock when two readers race it) and
    raises ``RuntimeError`` instead.  Writers get priority: new readers
    queue behind a waiting writer, except reentrant readers, which pass
    so an in-flight request can finish and release.
    """

    def __init__(
        self, stats: Optional[LockStats] = None, scope: str = "shard"
    ) -> None:
        self._cond = threading.Condition()
        self._writer: Optional[int] = None
        self._writer_depth = 0
        self._readers: Dict[int, int] = {}  # thread ident -> depth
        self._writers_waiting = 0
        self._stats = stats
        self._scope = scope

    # -- exclusive (the legacy coarse-lock surface) --------------------------

    def acquire(self) -> bool:
        """Take the lock exclusively (reentrant); blocks until granted."""
        me = threading.get_ident()
        began: Optional[float] = None
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
                self._note(f"{self._scope}.exclusive", None)
                return True
            if self._readers.get(me):
                raise RuntimeError(
                    "cannot upgrade a shared ShardLock hold to exclusive"
                )
            if self._writer is not None or self._readers:
                began = time.perf_counter()
            self._writers_waiting += 1
            try:
                while self._writer is not None or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = me
            self._writer_depth = 1
        self._note(f"{self._scope}.exclusive", began)
        return True

    def release(self) -> None:
        """Release one exclusive hold."""
        me = threading.get_ident()
        with self._cond:
            if self._writer != me:
                raise RuntimeError(
                    "release() by a thread not holding the ShardLock"
                )
            self._writer_depth -= 1
            if self._writer_depth == 0:
                self._writer = None
                self._cond.notify_all()

    def __enter__(self) -> "ShardLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    # -- shared (the hot-path mode) ------------------------------------------

    @contextmanager
    def shared(self):
        """Hold the lock in shared mode for the ``with`` body."""
        me = threading.get_ident()
        began: Optional[float] = None
        with self._cond:
            if self._writer == me:
                # a writer "reading" nests onto its own write hold
                self._writer_depth += 1
                writer_nested = True
            else:
                writer_nested = False
                if self._readers.get(me):
                    self._readers[me] += 1
                else:
                    if self._writer is not None or self._writers_waiting:
                        began = time.perf_counter()
                    while self._writer is not None or self._writers_waiting:
                        self._cond.wait()
                    self._readers[me] = 1
        self._note(f"{self._scope}.shared", began)
        try:
            yield self
        finally:
            with self._cond:
                if writer_nested:
                    self._writer_depth -= 1
                    if self._writer_depth == 0:  # pragma: no cover - safety
                        self._writer = None
                        self._cond.notify_all()
                else:
                    depth = self._readers[me] - 1
                    if depth:
                        self._readers[me] = depth
                    else:
                        del self._readers[me]
                        self._cond.notify_all()

    # -- plumbing ------------------------------------------------------------

    def _note(self, scope: str, began: Optional[float]) -> None:
        if self._stats is None:
            return
        waited = (time.perf_counter() - began) if began is not None else 0.0
        self._stats.record(scope, waited, began is not None)


class InstrumentedRLock:
    """An ``RLock`` that reports wait times to a :class:`LockStats`.

    Used for the per-sitting locks: the ``label`` (``learner:exam``)
    names which sitting contended, so ``/metrics`` can point at the hot
    learner instead of an anonymous aggregate.
    """

    def __init__(
        self,
        stats: Optional[LockStats] = None,
        scope: str = "sitting",
        label: Optional[str] = None,
    ) -> None:
        self._lock = threading.RLock()
        self._stats = stats
        self._scope = scope
        self._label = label

    def __enter__(self) -> "InstrumentedRLock":
        if self._lock.acquire(blocking=False):
            if self._stats is not None:
                self._stats.record(self._scope, 0.0, False)
            return self
        began = time.perf_counter()
        self._lock.acquire()
        if self._stats is not None:
            self._stats.record(
                self._scope,
                time.perf_counter() - began,
                True,
                label=self._label,
            )
        return self

    def __exit__(self, *exc_info) -> None:
        self._lock.release()
