"""The learning management system (paper §2.4, §5).

The LMS glues the substrate together: course (exam) offerings and
enrollment, the SCORM run-time environment and API, the delivery session
machine, the tracking service, and the on-line exam monitor.  A sitting
driven through :class:`LmsSitting` exercises the same call sequence a
browser SCO would: launch → ``LMSInitialize`` → answers recorded both in
the session and as ``cmi.interactions.n.*`` → ``LMSCommit`` →
``LMSFinish``, with monitor captures along the way.

**Durability** (:mod:`repro.store`): when a :class:`~repro.store.
journal.Journal` is attached (``Lms(journal=...)`` or
:meth:`Lms.attach_journal`), every public mutator appends one event to
the write-ahead log while still holding its sitting's lock, after the
mutation succeeded — so the log's per-sitting LSN order *is* the
serialization of that sitting's history (events on different sittings
commute), and :func:`repro.store.recover` can rebuild this exact state
by replaying it.  To make replay bit-identical, each mutator samples
the clock **once** and threads that timestamp through every clock-
dependent effect (session timing, tracking, monitor schedule).

**Concurrency** (:mod:`repro.lms.locks`): the old coarse ``RLock`` is
now a :class:`~repro.lms.locks.ShardLock`.  ``with lms.lock:`` still
quiesces the whole LMS (snapshots, checkpoints, fingerprints), but the
per-learner hot paths — answer, batch, suspend, resume, submit — take
it in *shared* mode plus the sitting's own lock, so a slow submit
cannot stall unrelated learners.  Structural mutations (offer,
register, enroll, start) stay exclusive.  Shared result structures
(``_results``, ``_live``, learner records) are guarded by a small
``_commit_lock`` held only for the final appends of a submit.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro import obs
from repro.core.errors import (
    DuplicateIdError,
    NotFoundError,
    ResponseError,
    SessionStateError,
    TimeLimitExceeded,
)
from repro.core.grouping import GroupSplit
from repro.core.rules import DEFAULT_SPREAD_THRESHOLD
from repro.core.signals import DEFAULT_POLICY, SignalPolicy
from repro.core.columnar import LiveCohortAnalysis
from repro.core.question_analysis import (
    CohortAnalysis,
    ExamineeResponses,
    analyze_cohort,
)
from repro.core.report import AssessmentReport, build_report
from repro.delivery.clock import Clock, WallClock
from repro.delivery.scoring import (
    GradedSitting,
    grade_session,
    sittings_to_responses,
)
from repro.delivery.session import ExamSession, SessionState
from repro.exams.exam import Exam
from repro.items.responses import ScoredResponse
from repro.lms.learners import Learner, LearnerRegistry
from repro.lms.locks import InstrumentedRLock, LockStats, ShardLock
from repro.lms.monitor import ExamMonitor
from repro.lms.tracking import EventKind, TrackingService
from repro.scorm.api import ApiAdapter
from repro.scorm.rte import RunTimeEnvironment
from repro.store import events as store_events

if TYPE_CHECKING:  # pragma: no cover - adaptive imports stay lazy at runtime
    from repro.adaptive.online import AdaptiveSession, ItemInformationTable
    from repro.sim.learner_model import ItemParameters

__all__ = ["Lms", "LmsSitting"]


@dataclass
class LmsSitting:
    """A learner's in-flight sitting: the delivery session plus its SCORM
    API instance, managed by the LMS."""

    session: ExamSession
    api: ApiAdapter
    interaction_count: int = 0
    #: item ids in this learner's presentation order (set at start)
    item_order: List[str] = field(default_factory=list)
    #: the online CAT state machine when the exam carries an adaptive
    #: policy; None for fixed exams.  Holds a reference to the
    #: information table it was started with, so an in-flight sitting is
    #: never switched mid-exam by a calibration swap.
    adaptive: "Optional[AdaptiveSession]" = None
    #: this sitting's own lock: two requests for the *same* sitting
    #: serialize here while unrelated sittings proceed concurrently
    lock: InstrumentedRLock = field(
        default_factory=InstrumentedRLock, repr=False, compare=False
    )

    @property
    def learner_id(self) -> str:
        """The sitting learner's id."""
        return self.session.learner_id

    @property
    def exam_id(self) -> str:
        """The exam being sat."""
        return self.session.exam.exam_id


class Lms:
    """The learning management system."""

    def __init__(
        self,
        clock: Optional[Clock] = None,
        monitor: Optional[ExamMonitor] = None,
        journal=None,
    ) -> None:
        self.clock = clock if clock is not None else WallClock()
        self.learners = LearnerRegistry()
        self.tracking = TrackingService()
        self.monitor = monitor if monitor is not None else ExamMonitor()
        self.rte = RunTimeEnvironment()
        #: optional :class:`repro.store.journal.Journal`; when set, every
        #: public mutator appends one event under :attr:`lock` (see
        #: :meth:`attach_journal`)
        self.journal = journal
        #: per-scope lock contention counters, served under ``"locks"``
        #: in the server's ``/metrics``
        self.lock_stats = LockStats()
        #: the shard-level lock guarding the LMS's shared structures.
        #: ``with lms.lock:`` takes it **exclusively** — the world is
        #: quiesced, exactly the old coarse-``RLock`` semantics (hold it
        #: yourself to make a multi-call sequence atomic, e.g.
        #: snapshotting via :func:`repro.lms.persistence.save_lms`).
        #: Hot paths take :meth:`ShardLock.shared` plus the sitting's
        #: own lock instead, so unrelated learners proceed in parallel.
        self.lock = ShardLock(self.lock_stats)
        #: guards _results, _live, and learner progress records during
        #: shared-mode submits (exclusive holders exclude it implicitly)
        self._commit_lock = threading.Lock()
        self._exams: Dict[str, Exam] = {}
        self._enrollment: Dict[str, set] = {}  # exam_id -> learner ids
        #: per adaptive exam: the current precomputed information table
        #: (built at offer time, rebuilt by a calibration swap) — the
        #: online hot path does zero IRT math, only table lookups
        self._adaptive_tables: Dict[str, "ItemInformationTable"] = {}
        #: per adaptive exam: (version, parameter overlay) of the newest
        #: applied calibration; version 0 = authored/seeded parameters
        self._calibrations: Dict[
            str, Tuple[int, Dict[str, "ItemParameters"]]
        ] = {}
        self._sittings: Dict[Tuple[str, str], LmsSitting] = {}
        self._results: Dict[str, List[GradedSitting]] = {}
        self._live: Dict[str, LiveCohortAnalysis] = {}  # warm analyses
        #: while a batch mutator is in flight on a thread, _emit collects
        #: that thread's events here so the whole batch lands in one
        #: Journal.append_batch call (thread-local: concurrent batches on
        #: different sittings must not interleave their buffers)
        self._batch_state = threading.local()

    # -- durability ---------------------------------------------------------------

    def attach_journal(self, journal) -> None:
        """Start journaling every mutation to ``journal``.

        Recovery replays a WAL into a journal-less LMS first, then
        attaches — otherwise every replayed event would be re-logged.
        """
        with self.lock:
            self.journal = journal

    def _emit(self, type_: str, data: Dict[str, object]) -> None:
        """Append one event to the attached journal (no-op without one).

        Called after the mutation succeeded, while still holding the
        locks that serialized it, so per-sitting LSN order is the
        authoritative serialization of that sitting's history.  While a
        batch mutator is in flight on this thread the event is buffered
        instead, and the whole buffer goes to the journal as one
        :meth:`~repro.store.journal.Journal.append_batch`.
        """
        buffer = getattr(self._batch_state, "buffer", None)
        if buffer is not None:
            buffer.append((type_, data))
        elif self.journal is not None:
            self.journal.append(type_, data)

    # -- catalog & enrollment ---------------------------------------------------

    def offer_exam(self, exam: Exam) -> None:
        """Publish an exam as a course offering."""
        with self.lock:
            if exam.exam_id in self._exams:
                raise DuplicateIdError(
                    f"exam {exam.exam_id!r} already offered"
                )
            exam.validate()
            self._exams[exam.exam_id] = exam
            self._enrollment[exam.exam_id] = set()
            if exam.adaptive is not None:
                # install-time precompute: every per-request selection and
                # ability update from here on is a table lookup
                self._adaptive_tables[exam.exam_id] = self._build_table(
                    exam, version=0, overlay=None
                )
            if self.journal is not None:
                from repro.bank.exambank import exam_to_record

                self._emit(
                    "offer", store_events.offer_event(exam_to_record(exam))
                )

    def exam(self, exam_id: str) -> Exam:
        """The offered exam with this id; NotFoundError otherwise."""
        with self.lock.shared():
            try:
                return self._exams[exam_id]
            except KeyError:
                raise NotFoundError(f"no exam {exam_id!r} offered") from None

    def offered_exams(self) -> List[str]:
        """Every offered exam id, in offering order."""
        with self.lock.shared():
            return list(self._exams)

    def register_learner(self, learner: Learner) -> None:
        """Add a learner to the registry."""
        with self.lock:
            self.learners.register(learner)
            self._emit(
                "register",
                store_events.register_event(
                    learner.learner_id, learner.name, learner.email
                ),
            )

    def enroll(self, learner_id: str, exam_id: str) -> None:
        """Enroll a registered learner in an offered exam."""
        with self.lock:
            now = self.clock.now()
            learner = self.learners.get(learner_id)  # existence check
            exam = self.exam(exam_id)
            self._enrollment[exam.exam_id].add(learner.learner_id)
            self.tracking.record(
                EventKind.ENROLLED, learner_id, exam_id, now
            )
            self._emit(
                "enroll",
                store_events.lifecycle_event(learner_id, exam_id, now),
            )

    def enrolled(self, exam_id: str) -> List[str]:
        """Sorted learner ids enrolled in an exam."""
        with self.lock.shared():
            return sorted(self._enrollment.get(exam_id, ()))

    # -- adaptive testing ---------------------------------------------------------

    def _build_table(
        self,
        exam: Exam,
        version: int,
        overlay: "Optional[Dict[str, ItemParameters]]",
    ) -> "ItemInformationTable":
        """The exam's information table: seeded pool + calibration overlay."""
        from repro.adaptive.online import ItemInformationTable

        policy = exam.adaptive
        pool = policy.pool_for(exam)
        if overlay:
            pool.update(overlay)
        return ItemInformationTable.build(
            pool,
            grid_points=policy.grid_points,
            grid_half_width=policy.grid_half_width,
            prior_sd=policy.prior_sd,
            version=version,
        )

    def next_item(self, learner_id: str, exam_id: str) -> Dict[str, object]:
        """The adaptive policy's choice for this sitting, as a payload.

        Read-only (derived state — not journaled): the selection is a
        deterministic function of the sitting's recorded answers, so
        replay re-derives it.  Raises ``SessionStateError`` for fixed
        exams — the route 409s instead of pretending an order exists.
        """
        with obs.span("lms.next_item", exam_id=exam_id), self.lock.shared():
            sitting = self.sitting(learner_id, exam_id)
            with sitting.lock:
                if sitting.adaptive is None:
                    raise SessionStateError(
                        f"exam {exam_id!r} is not adaptive: it has no "
                        f"adaptive policy"
                    )
                return sitting.adaptive.status()

    def calibration_version(self, exam_id: str) -> int:
        """The installed calibration version (0 = authored seeds)."""
        with self.lock.shared():
            return self._calibrations.get(exam_id, (0, None))[0]

    def apply_calibration(
        self,
        exam_id: str,
        version: int,
        parameters: "Dict[str, ItemParameters]",
    ) -> None:
        """Hot-swap an adaptive exam's item parameters (journaled).

        The new table takes effect for sittings **started after** the
        swap.  To keep recovery bit-identical the swap is refused while
        the exam has open adaptive sittings — a sitting must never see
        two tables — and versions must be strictly increasing (replay
        applies the same swaps in the same order, rebuilding the same
        tables).
        """
        from repro.adaptive import online

        with self.lock:
            now = self.clock.now()
            exam = self.exam(exam_id)
            if exam.adaptive is None:
                raise SessionStateError(
                    f"exam {exam_id!r} has no adaptive policy to calibrate"
                )
            current = self._calibrations.get(exam_id, (0, None))[0]
            if int(version) <= current:
                raise SessionStateError(
                    f"calibration v{version} of {exam_id!r} is not newer "
                    f"than the installed v{current}"
                )
            pool_ids = set(exam.adaptive.pool_for(exam))
            unknown = sorted(set(parameters) - pool_ids)
            if unknown:
                raise SessionStateError(
                    f"calibration of {exam_id!r} names items outside the "
                    f"adaptive pool: {unknown}"
                )
            open_sittings = sorted(
                learner_id
                for (learner_id, sat_exam), sitting in self._sittings.items()
                if sat_exam == exam_id
                and sitting.adaptive is not None
                and sitting.session.state
                in (SessionState.IN_PROGRESS, SessionState.SUSPENDED)
            )
            if open_sittings:
                raise SessionStateError(
                    f"cannot hot-swap calibration of {exam_id!r}: "
                    f"{len(open_sittings)} adaptive sitting(s) still open "
                    f"(drain or submit them first)"
                )
            self._install_calibration(exam_id, int(version), parameters)
            self._emit(
                "calibrate",
                store_events.calibrate_event(
                    exam_id,
                    int(version),
                    online.parameters_to_record(parameters),
                    now,
                ),
            )
        obs.count("lms.calibrations.applied")

    def _install_calibration(
        self,
        exam_id: str,
        version: int,
        parameters: "Dict[str, ItemParameters]",
    ) -> None:
        """Record the overlay and rebuild the table (caller validated)."""
        exam = self._exams[exam_id]
        self._calibrations[exam_id] = (version, dict(parameters))
        self._adaptive_tables[exam_id] = self._build_table(
            exam, version, parameters
        )

    def _rebuild_adaptive(
        self, exam: Exam, events: "List[Tuple[str, object]]"
    ) -> "AdaptiveSession":
        """Recreate a sitting's adaptive state from its ordered answer
        events (snapshot restore): selection is deterministic, so
        re-recording the same scored sequence rebuilds the same
        posterior, theta trajectory, and next-item choice bit-for-bit."""
        from repro.adaptive.online import AdaptiveSession

        session = AdaptiveSession.for_exam(
            self._adaptive_tables[exam.exam_id], exam.adaptive
        )
        for item_id, response in events:
            scored = exam.item(item_id).score(response)
            session.record(item_id, bool(scored.correct))
        return session

    # -- delivery ------------------------------------------------------------------

    def start_exam(self, learner_id: str, exam_id: str) -> LmsSitting:
        """Launch a sitting: SCORM launch + API initialize + session start."""
        with obs.span("lms.start_exam", exam_id=exam_id), self.lock:
            sitting = self._start_exam(learner_id, exam_id)
        obs.count("lms.sittings.started")
        return sitting

    def _start_exam(self, learner_id: str, exam_id: str) -> LmsSitting:
        now = self.clock.now()
        exam = self.exam(exam_id)
        learner = self.learners.get(learner_id)
        if learner_id not in self._enrollment[exam_id]:
            raise SessionStateError(
                f"learner {learner_id!r} is not enrolled in {exam_id!r}"
            )
        key = (learner_id, exam_id)
        existing = self._sittings.get(key)
        if existing is not None and existing.session.state in (
            SessionState.IN_PROGRESS,
            SessionState.SUSPENDED,
        ):
            raise SessionStateError(
                f"learner {learner_id!r} already has an open sitting of "
                f"{exam_id!r}"
            )
        api = self.rte.launch(
            learner_id, exam_id, learner_name=learner.name
        )
        if api.LMSInitialize("") != "true":
            raise SessionStateError("SCORM API failed to initialize")
        session = ExamSession(exam, learner_id, clock=self.clock)
        item_order = session.start(now)
        sitting = LmsSitting(
            session=session,
            api=api,
            item_order=item_order,
            lock=InstrumentedRLock(
                self.lock_stats, "sitting", f"{learner_id}:{exam_id}"
            ),
        )
        if exam.adaptive is not None:
            from repro.adaptive.online import AdaptiveSession

            # pin the *current* table: a later calibration swap must not
            # change this sitting's selections mid-exam
            sitting.adaptive = AdaptiveSession.for_exam(
                self._adaptive_tables[exam_id], exam.adaptive
            )
        self._sittings[key] = sitting
        self.tracking.record(
            EventKind.LAUNCHED, learner_id, exam_id, now
        )
        self.monitor.poll(learner_id, exam_id, session.elapsed_seconds(now))
        self._emit(
            "start", store_events.lifecycle_event(learner_id, exam_id, now)
        )
        return sitting

    def sitting(self, learner_id: str, exam_id: str) -> LmsSitting:
        """The in-flight sitting; NotFoundError when none exists."""
        with self.lock.shared():
            try:
                return self._sittings[(learner_id, exam_id)]
            except KeyError:
                raise NotFoundError(
                    f"no sitting of {exam_id!r} by {learner_id!r}"
                ) from None

    def answer(
        self, learner_id: str, exam_id: str, item_id: str, response: object
    ) -> ScoredResponse:
        """Record an answer: session event + CMI interaction + monitor poll."""
        with obs.span("lms.answer", exam_id=exam_id), self.lock.shared():
            scored = self._answer(learner_id, exam_id, item_id, response)
        obs.count("lms.answers.recorded")
        return scored

    def _answer(
        self, learner_id: str, exam_id: str, item_id: str, response: object
    ) -> ScoredResponse:
        sitting = self.sitting(learner_id, exam_id)
        with sitting.lock:
            now = self.clock.now()
            adaptive = sitting.adaptive
            if adaptive is not None:
                # policy enforcement: only the table's current choice is
                # answerable — out-of-policy items 409 before any state,
                # CMI, or journal effect
                expected = adaptive.next_item()
                if expected is None:
                    raise SessionStateError(
                        f"adaptive sitting of {exam_id!r} is complete "
                        f"({adaptive.stop_reason()}); submit it"
                    )
                if item_id != expected:
                    raise SessionStateError(
                        f"adaptive policy expects item {expected!r} next, "
                        f"not {item_id!r}"
                    )
            sitting.session.answer(item_id, response, now)
            item = sitting.session.exam.item(item_id)
            scored = item.score(response)
            if adaptive is not None:
                adaptive.record(item_id, bool(scored.correct))
            self._cmi_record_answer(sitting, item_id, item, scored)
            self.tracking.record(
                EventKind.ANSWERED,
                learner_id,
                exam_id,
                now,
                detail=item_id,
            )
            self.monitor.poll(
                learner_id, exam_id, sitting.session.elapsed_seconds(now)
            )
            self._emit(
                "answer",
                store_events.answer_event(
                    learner_id, exam_id, item_id, response, now
                ),
            )
        return scored

    def answer_batch(
        self,
        learner_id: str,
        exam_id: str,
        answers: "List[Tuple[str, object]]",
        submit: bool = False,
    ) -> Tuple[List[ScoredResponse], Optional[GradedSitting]]:
        """Record K answers atomically under one lock acquisition.

        ``answers`` is a sequence of ``(item_id, response)`` pairs.  The
        whole batch is validated **before** anything is applied — the
        first invalid answer raises its domain error (message prefixed
        with ``answers[i]``) and the sitting, tracking, monitor, and
        journal are all untouched.  On success every answer is applied
        exactly as :meth:`answer` would, sharing one clock sample, and
        the journal receives the batch as a single ``answers`` event in
        one group-committed append — K answers, one fsync.

        With ``submit=True`` the sitting is also submitted and graded
        in the same critical section, and its ``submit`` event rides
        the same durable append.  Returns ``(scored, graded)`` where
        ``graded`` is None unless ``submit`` was requested.
        """
        with obs.span("lms.answer_batch", exam_id=exam_id), \
                self.lock.shared():
            scored, graded = self._answer_batch(
                learner_id, exam_id, answers, submit
            )
        obs.count("lms.answers.recorded", len(scored))
        obs.count("lms.answer_batches")
        if graded is not None:
            obs.count("lms.sittings.submitted")
        return scored, graded

    def _answer_batch(
        self,
        learner_id: str,
        exam_id: str,
        answers: "List[Tuple[str, object]]",
        submit: bool,
    ) -> Tuple[List[ScoredResponse], Optional[GradedSitting]]:
        pairs = [(item_id, response) for item_id, response in answers]
        if not pairs:
            raise ResponseError("answers batch is empty")
        sitting = self.sitting(learner_id, exam_id)
        if sitting.adaptive is not None:
            # the adaptive protocol is strictly per-response: the next
            # item depends on the previous answer, so a batch cannot be
            # validated up front
            raise SessionStateError(
                f"adaptive sittings of {exam_id!r} take one answer at a "
                f"time; answers:batch is not allowed"
            )
        with sitting.lock:
            now = self.clock.now()
            session = sitting.session
            # Phase 1 — validate every answer up front, mirroring the
            # exact check order of ExamSession.answer, so the first bad
            # answer rejects the whole batch before any state or journal
            # change.
            if session.state is not SessionState.IN_PROGRESS:
                raise SessionStateError(
                    f"cannot answer in state {session.state.value}"
                )
            if session.time_expired(now):
                raise TimeLimitExceeded(
                    f"test time of {session.exam.time_limit_seconds}s "
                    f"has expired"
                )
            for index, (item_id, response) in enumerate(pairs):
                try:
                    item = session.exam.item(item_id)
                    item.score(response)
                except Exception as exc:
                    raise type(exc)(
                        f"answers[{index}] ({item_id!r}): {exc}"
                    ) from exc
            # Phase 2 — apply.  Everything below is deterministic given
            # the validated inputs and the single timestamp, so it cannot
            # fail partway: the batch is all-or-nothing.
            scored: List[ScoredResponse] = []
            self._batch_state.buffer = buffer = []
            try:
                for item_id, response in pairs:
                    session.answer(item_id, response, now)
                    item = session.exam.item(item_id)
                    one = item.score(response)
                    self._cmi_record_answer(sitting, item_id, item, one)
                    self.tracking.record(
                        EventKind.ANSWERED,
                        learner_id,
                        exam_id,
                        now,
                        detail=item_id,
                    )
                    self.monitor.poll(
                        learner_id, exam_id, session.elapsed_seconds(now)
                    )
                    scored.append(one)
                buffer.append(
                    (
                        "answers",
                        store_events.answer_batch_event(
                            learner_id, exam_id, pairs, now
                        ),
                    )
                )
                graded = None
                if submit:
                    # its "submit" event lands in the buffer, after ours
                    graded = self._submit(learner_id, exam_id)
            finally:
                self._batch_state.buffer = None
            # still under the sitting lock: the journal's LSN order for
            # this sitting must match the order the batches applied
            if self.journal is not None:
                self.journal.append_batch(buffer)
        return scored, graded

    def _cmi_record_answer(
        self, sitting: LmsSitting, item_id: str, item, scored: ScoredResponse
    ) -> None:
        """Write one answer's ``cmi.interactions.n.*`` set (shared by the
        live path and snapshot restore in :mod:`repro.lms.persistence`)."""
        index = sitting.interaction_count
        api = sitting.api
        api.LMSSetValue(f"cmi.interactions.{index}.id", item_id)
        api.LMSSetValue(
            f"cmi.interactions.{index}.type", _interaction_type(item)
        )
        api.LMSSetValue(
            f"cmi.interactions.{index}.student_response",
            str(scored.selected) if scored.selected is not None else "",
        )
        if scored.correct is not None:
            api.LMSSetValue(
                f"cmi.interactions.{index}.result",
                "correct" if scored.correct else "wrong",
            )
        sitting.interaction_count += 1

    def suspend(self, learner_id: str, exam_id: str) -> None:
        """Pause a sitting; commits SCORM suspend data."""
        with obs.span("lms.suspend", exam_id=exam_id), self.lock.shared():
            self._suspend(learner_id, exam_id)
        obs.count("lms.sittings.suspended")

    def _suspend(self, learner_id: str, exam_id: str) -> None:
        sitting = self.sitting(learner_id, exam_id)
        with sitting.lock:
            now = self.clock.now()
            sitting.session.suspend(now)
            self._cmi_suspend(sitting)
            self.tracking.record(
                EventKind.SUSPENDED, learner_id, exam_id, now
            )
            self._emit(
                "suspend",
                store_events.lifecycle_event(learner_id, exam_id, now),
            )

    def _cmi_suspend(self, sitting: LmsSitting) -> None:
        """Commit the SCORM suspend exit (live path and snapshot restore)."""
        api = sitting.api
        api.LMSSetValue("cmi.core.exit", "suspend")
        api.LMSSetValue(
            "cmi.suspend_data",
            f"answered={len(sitting.session.answered_item_ids())}",
        )
        api.LMSCommit("")

    def resume(self, learner_id: str, exam_id: str) -> None:
        """Continue a suspended sitting (resumable exams only)."""
        with obs.span("lms.resume", exam_id=exam_id), self.lock.shared():
            sitting = self.sitting(learner_id, exam_id)
            with sitting.lock:
                now = self.clock.now()
                sitting.session.resume(now)
                self.tracking.record(
                    EventKind.RESUMED, learner_id, exam_id, now
                )
                self._emit(
                    "resume",
                    store_events.lifecycle_event(learner_id, exam_id, now),
                )
        obs.count("lms.sittings.resumed")

    def submit(self, learner_id: str, exam_id: str) -> GradedSitting:
        """Close and grade a sitting; updates CMI core and learner record."""
        with obs.span("lms.submit", exam_id=exam_id), self.lock.shared():
            graded = self._submit(learner_id, exam_id)
        obs.count("lms.sittings.submitted")
        return graded

    def _submit(self, learner_id: str, exam_id: str) -> GradedSitting:
        sitting = self.sitting(learner_id, exam_id)
        with sitting.lock:
            now = self.clock.now()
            sitting.session.submit(now)
            graded = grade_session(sitting.session)
            self._cmi_finish(sitting, graded)
            # shared result structures: hold the commit mutex only for
            # the appends, not for grading — a slow grade never blocks
            # another learner's submit from committing
            with self._commit_lock:
                self._results.setdefault(exam_id, []).append(graded)
                self.learners.get(learner_id).record_result(
                    exam_id, _lesson_status(graded), graded.percent
                )
                self.tracking.record(
                    EventKind.SUBMITTED, learner_id, exam_id, now
                )
                self.tracking.record(
                    EventKind.GRADED,
                    learner_id,
                    exam_id,
                    now,
                    detail=f"{graded.percent:.1f}%",
                )
                live = self._live.get(exam_id)
                if live is not None:
                    response = sittings_to_responses(
                        sitting.session.exam, [graded]
                    )[0]
                    # drop any earlier sitting by this learner
                    live.invalidate(response.examinee_id)
                    live.add_sitting(response)
            self._emit(
                "submit",
                store_events.lifecycle_event(learner_id, exam_id, now),
            )
        return graded

    def _cmi_finish(self, sitting: LmsSitting, graded: GradedSitting) -> None:
        """Write the final CMI score/status and finish the API session
        (live path and snapshot restore)."""
        api = sitting.api
        api.LMSSetValue("cmi.core.score.raw", f"{graded.percent:.1f}")
        api.LMSSetValue("cmi.core.score.min", "0")
        api.LMSSetValue("cmi.core.score.max", "100")
        api.LMSSetValue("cmi.core.lesson_status", _lesson_status(graded))
        api.LMSFinish("")

    # -- proctoring ---------------------------------------------------------------

    def capture_frame(self, learner_id: str, exam_id: str):
        """Proctor-triggered monitor capture of an open sitting.

        Unlike the passive per-interaction :meth:`ExamMonitor.poll`
        schedule, this captures unconditionally, records a
        ``MONITOR_CAPTURE`` tracking event, and journals it — so a
        recovered LMS reproduces proctor snapshots too.
        """
        with obs.span("lms.capture_frame", exam_id=exam_id), \
                self.lock.shared():
            sitting = self.sitting(learner_id, exam_id)
            with sitting.lock:
                now = self.clock.now()
                frame = self.monitor.capture(
                    learner_id, exam_id, sitting.session.elapsed_seconds(now)
                )
                self.tracking.record(
                    EventKind.MONITOR_CAPTURE, learner_id, exam_id, now
                )
                self._emit(
                    "monitor",
                    store_events.lifecycle_event(learner_id, exam_id, now),
                )
        obs.count("lms.frames.captured")
        return frame

    # -- results & analysis -----------------------------------------------------

    def results_for(self, exam_id: str) -> List[GradedSitting]:
        """Every graded sitting of an exam, submission order."""
        with self.lock.shared(), self._commit_lock:
            return list(self._results.get(exam_id, ()))

    def questionnaire_summaries(self, exam_id: str):
        """Tabulate every questionnaire item's responses (§3.2 VI).

        Returns one :class:`~repro.core.questionnaire_analysis.
        QuestionnaireSummary` per questionnaire item, over all submitted
        sittings."""
        from repro.core.questionnaire_analysis import tabulate_questionnaire
        from repro.items.questionnaire import QuestionnaireItem

        with self.lock.shared():
            exam = self.exam(exam_id)
            sittings = self.results_for(exam_id)
        summaries = []
        for item in exam.items:
            if not isinstance(item, QuestionnaireItem):
                continue
            responses = [
                sitting.scores[item.item_id].selected
                if item.item_id in sitting.scores
                else None
                for sitting in sittings
            ]
            summaries.append(
                tabulate_questionnaire(item.question, responses, item.scale)
            )
        return summaries

    def _latest_sittings(self, exam_id: str) -> List[GradedSitting]:
        """Submitted sittings deduped to one per learner (latest wins).

        A learner who re-sat an exam appears once; previously duplicate
        learner ids silently mis-grouped the cohort (the score table kept
        the last sitting while the option matrices counted every sitting).
        """
        return _dedupe_latest(self.results_for(exam_id))

    def _cohort_responses(self, exam: Exam) -> List[ExamineeResponses]:
        """Analysis-ready responses, one per learner (latest sitting wins)."""
        return sittings_to_responses(
            exam, self._latest_sittings(exam.exam_id)
        )

    def analyze_exam(
        self,
        exam_id: str,
        engine: str = "columnar",
        split: GroupSplit = GroupSplit(),
        policy: SignalPolicy = DEFAULT_POLICY,
        spread_threshold: float = DEFAULT_SPREAD_THRESHOLD,
    ) -> CohortAnalysis:
        """Run the §4.1 analysis over every submitted sitting.

        ``split``, ``policy``, and ``spread_threshold`` are forwarded to
        :func:`~repro.core.question_analysis.analyze_cohort` (they used
        to be silently unreachable from the LMS, so an operator could not
        analyze with a non-default extreme-group fraction).
        """
        with obs.span("lms.analyze_exam", exam_id=exam_id, engine=engine), \
                self.lock.shared():
            exam = self.exam(exam_id)
            responses = self._cohort_responses(exam)
            return analyze_cohort(
                responses,
                exam.question_specs(),
                split=split,
                policy=policy,
                spread_threshold=spread_threshold,
                engine=engine,
            )

    def live_analysis(self, exam_id: str) -> CohortAnalysis:
        """The §4.1 analysis kept warm across submissions.

        The first call seeds a :class:`LiveCohortAnalysis` from the
        submitted sittings; afterwards every :meth:`submit` folds the new
        sitting in incrementally, so serving the current analysis never
        re-walks the raw responses.
        """
        with obs.span("lms.live_analysis", exam_id=exam_id), \
                self.lock.shared():
            exam = self.exam(exam_id)
            # the commit mutex serializes seeding against in-flight
            # submits (which fold into the live analysis under it)
            with self._commit_lock:
                return self._live_locked(exam).analysis()

    def _live_locked(self, exam: Exam) -> LiveCohortAnalysis:
        """The exam's warm analysis, seeded if absent.  Caller holds the
        shard lock (shared or exclusive) **and** ``_commit_lock``."""
        live = self._live.get(exam.exam_id)
        if live is None:
            obs.count("lms.live_analysis.seeded")
            live = LiveCohortAnalysis(exam.question_specs())
            sittings = _dedupe_latest(
                list(self._results.get(exam.exam_id, ()))
            )
            for response in sittings_to_responses(exam, sittings):
                live.add_sitting(response)
            self._live[exam.exam_id] = live
        return live

    def analysis_partial(self, exam_id: str) -> Dict[str, object]:
        """This LMS's cohort as a scatter-gather partial.

        A sharded deployment calls this on every worker and merges the
        payloads with :func:`repro.core.columnar.merge_partials`; the
        merged matrix analyzes bit-identically to a single process that
        held all the sittings (see ``repro.cluster``).  An exam with no
        submissions yet returns an empty partial — the gather side
        treats that as zero rows, not an error.
        """
        with obs.span("lms.analysis_partial", exam_id=exam_id), \
                self.lock.shared():
            exam = self.exam(exam_id)
            with self._commit_lock:
                return self._live_locked(exam).export_partial()

    def report_for(
        self,
        exam_id: str,
        concepts: Optional[List[str]] = None,
        engine: str = "columnar",
        split: GroupSplit = GroupSplit(),
    ) -> AssessmentReport:
        """The full §4 report: number/signal analysis, figures, spec table.

        ``engine`` and ``split`` are forwarded to the cohort analysis
        (previously hardwired to the defaults).
        """
        with obs.span("lms.report_for", exam_id=exam_id), \
                self.lock.shared():
            return self._report_for(exam_id, concepts, engine, split)

    def _report_for(
        self,
        exam_id: str,
        concepts: Optional[List[str]],
        engine: str,
        split: GroupSplit,
    ) -> AssessmentReport:
        exam = self.exam(exam_id)
        # the same latest-sitting-per-learner set feeds the cohort, the
        # correctness flags, and the time figures, so a re-sitter is not
        # double-counted in any of them
        sittings = self._latest_sittings(exam_id)
        responses = sittings_to_responses(exam, sittings)
        specs = exam.question_specs()
        cohort = analyze_cohort(responses, specs, split=split, engine=engine)
        correct_flags = {
            response.examinee_id: [
                selection == spec.correct
                for selection, spec in zip(response.selections, specs)
            ]
            for response in responses
        }
        answer_times = [sitting.answer_times for sitting in sittings]
        return build_report(
            exam.title,
            cohort,
            correct_flags=correct_flags,
            answer_times=answer_times,
            time_limit_seconds=exam.time_limit_seconds,
            spec_table=exam.specification_table(concepts=concepts),
            specs=specs,
        )


def _dedupe_latest(sittings: List[GradedSitting]) -> List[GradedSitting]:
    """Dedupe graded sittings to one per learner, latest submission wins.

    pop-then-insert ranks a re-sitter at their most recent submission,
    matching the warm LiveCohortAnalysis path (boundary ties in the 25%
    split break by cohort order).
    """
    latest: Dict[str, GradedSitting] = {}
    for sitting in sittings:
        latest.pop(sitting.learner_id, None)
        latest[sitting.learner_id] = sitting
    return list(latest.values())


def _interaction_type(item) -> str:
    from repro.items.choice import MultipleChoiceItem
    from repro.items.completion import CompletionItem
    from repro.items.matching import MatchItem
    from repro.items.questionnaire import QuestionnaireItem
    from repro.items.truefalse import TrueFalseItem

    if isinstance(item, MultipleChoiceItem):
        return "choice"
    if isinstance(item, TrueFalseItem):
        return "true-false"
    if isinstance(item, CompletionItem):
        return "fill-in"
    if isinstance(item, MatchItem):
        return "matching"
    if isinstance(item, QuestionnaireItem):
        return "likert"
    return "performance"


def _lesson_status(graded: GradedSitting) -> str:
    if not graded.is_fully_graded():
        return "incomplete"
    return "passed" if graded.percent >= 60.0 else "failed"
