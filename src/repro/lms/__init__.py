"""The LMS substrate (paper §2.4, §5): learner management, tracking,
the on-line exam monitor, and the LMS itself."""

from repro.lms.admin import Administrator
from repro.lms.learners import Learner, LearnerRegistry
from repro.lms.lms import Lms, LmsSitting
from repro.lms.monitor import CapturedFrame, ExamMonitor
from repro.lms.tracking import EventKind, TrackingEvent, TrackingService
from repro.lms.persistence import load_lms, save_lms
from repro.lms.transcripts import Transcript, TranscriptRow, build_transcript

__all__ = [
    "Lms",
    "LmsSitting",
    "Learner",
    "LearnerRegistry",
    "TrackingService",
    "TrackingEvent",
    "EventKind",
    "ExamMonitor",
    "CapturedFrame",
    "Administrator",
    "Transcript",
    "TranscriptRow",
    "build_transcript",
    "save_lms",
    "load_lms",
]
