"""Setup shim.

The execution environment has no ``wheel`` package and no network, so
``pip install -e .`` cannot build a PEP 660 editable wheel.  This shim
lets the legacy ``setup.py develop`` / ``pip install -e . --no-build-isolation``
path work offline.  All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
