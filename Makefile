# Convenience targets for the MINE assessment reproduction.

.PHONY: install test bench examples artifacts clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# regenerate every paper table/figure with the printed artifacts visible
artifacts:
	pytest benchmarks/ --benchmark-only -s

examples:
	@for f in examples/*.py; do echo "== $$f"; python $$f > /dev/null || exit 1; done; echo "all examples ok"

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks report-artifacts
	find . -name __pycache__ -type d -exec rm -rf {} +
