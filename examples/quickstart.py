"""Quickstart: analyse one exam's results with the paper's §4.1 pipeline.

Run with::

    python examples/quickstart.py

Builds a tiny cohort by hand (no simulation), runs the difficulty /
discrimination / rules / signal analysis, and prints the teacher report —
the shortest possible tour of the core API.
"""

from repro import ExamineeResponses, GroupSplit, QuestionSpec, analyze_cohort
from repro.core import render_number_representation, render_signal_board


def main() -> None:
    # An exam of three 4-option questions; "A" keys throughout.
    questions = [
        QuestionSpec(options=("A", "B", "C", "D"), correct="A", subject="loops"),
        QuestionSpec(options=("A", "B", "C", "D"), correct="A", subject="types"),
        QuestionSpec(options=("A", "B", "C", "D"), correct="A", subject="types"),
    ]

    # Twelve students: four strong, four middling, four weak.
    cohort = []
    for index in range(12):
        if index < 4:  # strong: everything right
            selections = ["A", "A", "A"]
        elif index < 8:  # middling: miss the last question
            selections = ["A", "A", "C"]
        else:  # weak: only the first question right
            selections = ["A", "B", "D"]
        cohort.append(ExamineeResponses.of(f"student-{index:02d}", selections))

    # The paper's method: top/bottom 25% split, D = PH-PL, P = (PH+PL)/2,
    # four diagnostic rules, traffic-light signals.
    analysis = analyze_cohort(cohort, questions, split=GroupSplit(fraction=0.25))

    print("Number representation (paper 4.1.1):")
    print(render_number_representation(analysis.questions))
    print()
    print("Signal board (paper Figure 2):")
    print(render_signal_board(analysis.signals))
    print()
    for question in analysis.questions:
        print(f"Question {question.number}:")
        print(question.advice.render())
        print()


if __name__ == "__main__":
    main()
