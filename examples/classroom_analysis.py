"""Classroom analysis: a full simulated class through the LMS.

Run with::

    python examples/classroom_analysis.py

A class of 44 (the paper's worked-example class size) sits the classroom
exam through the LMS — SCORM launch, monitored sitting, submission — and
the teacher gets the complete §4 report: number representation, signal
board, per-question advice, the time and score/difficulty figures, the
two-way specification table, and learner feedback for the weakest
student.
"""

from repro import (
    Learner,
    Lms,
    classroom_exam,
    classroom_parameters,
    make_population,
)
from repro.adaptive import build_feedback
from repro.delivery.clock import ManualClock
from repro.sim import sample_item_time, sample_selection

import random


def main() -> None:
    exam = classroom_exam()
    parameters = classroom_parameters()
    clock = ManualClock()
    lms = Lms(clock=clock)
    lms.offer_exam(exam)

    # The paper's worked example uses a class of 44 (groups of 11).
    population = make_population(44, mean_ability=0.0, seed=2004)
    rng = random.Random(2004)

    for learner in population:
        lms.register_learner(
            Learner(learner_id=learner.learner_id, name=learner.learner_id)
        )
        lms.enroll(learner.learner_id, exam.exam_id)
        lms.start_exam(learner.learner_id, exam.exam_id)
        for item in exam.items:
            params = parameters[item.item_id]
            clock.advance(sample_item_time(rng, learner, params))
            selection = sample_selection(
                rng, learner, params, item.labels, item.correct_label
            )
            if selection is not None:
                lms.answer(
                    learner.learner_id, exam.exam_id, item.item_id, selection
                )
        lms.submit(learner.learner_id, exam.exam_id)

    # The teacher's report (§4.1 + §4.2).
    report = lms.report_for(
        exam.exam_id, concepts=["sorting", "hashing", "trees", "recursion"]
    )
    print(report.render())
    print()

    # Proctoring: what the monitor captured.
    sittings = lms.monitor.monitored_sittings()
    total_frames = sum(
        len(lms.monitor.frames_for(learner_id, exam_id))
        for learner_id, exam_id in sittings
    )
    print(f"exam monitor: {total_frames} frames across "
          f"{len(sittings)} sittings")
    print()

    # Learner-side feedback (the paper's future-work item) for the
    # weakest performer.
    results = lms.results_for(exam.exam_id)
    weakest = min(results, key=lambda sitting: sitting.percent)
    print(build_feedback(exam, weakest).render())


if __name__ == "__main__":
    main()
