"""Authoring workflow: the paper's §5 pipeline end to end.

Run with::

    python examples/authoring_workflow.py

Authors problems of every §3.2 style, stores them in the problem
database, searches it, assembles an exam with a presentation group and a
template, renders a problem the way the authoring GUI lays it out
(Figures 3-4), and finally emits the §5.5 SCORM package.
"""

import tempfile
from pathlib import Path

from repro import ContentPackage, ExamBuilder, MultipleChoiceItem, package_exam
from repro.core.cognition import CognitionLevel
from repro.bank import ItemBank, Query, search
from repro.items import (
    CompletionItem,
    EssayItem,
    MatchItem,
    QuestionnaireItem,
    TrueFalseItem,
    apply_template,
    default_choice_template,
    render_item,
    render_layout,
)


def author_problems() -> ItemBank:
    """One problem of each §3.2 style, into the problem database."""
    bank = ItemBank()
    bank.add(
        MultipleChoiceItem.build(
            "mc-hash",
            "Which collision strategy probes successive slots?",
            ["linear probing", "chaining", "double hashing", "cuckoo"],
            correct_index=0,
            subject="hashing",
            cognition_level=CognitionLevel.KNOWLEDGE,
            hint="think of a queue at adjacent counters",
        )
    )
    bank.add(
        TrueFalseItem(
            item_id="tf-hash",
            question="A perfect hash function guarantees zero collisions.",
            correct_value=True,
            subject="hashing",
            cognition_level=CognitionLevel.COMPREHENSION,
        )
    )
    bank.add(
        CompletionItem(
            item_id="cl-hash",
            question="With chaining, worst-case lookup is O(___).",
            accepted_answers=[["n"]],
            subject="hashing",
            cognition_level=CognitionLevel.COMPREHENSION,
        )
    )
    bank.add(
        MatchItem(
            item_id="ma-structs",
            question="Match each structure to its lookup complexity.",
            premises=["hash table (avg)", "balanced BST", "sorted array"],
            options=["O(1)", "O(log n)", "O(n)"],
            key={
                "hash table (avg)": "O(1)",
                "balanced BST": "O(log n)",
                "sorted array": "O(log n)",
            },
            subject="structures",
            cognition_level=CognitionLevel.ANALYSIS,
        )
    )
    bank.add(
        EssayItem(
            item_id="es-design",
            question="Design a hash function for URLs; justify your choices.",
            model_answer="mixing, avalanche, modulo table size...",
            max_points=10,
            subject="hashing",
            cognition_level=CognitionLevel.SYNTHESIS,
        )
    )
    bank.add(
        QuestionnaireItem(
            item_id="qn-course",
            question="The hashing unit was well paced.",
            scale=["disagree", "neutral", "agree"],
        )
    )
    return bank


def main() -> None:
    bank = author_problems()
    print(f"problem database holds {len(bank)} problems "
          f"(subjects: {', '.join(bank.subjects())})\n")

    # Search the database the way the paper's authoring tool does.
    hashing = search(bank, Query().with_subject("hashing"))
    print("search subject=hashing ->", [item.item_id for item in hashing])
    knowledge = search(
        bank, Query().with_cognition_level(CognitionLevel.KNOWLEDGE)
    )
    print("search level=knowledge ->", [item.item_id for item in knowledge])
    print()

    # Assemble the exam: bank problems + one authored on the spot.
    own_item = TrueFalseItem(
        item_id="tf-own",
        question="Open addressing degrades as the load factor nears 1.",
        correct_value=True,
        subject="hashing",
        cognition_level=CognitionLevel.APPLICATION,
    )
    exam = (
        ExamBuilder("hash-unit-exam", "Hashing Unit Exam")
        .add_from_bank(bank, "mc-hash", "tf-hash", "cl-hash", "ma-structs")
        .add_item(own_item)
        .group("objective-part", ["mc-hash", "tf-hash", "tf-own"],
               template_name="default-choice")
        .time_limit(30 * 60)
        .build()
    )
    print(f"assembled exam {exam.exam_id!r}: {len(exam.items)} items, "
          f"max score {exam.max_score():g}\n")

    # Render one problem both plainly and through a §5.3 template layout.
    choice = exam.item("mc-hash")
    print("plain rendering:")
    print(render_item(choice, number=1))
    print()
    template = default_choice_template()
    template.move_slot("question", 2, 0)  # "moving each item" (Figure 4)
    print("template layout (question slot moved to x=2):")
    print(render_layout(apply_template(choice, template)))
    print()

    # §5.5: SCORM format package output service.
    with tempfile.TemporaryDirectory() as scratch:
        out = Path(scratch) / "hash-unit-exam.zip"
        payload = package_exam(exam, out)
        package = ContentPackage(payload)
        print(f"SCORM package written: {out.name} ({len(payload)} bytes)")
        print("package files:")
        for name in sorted(package.names()):
            print(f"  {name}")


if __name__ == "__main__":
    main()
