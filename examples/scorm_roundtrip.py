"""SCORM round trip: package → repository → reuse → RTE conversation.

Run with::

    python examples/scorm_roundtrip.py

Publishes an exam to the SCORM-compatible external repository, re-imports
it as another instructor would, then replays the exact API conversation a
browser SCO has with the LMS — LMSInitialize, LMSSetValue for answers and
score, LMSCommit, LMSFinish — including a suspend/resume cycle.
"""

import tempfile
from pathlib import Path

from repro import classroom_exam
from repro.scorm import RunTimeEnvironment, PackageRepository


def main() -> None:
    exam = classroom_exam(question_count=5)

    with tempfile.TemporaryDirectory() as scratch:
        # Publish to the external repository (§5: Figure 3's second DB).
        repository = PackageRepository(Path(scratch) / "repository")
        entry = repository.publish(exam)
        print(f"published {entry.identifier!r}: {entry.item_count} items "
              f"as {entry.filename}")
        for catalog_entry in repository.list_entries():
            print(f"  catalog: {catalog_entry.identifier} - "
                  f"{catalog_entry.title}")

        # Another instructor reuses the packaged exam.
        reused = repository.fetch_exam(exam.exam_id)
        print(f"re-imported exam {reused.exam_id!r} with "
              f"{len(reused.items)} items\n")

    # The SCORM RTE conversation, exactly as APIWrapper.js would drive it.
    rte = RunTimeEnvironment()
    api = rte.launch("student-7", exam.exam_id, learner_name="Student Seven")
    print("LMSInitialize ->", api.LMSInitialize(""))
    print("entry:", api.LMSGetValue("cmi.core.entry"))
    print("student:", api.LMSGetValue("cmi.core.student_name"))

    # Answer two questions as CMI interactions.
    for index, (item_id, response, result) in enumerate(
        [("q01", "alpha", "correct"), ("q02", "gamma", "wrong")]
    ):
        api.LMSSetValue(f"cmi.interactions.{index}.id", item_id)
        api.LMSSetValue(f"cmi.interactions.{index}.type", "choice")
        api.LMSSetValue(f"cmi.interactions.{index}.student_response", response)
        api.LMSSetValue(f"cmi.interactions.{index}.result", result)
    print("interactions recorded:", api.LMSGetValue("cmi.interactions._count"))

    # Suspend mid-exam...
    api.LMSSetValue("cmi.suspend_data", "answered=2")
    api.LMSSetValue("cmi.core.exit", "suspend")
    print("LMSCommit ->", api.LMSCommit(""))
    print("LMSFinish ->", api.LMSFinish(""))

    # ...and resume in a fresh attempt.
    api2 = rte.launch("student-7", exam.exam_id)
    api2.LMSInitialize("")
    print("\nsecond launch entry:", api2.LMSGetValue("cmi.core.entry"))
    print("restored suspend data:", api2.LMSGetValue("cmi.suspend_data"))
    api2.LMSSetValue("cmi.core.score.raw", "60")
    api2.LMSSetValue("cmi.core.lesson_status", "passed")
    api2.LMSFinish("")

    record = rte.record("student-7", exam.exam_id)
    print(f"\nfinal record: attempts={record.attempts} "
          f"status={record.lesson_status} score={record.score_raw}")

    # The error handler (§5.5): a bad call and its diagnosis.
    api3 = rte.launch("student-8", exam.exam_id)
    api3.LMSInitialize("")
    outcome = api3.LMSSetValue("cmi.core.student_id", "spoofed")
    code = api3.LMSGetLastError()
    print(f"\nwrite to read-only element -> {outcome}, error {code}: "
          f"{api3.LMSGetErrorString(code)}")


if __name__ == "__main__":
    main()
