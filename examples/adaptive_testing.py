"""Adaptive testing: the paper's future-work extension in action.

Run with::

    python examples/adaptive_testing.py

Calibrates an item pool, runs computerized adaptive sessions for learners
of different abilities, and compares CAT precision against a fixed-form
test of the same length — the standard demonstration that adaptive
selection needs fewer items for the same measurement error.
"""

import random

from repro.adaptive import (
    CatConfig,
    CatSession,
    ItemParameters,
    estimate_ability_eap,
    probability_correct,
)


def calibrated_pool(size: int = 60, seed: int = 5) -> dict:
    rng = random.Random(seed)
    return {
        f"item-{index:03d}": ItemParameters(
            a=rng.uniform(0.8, 2.2), b=rng.uniform(-3.0, 3.0)
        )
        for index in range(size)
    }


def simulated_answers(true_ability: float, pool: dict, seed: int):
    rng = random.Random(seed)

    def answer(item_id: str) -> bool:
        return rng.random() < probability_correct(true_ability, pool[item_id])

    return answer


def main() -> None:
    pool = calibrated_pool()
    print(f"calibrated pool: {len(pool)} items\n")

    print("adaptive sessions (max 15 items, stop at SE <= 0.35):")
    for true_theta in (-2.0, 0.0, 2.0):
        session = CatSession(
            pool=dict(pool),
            config=CatConfig(max_items=15, se_target=0.35),
        )
        estimate, se = session.run(simulated_answers(true_theta, pool, seed=1))
        print(
            f"  true ability {true_theta:+.1f}: estimated {estimate:+.2f} "
            f"(SE {se:.2f}) after {len(session.administered)} items"
        )
        print(f"    items administered: {', '.join(session.administered[:6])}"
              + (" ..." if len(session.administered) > 6 else ""))

    # Fixed-form comparison: the same number of items, chosen blindly.
    print("\nfixed form vs CAT at equal length (10 items, ability +2.0):")
    true_theta = 2.0
    fixed_ids = sorted(pool)[:10]
    fixed_params = [pool[item_id] for item_id in fixed_ids]
    answer = simulated_answers(true_theta, pool, seed=2)
    fixed_responses = [answer(item_id) for item_id in fixed_ids]
    fixed_estimate, fixed_se = estimate_ability_eap(
        fixed_responses, fixed_params
    )
    cat = CatSession(
        pool=dict(pool),
        config=CatConfig(max_items=10, min_items=10, se_target=0.01),
    )
    cat_estimate, cat_se = cat.run(simulated_answers(true_theta, pool, seed=2))
    print(f"  fixed form: estimate {fixed_estimate:+.2f}, SE {fixed_se:.3f}")
    print(f"  adaptive:   estimate {cat_estimate:+.2f}, SE {cat_se:.3f}")
    print(f"  -> adaptive SE is "
          f"{(1 - cat_se / fixed_se) * 100:.0f}% smaller at equal length")


if __name__ == "__main__":
    main()
