"""Item lifecycle: find a broken question, fix it, verify the fix.

Run with::

    python examples/item_lifecycle.py

The paper's central promise: "The suggestions and results can tell
teachers why a question is not suitable and how to correct it.  Teachers
can see the analysis of test result and fix problematic questions."

This example closes that loop.  A question with a dead distractor is
administered, the analysis flags it (Rule 1, low allure), the teacher
rewrites the distractor in the versioned problem bank, the exam is
re-administered, and the analysis confirms the fix — with the whole edit
history auditable.
"""

import random

from repro import (
    ExamBuilder,
    GroupSplit,
    ItemParameters,
    MultipleChoiceItem,
    analyze_cohort,
    make_population,
)
from repro.bank.versioning import VersionedItemBank
from repro.sim.learner_model import sample_selection


def administer(exam, parameters, seed):
    """Simulate 120 students sitting the exam; return the analysis."""
    learners = make_population(120, seed=seed)
    rng = random.Random(seed + 1)
    specs = exam.question_specs()
    responses = []
    from repro import ExamineeResponses

    for learner in learners:
        selections = []
        for item, spec in zip(exam.analyzable_items(), specs):
            selections.append(
                sample_selection(
                    rng, learner, parameters[item.item_id],
                    spec.options, spec.correct,
                )
            )
        responses.append(ExamineeResponses.of(learner.learner_id, selections))
    return analyze_cohort(responses, specs, split=GroupSplit())


def main() -> None:
    bank = VersionedItemBank()

    # r1: the question as first written - option D is absurd, nobody
    # will ever pick it (a dead distractor).
    flawed = MultipleChoiceItem.build(
        "sort-worst",
        "Which sort has the best worst-case comparison bound?",
        ["mergesort", "quicksort", "bubble sort", "a potato"],
        correct_index=0,
        subject="sorting",
    )
    bank.add(flawed, author="jason", note="first draft")

    # eight anchor questions so the score split reflects overall ability,
    # not just the flawed item (a 2-question exam would make the low
    # group exactly the students who missed question 1)
    anchor_ids = []
    for index in range(8):
        anchor_id = f"anchor-{index}"
        bank.add(
            MultipleChoiceItem.build(
                anchor_id,
                f"Anchor question {index} about sorting?",
                ["right", "wrong 1", "wrong 2", "wrong 3"],
                correct_index=0,
                subject="sorting",
            ),
            author="jason",
            note="first draft",
        )
        anchor_ids.append(anchor_id)

    exam = (
        ExamBuilder("sorting-quiz", "Sorting Quiz")
        .add_from_bank(bank.bank, "sort-worst", *anchor_ids)
        .build()
    )
    # the dead distractor: attraction 0 for option D; moderate a + some
    # guessing keeps the low group attempting the item, as a real class
    # would
    parameters = {
        "sort-worst": ItemParameters(
            a=0.9, b=0.2, c=0.15,
            attractions={"B": 1.0, "C": 1.0, "D": 0.0},
        ),
    }
    for index, anchor_id in enumerate(anchor_ids):
        parameters[anchor_id] = ItemParameters(
            a=1.2, b=-1.0 + 0.25 * index, c=0.1
        )

    print("=== first administration ===")
    analysis = administer(exam, parameters, seed=10)
    question = analysis.question(1)
    print(f"question 1: D={question.discrimination:.2f} "
          f"P={question.difficulty:.2f} signal={question.signal.value}")
    for match in question.rules.matches:
        print(f"  {match.explanation}")
    assert question.rules.rule_fired(1), "the dead distractor must be flagged"
    print(f"  distraction: {question.distraction.describe()}")
    print()

    # The teacher follows the advice: rewrite the unused distractor.
    print("=== teacher fixes the flagged distractor ===")
    fixed = MultipleChoiceItem.build(
        "sort-worst",
        "Which sort has the best worst-case comparison bound?",
        ["mergesort", "quicksort", "bubble sort", "insertion sort"],
        correct_index=0,
        subject="sorting",
    )
    bank.update(fixed, author="jason", note="replaced absurd distractor D")
    for line in bank.audit_trail("sort-worst"):
        print(f"  {line}")
    print()

    # Re-administer with the fixed exam: D now plausible to weak students.
    exam2 = (
        ExamBuilder("sorting-quiz-v2", "Sorting Quiz (fixed)")
        .add_from_bank(bank.bank, "sort-worst", *anchor_ids)
        .build()
    )
    parameters["sort-worst"] = ItemParameters(a=0.9, b=0.2, c=0.15)

    print("=== second administration (after the fix) ===")
    analysis2 = administer(exam2, parameters, seed=11)
    question2 = analysis2.question(1)
    print(f"question 1: D={question2.discrimination:.2f} "
          f"P={question2.difficulty:.2f} signal={question2.signal.value}")
    if question2.rules.rule_fired(1):
        print("  still flagged!")
    else:
        print("  Rule 1 no longer fires - every distractor now attracts "
              "some low-group students.")
    print(f"  distraction: {question2.distraction.describe()}")

    # The old wording is still recallable for exams that used it.
    original = bank.revision("sort-worst", 1).restore()
    print(f"\nrevision 1 text preserved: ...{original.choices[-1].text!r}")


if __name__ == "__main__":
    main()
