"""Report artifacts: every machine- and human-readable output at once.

Run with::

    python examples/report_artifacts.py

Simulates a class, then writes the full artifact set a modern deployment
of the paper's system would publish: the teacher's text report, the JSON
report, the §4.1.1 table as CSV, and SVG versions of the Figure 2 signal
board and the §4.2.1 figures — into ``./report-artifacts/``.
"""

from pathlib import Path

from repro import (
    GroupSplit,
    analyze_cohort,
    build_report,
    classroom_exam,
    classroom_parameters,
    make_population,
    simulate_sitting_data,
)
from repro.core.export import (
    number_representation_csv,
    report_to_json,
)
from repro.core.significance import discrimination_significance
from repro.core.svg_figures import (
    svg_score_difficulty_figure,
    svg_signal_board,
    svg_time_figure,
)

OUT_DIR = Path("report-artifacts")


def main() -> None:
    exam = classroom_exam()
    data = simulate_sitting_data(
        exam, classroom_parameters(), make_population(60, seed=7), seed=8
    )
    cohort = analyze_cohort(data.responses, data.specs, split=GroupSplit())
    correct_flags = {
        response.examinee_id: [
            selection == spec.correct
            for selection, spec in zip(response.selections, data.specs)
        ]
        for response in data.responses
    }
    report = build_report(
        exam.title,
        cohort,
        correct_flags=correct_flags,
        answer_times=data.answer_times,
        time_limit_seconds=exam.time_limit_seconds,
        spec_table=exam.specification_table(),
        specs=data.specs,
    )

    OUT_DIR.mkdir(exist_ok=True)
    artifacts = {
        "report.txt": report.render(),
        "report.json": report_to_json(report),
        "number_representation.csv": number_representation_csv(report),
        "signal_board.svg": svg_signal_board(cohort.signals),
        "time_figure.svg": svg_time_figure(report.time_analysis),
        "score_difficulty.svg": svg_score_difficulty_figure(
            report.score_difficulty
        ),
    }
    for name, content in artifacts.items():
        (OUT_DIR / name).write_text(content, encoding="utf-8")
        print(f"wrote {OUT_DIR / name} ({len(content)} chars)")

    # A bonus the paper didn't have: significance of each question's
    # discrimination, so "fix" advice is backed by a p-value.
    print("\nper-question discrimination significance (alpha = 0.05):")
    group_size = len(cohort.high_group)
    for question in cohort.questions:
        result = discrimination_significance(
            question.matrix.high[question.matrix.correct],
            group_size,
            question.matrix.low[question.matrix.correct],
            group_size,
        )
        marker = "significant" if result.significant else "noise-level"
        print(
            f"  Q{question.number:02d}: D={question.discrimination:+.2f} "
            f"p={result.p_value:.4f} ({marker})"
        )


if __name__ == "__main__":
    main()
