"""Engine shoot-out — columnar vs reference §4.1 analysis at scale.

No table in the paper reports runtime, but the roadmap's target is heavy
traffic: the analysis runs after every submission in the LMS.  This bench
compares the two engines on identical cohorts at 1k/10k (and 100k with
``MINE_BENCH_FULL=1``) examinees × 50 questions, asserts they produce
equal results, and measures the incremental ``add_sitting`` path that
keeps a live analysis warm instead of recomputing from raw responses.
"""

import os
import random
import time

from repro.core.columnar import LiveCohortAnalysis, fast_analyze_cohort
from repro.core.question_analysis import (
    ExamineeResponses,
    QuestionSpec,
    analyze_cohort,
)

from conftest import show

try:
    import numpy  # noqa: F401 - only to pick assertion strictness

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    HAVE_NUMPY = False

QUESTIONS = 50
OPTIONS = ("A", "B", "C", "D", "E")
SIZES = (1_000, 10_000) + (
    (100_000,) if os.environ.get("MINE_BENCH_FULL") else ()
)
#: the acceptance threshold at 10k x 50; the stdlib fallback still wins,
#: but only the vectorized path is held to the full 5x bar
SPEEDUP_FLOOR = 5.0 if HAVE_NUMPY else 1.5


def synth_cohort(size, seed=0):
    """A plain random cohort — cheap to generate, ability-correlated so
    the split and rules see realistic structure."""
    rng = random.Random(seed)
    specs = [
        QuestionSpec(options=OPTIONS, correct=rng.choice(OPTIONS))
        for _ in range(QUESTIONS)
    ]
    correct = [spec.correct for spec in specs]
    responses = []
    for index in range(size):
        p_correct = min(0.95, max(0.05, rng.gauss(0.55, 0.2)))
        selections = [
            key if rng.random() < p_correct else rng.choice(OPTIONS)
            for key in correct
        ]
        responses.append(ExamineeResponses.of(f"s{index:06d}", selections))
    return responses, specs


def best_of(runs, fn):
    timings = []
    for _ in range(runs):
        start = time.perf_counter()
        fn()
        timings.append(time.perf_counter() - start)
    return min(timings)


def test_bench_columnar_vs_reference(benchmark):
    datasets = {size: synth_cohort(size, seed=size) for size in SIZES}

    # equality spot-check at the smallest size (the differential suite
    # covers this exhaustively; here it guards the bench inputs)
    responses, specs = datasets[SIZES[0]]
    assert fast_analyze_cohort(responses, specs) == analyze_cohort(
        responses, specs, engine="reference"
    )

    lines = ["examinees   reference     columnar     speedup"]
    speedups = {}
    for size in SIZES:
        responses, specs = datasets[size]
        # best-of-several with an untimed warm-up pass each: the assertion
        # below must not flake on a transiently loaded machine
        runs = 5 if size <= 10_000 else 1
        analyze_cohort(responses, specs, engine="reference")
        ref = best_of(
            runs,
            lambda: analyze_cohort(responses, specs, engine="reference"),
        )
        fast_analyze_cohort(responses, specs)
        col = best_of(runs, lambda: fast_analyze_cohort(responses, specs))
        speedups[size] = ref / col
        lines.append(
            f"{size:>9}   {ref * 1000:>8.1f} ms   {col * 1000:>8.1f} ms   "
            f"{speedups[size]:>6.1f}x"
        )
    show("Columnar vs reference engine (50 questions)", "\n".join(lines))

    assert speedups[10_000] >= SPEEDUP_FLOOR

    responses, specs = datasets[10_000]
    result = benchmark(lambda: fast_analyze_cohort(responses, specs))
    assert len(result.questions) == QUESTIONS


def test_bench_columnar_incremental(benchmark):
    responses, specs = synth_cohort(10_000, seed=7)
    tail = responses[-200:]
    body = responses[:-200]

    live = LiveCohortAnalysis(specs)
    for response in body:
        live.add_sitting(response)
    live.analysis()  # warm the cache

    # (a) add_sitting alone is O(Q): its cost must not scale with N
    def time_adds(base_size, seed):
        extra, _ = synth_cohort(200, seed=seed)
        extra = [
            ExamineeResponses.of(f"x{seed}_{i:04d}", r.selections)
            for i, r in enumerate(extra)
        ]
        small = LiveCohortAnalysis(specs)
        for response in responses[:base_size]:
            small.add_sitting(response)
        start = time.perf_counter()
        for response in extra:
            small.add_sitting(response)
        return (time.perf_counter() - start) / len(extra)

    per_add_small = time_adds(1_000, seed=21)
    per_add_large = time_adds(9_800, seed=22)

    # (b) one submission folded into a warm analysis vs full recomputes
    def warm_update(response):
        live.invalidate(response.examinee_id)
        live.add_sitting(response)
        return live.analysis()

    start = time.perf_counter()
    for response in tail:
        warm_update(response)
    warm = (time.perf_counter() - start) / len(tail)

    full_fast = best_of(3, lambda: fast_analyze_cohort(responses, specs))
    full_ref = best_of(
        1, lambda: analyze_cohort(responses, specs, engine="reference")
    )

    show(
        "Incremental add_sitting vs full recompute (10k x 50)",
        "\n".join(
            [
                f"add_sitting at N=1k:    {per_add_small * 1e6:>9.1f} us",
                f"add_sitting at N=9.8k:  {per_add_large * 1e6:>9.1f} us",
                f"warm update (add+analyze): {warm * 1000:>8.2f} ms",
                f"full columnar recompute:   {full_fast * 1000:>8.2f} ms",
                f"full reference recompute:  {full_ref * 1000:>8.2f} ms",
                f"warm vs columnar: {full_fast / warm:.1f}x, "
                f"vs reference: {full_ref / warm:.1f}x",
            ]
        ),
    )

    # sublinear: folding one sitting in is far cheaper than any full
    # recompute, and the per-add cost is flat in cohort size
    assert warm < full_fast
    assert warm < full_ref
    assert per_add_large < per_add_small * 8 + 50e-6  # flat, jitter-tolerant

    final = benchmark(lambda: warm_update(tail[-1]))
    assert len(final.scores) == len(responses)
