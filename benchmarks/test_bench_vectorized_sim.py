"""Simulation engine shoot-out — scalar vs vectorized cohort generation.

PR 1 made the §4.1 *analysis* columnar; this bench measures the layer
that feeds it.  The scalar engine samples every selection and response
time in a per-learner Python loop and materializes one
``ExamineeResponses`` per learner; the vectorized engine
(:mod:`repro.sim.vectorized`) generates the whole cohort as arrays and
hands the code buffer straight to ``ResponseMatrix.from_arrays``.

Measured at 1k and 10k learners x 50 questions (100k sharded with
``MINE_BENCH_FULL=1``), asserting the acceptance ratio: vectorized
generate+analyze ≥ 5x the scalar path at 10k x 50 when numpy is
present.  Results are recorded into ``BENCH_sim.json`` at the repo root
so future PRs can track the perf trajectory.
"""

import json
import os
import time

from repro.core.columnar import SKIP
from repro.sim.population import make_population
from repro.sim.vectorized import (
    simulate_sharded,
    simulate_sitting_arrays,
)
from repro.sim.workloads import (
    classroom_exam,
    classroom_parameters,
    simulate_sitting_data,
)

from conftest import show

try:
    import numpy  # noqa: F401 - only to pick assertion strictness

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    HAVE_NUMPY = False

QUESTIONS = 50
SIZES = (1_000, 10_000)
FULL = bool(os.environ.get("MINE_BENCH_FULL"))
#: the acceptance threshold for end-to-end generate+analyze at 10k x 50;
#: the stdlib fallback produces the same arrays at loop speed, so only
#: the numpy path is held to the full 5x bar
SPEEDUP_FLOOR = 5.0 if HAVE_NUMPY else 0.8

ARTIFACT = os.path.join(os.path.dirname(__file__), "..", "BENCH_sim.json")


def best_of(runs, fn):
    timings = []
    for _ in range(runs):
        start = time.perf_counter()
        fn()
        timings.append(time.perf_counter() - start)
    return min(timings)


def write_artifact(payload):
    payload = dict(payload)
    payload["questions"] = QUESTIONS
    payload["numpy"] = HAVE_NUMPY
    with open(ARTIFACT, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def test_bench_scalar_vs_vectorized(benchmark):
    exam = classroom_exam(QUESTIONS)
    parameters = classroom_parameters(QUESTIONS)
    cohorts = {size: make_population(size, seed=size) for size in SIZES}

    generation = {}
    end_to_end = {}
    lines = [
        "learners    scalar gen   vector gen   gen-speedup   "
        "scalar e2e   vector e2e   e2e-speedup"
    ]
    for size in SIZES:
        learners = cohorts[size]
        runs = 3 if size <= 1_000 else 1

        def scalar_gen():
            return simulate_sitting_data(exam, parameters, learners, seed=1)

        def vector_gen():
            return simulate_sitting_arrays(exam, parameters, learners, seed=1)

        def scalar_e2e():
            return scalar_gen().analyze()

        def vector_e2e():
            return vector_gen().analyze()

        scalar_gen()  # warm-up (imports, caches)
        vector_gen()
        gen_s = best_of(runs, scalar_gen)
        gen_v = best_of(runs, vector_gen)
        e2e_s = best_of(runs, scalar_e2e)
        e2e_v = best_of(runs, vector_e2e)
        generation[size] = {
            "scalar_s": round(gen_s, 6),
            "vectorized_s": round(gen_v, 6),
            "speedup": round(gen_s / gen_v, 2),
        }
        end_to_end[size] = {
            "scalar_s": round(e2e_s, 6),
            "vectorized_s": round(e2e_v, 6),
            "speedup": round(e2e_s / e2e_v, 2),
        }
        lines.append(
            f"{size:>8}   {gen_s * 1000:>8.1f} ms  {gen_v * 1000:>8.1f} ms"
            f"   {gen_s / gen_v:>8.1f}x   {e2e_s * 1000:>8.1f} ms"
            f"  {e2e_v * 1000:>8.1f} ms   {e2e_s / e2e_v:>8.1f}x"
        )
    show(
        f"Scalar vs vectorized simulation ({QUESTIONS} questions)",
        "\n".join(lines),
    )

    # the two engines must agree on the analyzed shape (deep equivalence
    # is asserted distributionally in tests/sim/test_vectorized.py)
    sample = simulate_sitting_arrays(
        exam, parameters, cohorts[SIZES[0]], seed=1
    ).analyze()
    assert len(sample.questions) == QUESTIONS

    payload = {"generation": generation, "end_to_end": end_to_end}

    if FULL:
        payload["sharded"] = _bench_sharded(exam, parameters)
    write_artifact(payload)

    assert end_to_end[10_000]["speedup"] >= SPEEDUP_FLOOR

    learners = cohorts[10_000]
    result = benchmark(
        lambda: simulate_sitting_arrays(
            exam, parameters, learners, seed=1
        ).analyze()
    )
    assert len(result.scores) == 10_000


def _bench_sharded(exam, parameters):
    """100k x 50 streamed through the sharded driver with bounded memory."""
    import tracemalloc

    size = 100_000
    tracemalloc.start()
    baseline, _ = tracemalloc.get_traced_memory()
    start = time.perf_counter()
    matrix = simulate_sharded(
        exam, parameters, size, shard_size=10_000, seed=3
    )
    analysis = matrix.analyze()
    elapsed = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    assert len(analysis.scores) == size
    assert len(matrix) == size
    # bounded peak: the 1-byte-per-cell matrix (~5 MB) + ids + one
    # shard's float temporaries — far below what a full-cohort list of
    # per-learner objects would need (hundreds of MB at this scale)
    peak_mb = (peak - baseline) / 1e6
    assert peak_mb < 400, f"sharded peak memory {peak_mb:.0f} MB"
    show(
        "Sharded 100k x 50 (MINE_BENCH_FULL)",
        f"generate+analyze: {elapsed:.2f} s, peak allocations: "
        f"{peak_mb:.0f} MB",
    )
    return {
        str(size): {
            "seconds": round(elapsed, 3),
            "peak_mb": round(peak_mb, 1),
            "shard_size": 10_000,
        }
    }


def test_bench_sharded_smoke(benchmark):
    """The sharded driver stays correct at CI scale (20k x 50)."""
    exam = classroom_exam(QUESTIONS)
    parameters = classroom_parameters(QUESTIONS)

    def run():
        return simulate_sharded(
            exam, parameters, 20_000, shard_size=5_000, seed=9, omit_rate=0.1
        )

    matrix = run()
    analysis = matrix.analyze()
    assert len(analysis.scores) == 20_000
    assert len(set(matrix.examinee_ids)) == 20_000
    omitted = bytes(matrix._codes).count(SKIP)
    assert abs(omitted / (20_000 * QUESTIONS) - 0.1) < 0.01

    elapsed = best_of(1, lambda: run().analyze())
    show(
        "Sharded smoke (20k x 50)",
        f"generate+analyze: {elapsed * 1000:.0f} ms "
        f"({'numpy' if HAVE_NUMPY else 'stdlib fallback'})",
    )
    benchmark(lambda: run().analyze())
