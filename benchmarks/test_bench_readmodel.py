"""Read-model economics — what the CQRS fold costs, and what it buys.

Four measurements, written to ``BENCH_readmodel.json``:

* **fold apply throughput**: events/second through
  ``ReadModel.apply_all`` over pre-read records (no journal I/O in the
  timed region) — the ceiling of the follower thread;
* **rebuild throughput**: records/second through ``rebuild()``, the
  differential oracle that re-folds the entire journal from LSN 0 —
  this is the path whose cost *grows with history*;
* **tail throughput**: records/second through ``JournalTailer.poll``
  draining a full journal, the feed under the follower;
* **checkpointed query latency, flat vs 10x history**: the acceptance
  evidence for the O(1) claim.  The same cohort re-sits the same exam
  until one journal holds ~10x the records of the other; both carry a
  read-model checkpoint at the tip.  ``as_of`` (nearest checkpoint +
  bounded suffix) must answer in ~constant time on both — the CI
  tripwire allows 3x jitter, the artifact records the precise ratio —
  while ``rebuild`` over the long journal demonstrably pays the O(n)
  bill the checkpoint avoids.
"""

import json
import os
import time

from repro.delivery.clock import ManualClock
from repro.lms.learners import Learner
from repro.lms.lms import Lms
from repro.readmodel import ReadModel, as_of, rebuild, save_readmodel
from repro.sim.workloads import classroom_exam
from repro.store import Journal, read_records
from repro.store.tail import JournalTailer

from conftest import show

ARTIFACT = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_readmodel.json"
)

#: the O(1)-query acceptance: target is flat (1.0); CI tolerates jitter
TARGET_LATENCY_RATIO = 1.5
MAX_CI_LATENCY_RATIO = 3.0

LEARNERS = 40
QUESTIONS = 6
BASE_ROUNDS = 3
GROWN_ROUNDS = 30  # ~10x the sitting history of BASE_ROUNDS
QUERY_REPS = 30

#: small segments so both histories actually rotate: the bounded-suffix
#: guarantee is O(checkpoint + one segment scan), and it only bites
#: once the journal spans more than one segment (with the 4 MiB default
#: both of these cohorts would fit in a single file and every position
#: scan would read the whole history)
SEGMENT_BYTES = 64 * 1024


def journaled_history(wal_dir, rounds):
    """One cohort re-sitting the classroom exam ``rounds`` times.

    Re-sits (not a bigger cohort) are what grow the journal while the
    *model state* stays bounded — the shape under the flat-latency
    claim.  Returns the journal's final LSN.
    """
    journal = Journal.open(
        wal_dir, fsync="never", segment_bytes=SEGMENT_BYTES
    )
    lms = Lms(clock=ManualClock(10.0), journal=journal)
    exam = classroom_exam(QUESTIONS)
    lms.offer_exam(exam)
    for index in range(LEARNERS):
        learner_id = f"s{index:03d}"
        lms.register_learner(Learner(learner_id=learner_id, name=learner_id))
        lms.enroll(learner_id, exam.exam_id)
    for round_no in range(rounds):
        for index in range(LEARNERS):
            learner_id = f"s{index:03d}"
            lms.start_exam(learner_id, exam.exam_id)
            for question in range(1, QUESTIONS + 1):
                lms.clock.advance(1.0)
                lms.answer(
                    learner_id, exam.exam_id, f"q{question:02d}",
                    "ABCDE"[(index + question + round_no) % 5],
                )
            lms.submit(learner_id, exam.exam_id)
    last_lsn = journal.last_lsn
    journal.close()
    return last_lsn


def timed_rebuild(wal_dir):
    start = time.perf_counter()
    model = rebuild(wal_dir)
    return model, time.perf_counter() - start


def query_latency_ms(wal_dir, tip, reps=QUERY_REPS):
    """Best-of-N ``as_of`` latency at a tip-covering checkpoint."""
    best = float("inf")
    replayed_seen = None
    for _ in range(reps):
        start = time.perf_counter()
        _, replayed = as_of(wal_dir, lsn=tip)
        best = min(best, time.perf_counter() - start)
        replayed_seen = replayed
    # the checkpoint sits exactly at the tip: the suffix must be empty,
    # or the measurement is not the O(1) path at all
    assert replayed_seen == 0, replayed_seen
    return best * 1000.0


def test_bench_readmodel(benchmark, tmp_path):
    base_dir = tmp_path / "wal-1x"
    grown_dir = tmp_path / "wal-10x"
    base_tip = journaled_history(base_dir, BASE_ROUNDS)
    grown_tip = journaled_history(grown_dir, GROWN_ROUNDS)

    # -- fold apply throughput (records pre-read, pure fold timed) --------
    records = list(read_records(grown_dir))
    fold = ReadModel()
    start = time.perf_counter()
    fold.apply_all(records)
    fold_seconds = time.perf_counter() - start
    assert fold.applied_lsn == grown_tip
    apply_stats = {
        "events": len(records),
        "seconds": round(fold_seconds, 4),
        "events_per_second": round(len(records) / fold_seconds, 1),
    }

    # -- rebuild (journal I/O + fold), at both history sizes --------------
    base_model, base_rebuild_s = timed_rebuild(base_dir)
    grown_model, grown_rebuild_s = timed_rebuild(grown_dir)
    assert base_model.applied_lsn == base_tip
    assert grown_model.applied_lsn == grown_tip
    rebuild_stats = {
        "records_1x": base_tip,
        "records_10x": grown_tip,
        "seconds_1x": round(base_rebuild_s, 4),
        "seconds_10x": round(grown_rebuild_s, 4),
        "records_per_second": round(grown_tip / grown_rebuild_s, 1),
    }

    # -- tail throughput: one drain over the full journal -----------------
    tailer = JournalTailer(grown_dir)
    start = time.perf_counter()
    drained = tailer.poll()
    tail_seconds = time.perf_counter() - start
    assert len(drained) == grown_tip
    tail_stats = {
        "records": len(drained),
        "seconds": round(tail_seconds, 4),
        "records_per_second": round(len(drained) / tail_seconds, 1),
        "segments_followed": tailer.segments_followed,
    }

    # -- checkpointed query latency, 1x vs 10x history --------------------
    save_readmodel(base_model, base_dir)
    save_readmodel(grown_model, grown_dir)
    base_ms = query_latency_ms(base_dir, base_tip)
    grown_ms = query_latency_ms(grown_dir, grown_tip)
    ratio = grown_ms / base_ms
    query_stats = {
        "history_growth": round(grown_tip / base_tip, 2),
        "asof_1x_ms": round(base_ms, 3),
        "asof_10x_ms": round(grown_ms, 3),
        "latency_ratio": round(ratio, 3),
        "target_latency_ratio": TARGET_LATENCY_RATIO,
        "rebuild_cost_ratio": round(grown_rebuild_s / base_rebuild_s, 2),
    }

    # pytest-benchmark timing of the hot query over the long history
    benchmark(lambda: as_of(grown_dir, lsn=grown_tip))

    payload = {
        "apply": apply_stats,
        "rebuild": rebuild_stats,
        "tail": tail_stats,
        "query": query_stats,
    }
    with open(ARTIFACT, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    show(
        "Analytics read model",
        "\n".join(
            [
                f"fold apply:      "
                f"{apply_stats['events_per_second']:>10.1f} events/s",
                f"rebuild:         "
                f"{rebuild_stats['records_per_second']:>10.1f} rec/s "
                f"({grown_tip} records)",
                f"tail drain:      "
                f"{tail_stats['records_per_second']:>10.1f} rec/s "
                f"({tail_stats['segments_followed']} segments)",
                f"as_of @1x:       {base_ms:>10.3f} ms "
                f"({base_tip} records of history)",
                f"as_of @10x:      {grown_ms:>10.3f} ms "
                f"({grown_tip} records of history)",
                f"latency ratio:   {ratio:>10.3f} "
                f"(target ~{TARGET_LATENCY_RATIO}, CI "
                f"< {MAX_CI_LATENCY_RATIO}; rebuild pays "
                f"{query_stats['rebuild_cost_ratio']}x)",
            ]
        ),
    )

    # shape assertions: the fold keeps up with any realistic feed ...
    assert apply_stats["events_per_second"] > 500
    assert rebuild_stats["records_per_second"] > 200
    assert tail_stats["records_per_second"] > 1000
    # ... the history really did grow an order of magnitude ...
    assert query_stats["history_growth"] > 5.0
    # ... rebuild pays for that growth, the checkpointed query does not
    assert query_stats["rebuild_cost_ratio"] > 1.5
    assert ratio <= MAX_CI_LATENCY_RATIO, (
        f"checkpointed as_of slowed {ratio:.2f}x when history grew "
        f"{query_stats['history_growth']}x — the O(1) claim is broken "
        f"(CI ceiling {MAX_CI_LATENCY_RATIO}x)"
    )
