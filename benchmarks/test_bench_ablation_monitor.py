"""Ablation — the on-line exam monitor's overhead.

The paper adds picture capture to every sitting ("monitor function
captures the client picture for monitoring the exam progress").  This
ablation measures what that costs: the same class of 44 is run with the
monitor enabled (30 s capture interval), with an aggressive 5 s interval,
and disabled, comparing frames stored and wall-clock per pipeline run.
The shape claim: capture volume scales with the interval, and the
monitor's cost stays a small fraction of the pipeline.
"""

import random

from repro.delivery.clock import ManualClock
from repro.lms.learners import Learner
from repro.lms.lms import Lms
from repro.lms.monitor import ExamMonitor
from repro.sim.learner_model import sample_selection
from repro.sim.population import make_population
from repro.sim.workloads import classroom_exam, classroom_parameters

from conftest import show


def run_class(monitor, seed=5):
    exam = classroom_exam()
    parameters = classroom_parameters()
    clock = ManualClock()
    lms = Lms(clock=clock, monitor=monitor)
    lms.offer_exam(exam)
    rng = random.Random(seed)
    for learner in make_population(44, seed=seed):
        lms.register_learner(
            Learner(learner_id=learner.learner_id, name=learner.learner_id)
        )
        lms.enroll(learner.learner_id, exam.exam_id)
        lms.start_exam(learner.learner_id, exam.exam_id)
        for item in exam.items:
            clock.advance(rng.uniform(20, 80))
            selection = sample_selection(
                rng, learner, parameters[item.item_id],
                item.labels, item.correct_label,
            )
            if selection is not None:
                lms.answer(
                    learner.learner_id, exam.exam_id, item.item_id, selection
                )
        lms.submit(learner.learner_id, exam.exam_id)
    return lms


def total_frames(lms):
    return sum(
        len(lms.monitor.frames_for(learner_id, exam_id))
        for learner_id, exam_id in lms.monitor.monitored_sittings()
    )


def test_bench_ablation_monitor(benchmark):
    configurations = {
        "disabled": ExamMonitor(enabled=False),
        "30s interval": ExamMonitor(interval_seconds=30.0),
        "5s interval": ExamMonitor(interval_seconds=5.0),
    }
    frames = {}
    for label, monitor in configurations.items():
        lms = run_class(monitor)
        frames[label] = total_frames(lms)
    lines = [
        f"{label:<14} {count:>5} frames captured"
        for label, count in frames.items()
    ]
    show("Ablation: exam-monitor capture volume", "\n".join(lines))

    # Shape: no frames when disabled; tighter interval captures more.
    assert frames["disabled"] == 0
    assert frames["5s interval"] > frames["30s interval"] > 0
    # every answer polls at most once, so frames are bounded by polls
    # (44 learners x (1 launch + 10 answers))
    assert frames["5s interval"] <= 44 * 11

    def monitored_run():
        return run_class(ExamMonitor(interval_seconds=30.0), seed=6)

    lms = benchmark.pedantic(monitored_run, rounds=3, iterations=1)
    assert len(lms.results_for("classroom-mid")) == 44
