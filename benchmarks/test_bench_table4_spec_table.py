"""Table 4 / §4.2.1 figure (3) — the two-way specification table.

Regenerates the cognition-level × concept table for the classroom exam
(both the SUM(Xi) counts and the TRUE/FALSE view of §4.2.2) and checks
the §4.2.2 identities.
"""

from repro.core.cognition import COGNITIVE_LEVELS

from conftest import show


def test_bench_table4_spec_table(benchmark, classroom):
    exam, _, _ = classroom
    concepts = ["sorting", "hashing", "trees", "recursion"]
    table = exam.specification_table(concepts=concepts)

    show("Table 4: two-way specification table (counts)", table.render())
    show("Table 4: TRUE/FALSE view (§4.2.2)", table.render(boolean=True))

    # §4.2.2 identities: total = Σ level sums = Σ concept sums.
    assert table.total() == 10
    assert sum(table.level_sums()) == 10
    assert sum(table.concept_sum(c) for c in concepts) == 10

    # Every exam concept is covered; the declared-but-unexamined
    # "recursion" row is all FALSE.
    for concept in ("sorting", "hashing", "trees"):
        assert table.concept_sum(concept) > 0
    assert table.lost_concepts() == ["recursion"]

    # TRUE/FALSE semantics match counts.
    for concept in concepts:
        for level in COGNITIVE_LEVELS:
            assert table.has(concept, level) == (table.count(concept, level) > 0)

    def rebuild():
        return exam.specification_table(concepts=concepts)

    result = benchmark(rebuild)
    assert result.total() == 10
