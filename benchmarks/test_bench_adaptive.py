"""Adaptive-delivery economics — what per-response item selection costs.

Three measurements, written to ``BENCH_adaptive.json``:

* **table lookup vs naive IRT selection**: the tentpole's O(1) claim.
  ``ItemInformationTable.select`` is a precomputed row argmax;
  ``select_next_item`` re-evaluates Fisher information across the whole
  pool per call.  Both must pick the *same item* (the table is exact at
  grid abilities, not an approximation) while the table wins on time —
  the CI gate asserts the speedup, which is the acceptance evidence
  that the hot path runs **zero IRT math per request**;
* **next-item p99 over HTTP vs the fixed answer route**: adaptive
  delivery adds one GET per answer; both routes must stay inside the
  serving milestone's 50 ms p99;
* **vectorized vs scalar adaptive cohorts**: learners/second through
  ``simulate_adaptive_cohort`` with both engines, which administer
  identical sittings from shared pre-drawn randomness.
"""

import json
import os
import random
import time

from repro.adaptive.cat import select_next_item
from repro.adaptive.online import ItemInformationTable
from repro.server.app import ExamServer
from repro.server.loadgen import run_loadgen
from repro.sim.adaptive_cohort import simulate_adaptive_cohort
from repro.sim.learner_model import ItemParameters
from repro.sim.population import make_population
from repro.sim.vectorized import HAVE_NUMPY
from repro.sim.workloads import classroom_adaptive_exam

from conftest import show

ARTIFACT = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_adaptive.json"
)

POOL_SIZE = 60
GRID_POINTS = 61
SELECTIONS = 3000
#: the zero-IRT-per-request acceptance gate: the precomputed row argmax
#: must beat recomputing the pool's information per call.  The target
#: tracks the artifact; CI tolerates shared-runner jitter.
TARGET_TABLE_SPEEDUP = 10.0
MIN_TABLE_SPEEDUP = 2.0

HTTP_LEARNERS = 40
HTTP_QUESTIONS = 10
MAX_NEXT_ITEM_P99_MS = 50.0

COHORT_LEARNERS = 300
COHORT_QUESTIONS = 20


def merge_artifact(updates):
    """Read-modify-write ``BENCH_adaptive.json``: each bench owns its
    own keys and must not clobber the others'."""
    payload = {}
    if os.path.exists(ARTIFACT):
        try:
            with open(ARTIFACT) as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            payload = {}
    payload.update(updates)
    with open(ARTIFACT, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def test_bench_table_vs_naive_selection():
    rng = random.Random(29)
    pool = {
        f"q{index:03d}": ItemParameters(
            a=rng.uniform(0.5, 2.0), b=rng.uniform(-2.5, 2.5)
        )
        for index in range(POOL_SIZE)
    }
    table = ItemInformationTable.build(pool, grid_points=GRID_POINTS)
    # mid-sitting shape: a quarter of the pool already administered,
    # abilities spread over the grid
    administered = set(sorted(pool)[:: 4])
    thetas = [table.grid[index % GRID_POINTS] for index in range(SELECTIONS)]

    start = time.perf_counter()
    table_choices = [table.select(theta, administered) for theta in thetas]
    table_seconds = time.perf_counter() - start

    start = time.perf_counter()
    naive_choices = [
        select_next_item(theta, pool, administered) for theta in thetas
    ]
    naive_seconds = time.perf_counter() - start

    # exactness first: the table is the same argmax, only precomputed
    assert table_choices == naive_choices
    speedup = naive_seconds / table_seconds

    merge_artifact(
        {
            "selection": {
                "pool_items": POOL_SIZE,
                "grid_points": GRID_POINTS,
                "selections": SELECTIONS,
                "table_us_per_select": round(
                    table_seconds / SELECTIONS * 1e6, 3
                ),
                "naive_us_per_select": round(
                    naive_seconds / SELECTIONS * 1e6, 3
                ),
                "speedup": round(speedup, 2),
                "target_speedup": TARGET_TABLE_SPEEDUP,
            }
        }
    )
    show(
        f"Next-item selection ({POOL_SIZE}-item pool)",
        f"table {table_seconds / SELECTIONS * 1e6:.2f} us/select, "
        f"naive IRT {naive_seconds / SELECTIONS * 1e6:.2f} us/select "
        f"-> {speedup:.1f}x (target {TARGET_TABLE_SPEEDUP:.0f}x)",
    )
    assert speedup >= MIN_TABLE_SPEEDUP, (
        f"table select only {speedup:.2f}x over naive IRT, "
        f"need >= {MIN_TABLE_SPEEDUP}x — IRT math is back on the hot path"
    )


def test_bench_next_item_route():
    with ExamServer(max_in_flight=64) as server:
        adaptive_report = run_loadgen(
            server.url,
            learners=HTTP_LEARNERS,
            questions=HTTP_QUESTIONS,
            seed=7,
            workers=4,
            adaptive=True,
        )
    with ExamServer(max_in_flight=64) as server:
        fixed_report = run_loadgen(
            server.url,
            learners=HTTP_LEARNERS,
            questions=HTTP_QUESTIONS,
            seed=7,
            workers=4,
        )

    next_item = adaptive_report.routes["next_item"]
    adaptive_answer = adaptive_report.routes["answer"]
    fixed_answer = fixed_report.routes["answer"]
    merge_artifact(
        {
            "http": {
                "workload": (
                    f"{HTTP_LEARNERS} adaptive sittings over HTTP vs the "
                    f"same cohort on the fixed {HTTP_QUESTIONS}-item exam"
                ),
                "next_item_p99_ms": round(next_item.p99_ms, 3),
                "adaptive_answer_p99_ms": round(adaptive_answer.p99_ms, 3),
                "fixed_answer_p99_ms": round(fixed_answer.p99_ms, 3),
                "adaptive_answers_posted": adaptive_report.answers_posted,
                "fixed_answers_posted": fixed_report.answers_posted,
            }
        }
    )
    show(
        "Adaptive delivery over HTTP",
        f"next-item p99 {next_item.p99_ms:.2f} ms, adaptive answer p99 "
        f"{adaptive_answer.p99_ms:.2f} ms, fixed answer p99 "
        f"{fixed_answer.p99_ms:.2f} ms; adaptive cohort posted "
        f"{adaptive_report.answers_posted} answers vs "
        f"{fixed_report.answers_posted} fixed",
    )
    assert adaptive_report.errors == 0
    assert fixed_report.errors == 0
    # the CAT saving: the policy budget stops sittings early
    assert adaptive_report.answers_posted < fixed_report.answers_posted
    assert next_item.p99_ms < MAX_NEXT_ITEM_P99_MS, (
        f"next-item p99 {next_item.p99_ms:.2f} ms, "
        f"need < {MAX_NEXT_ITEM_P99_MS} ms"
    )


def test_bench_adaptive_cohort_engines():
    exam = classroom_adaptive_exam(COHORT_QUESTIONS, max_items=10)
    learners = make_population(COHORT_LEARNERS, seed=17)

    start = time.perf_counter()
    scalar = simulate_adaptive_cohort(exam, learners, seed=3, engine="scalar")
    scalar_seconds = time.perf_counter() - start

    start = time.perf_counter()
    vector = simulate_adaptive_cohort(
        exam, learners, seed=3, engine="vectorized"
    )
    vector_seconds = time.perf_counter() - start

    # parity is part of the contract, not just speed
    assert vector.item_sequences == scalar.item_sequences
    assert vector.response_flags == scalar.response_flags

    scalar_rate = COHORT_LEARNERS / scalar_seconds
    vector_rate = COHORT_LEARNERS / vector_seconds
    merge_artifact(
        {
            "cohort": {
                "learners": COHORT_LEARNERS,
                "pool_items": COHORT_QUESTIONS,
                "have_numpy": HAVE_NUMPY,
                "scalar_learners_per_s": round(scalar_rate, 1),
                "vectorized_learners_per_s": round(vector_rate, 1),
                "speedup": round(vector_rate / scalar_rate, 2),
            }
        }
    )
    show(
        f"Adaptive cohorts ({COHORT_LEARNERS} learners)",
        f"scalar {scalar_rate:.0f} learners/s, vectorized "
        f"{vector_rate:.0f} learners/s "
        f"({vector_rate / scalar_rate:.1f}x, numpy={HAVE_NUMPY})",
    )
    if HAVE_NUMPY:
        assert vector_rate > scalar_rate, (
            f"vectorized engine ({vector_rate:.0f}/s) did not beat the "
            f"scalar loop ({scalar_rate:.0f}/s)"
        )
