"""Extension — whole-test reliability (KR-20 / α / SEM).

Completes the §4.2 "total test statistic" toolbox: sweeps exam length on
the simulated classroom population and regenerates the classic
Spearman-Brown shape — reliability rises with test length while the
*relative* SEM falls — plus the KR-20 ≡ α identity for dichotomous items.
"""

import pytest

from repro.core.reliability import (
    cronbach_alpha,
    kr20,
    standard_error_of_measurement,
)
from repro.sim.learner_model import ItemParameters
from repro.sim.population import make_population
from repro.sim.workloads import simulate_sitting_data
from repro.exams.authoring import ExamBuilder
from repro.items.choice import MultipleChoiceItem

from conftest import show

LENGTHS = (5, 10, 20, 40)


def exam_of_length(length):
    builder = ExamBuilder(f"len-{length}", f"{length}-item exam")
    parameters = {}
    for index in range(length):
        item_id = f"i{index:02d}"
        builder.add_item(
            MultipleChoiceItem.build(
                item_id, f"Item {index}?", ["a", "b", "c", "d"], correct_index=0
            )
        )
        parameters[item_id] = ItemParameters(
            a=1.4, b=-1.5 + 3.0 * index / max(length - 1, 1)
        )
    return builder.build(), parameters


def correctness_matrix(data):
    return [
        [selection == spec.correct
         for selection, spec in zip(response.selections, data.specs)]
        for response in data.responses
    ]


def test_bench_reliability(benchmark):
    learners = make_population(250, seed=41)
    rows = []
    for length in LENGTHS:
        exam, parameters = exam_of_length(length)
        data = simulate_sitting_data(exam, parameters, learners, seed=42)
        matrix = correctness_matrix(data)
        reliability = kr20(matrix)
        totals = [sum(1.0 for flag in row if flag) for row in matrix]
        sem = standard_error_of_measurement(totals, max(reliability, 0.0))
        rows.append((length, reliability, sem, sem / length))
    lines = ["items  KR-20   SEM(points)  SEM/length"]
    for length, reliability, sem, relative in rows:
        lines.append(
            f"{length:>5}  {reliability:.3f}   {sem:.3f}        {relative:.4f}"
        )
    show("Extension: reliability vs test length", "\n".join(lines))

    # Spearman-Brown shape: longer tests are more reliable...
    reliabilities = [row[1] for row in rows]
    assert reliabilities == sorted(reliabilities)
    assert reliabilities[-1] > 0.75
    # ...and relative SEM shrinks.
    relative_sems = [row[3] for row in rows]
    assert relative_sems[-1] < relative_sems[0]

    # KR-20 == alpha for dichotomous scoring.
    exam, parameters = exam_of_length(20)
    data = simulate_sitting_data(exam, parameters, learners, seed=43)
    matrix = correctness_matrix(data)
    as_scores = [[1.0 if flag else 0.0 for flag in row] for row in matrix]
    assert kr20(matrix) == pytest.approx(cronbach_alpha(as_scores))

    result = benchmark(kr20, matrix)
    assert result <= 1.0
