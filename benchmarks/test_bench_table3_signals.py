"""Table 3 + the question no.2 / no.6 worked examples.

The paper works two questions from a class of 44 (groups of 11):

* no.2 — PH = 10/11 ≈ 0.91, PL = 4/11 ≈ 0.36, D = 0.55 > 0.3 → green,
  P = 0.635;
* no.6 — PH = 5/11 = 0.45, PL = 4/11 = 0.36, D = 0.09 → red band, and
  Rule 1 flags option A ("The allure of option A is low").

The bench reproduces both numbers exactly (to the paper's rounding) and
times the single-question analysis.
"""

import pytest

from repro.core.question_analysis import analyze_matrix
from repro.core.rules import OptionMatrix
from repro.core.signals import DEFAULT_POLICY, Signal
from repro.core.significance import discrimination_significance

from conftest import show

QUESTION_2 = OptionMatrix.from_rows([0, 0, 10, 1], [3, 2, 4, 2], correct="C")
QUESTION_6 = OptionMatrix.from_rows([1, 1, 4, 5], [0, 2, 4, 4], correct="D")


def test_bench_table3_signals(benchmark):
    analysis_2 = analyze_matrix(QUESTION_2, high_size=11, low_size=11, number=2)
    analysis_6 = analyze_matrix(QUESTION_6, high_size=11, low_size=11, number=6)

    lines = ["Table 3 bands:"]
    for signal, band in DEFAULT_POLICY.bands():
        lines.append(f"  {signal.status:<16} {signal.value:<7} D {band}")
    for analysis in (analysis_2, analysis_6):
        lines.append(
            f"question no.{analysis.number}: PH={analysis.p_high:.2f} "
            f"PL={analysis.p_low:.2f} D={analysis.discrimination:.2f} "
            f"P={analysis.difficulty:.3f} -> {analysis.signal.value}"
        )
    show("Table 3 + worked examples no.2 / no.6", "\n".join(lines))

    # Question no.2 — the paper's exact arithmetic.
    assert analysis_2.p_high == pytest.approx(10 / 11)
    assert analysis_2.p_low == pytest.approx(4 / 11)
    assert round(analysis_2.discrimination, 2) == 0.55
    assert round(analysis_2.difficulty, 3) == pytest.approx(0.636, abs=0.001)
    assert analysis_2.signal is Signal.GREEN  # "D>0.3 The signal is green"

    # Question no.6 — D = 0.09, red band, Rule 1 on option A.
    assert round(analysis_6.p_high, 2) == 0.45
    assert round(analysis_6.p_low, 2) == 0.36
    assert round(analysis_6.discrimination, 2) == 0.09
    assert analysis_6.signal is Signal.RED
    rule1 = next(m for m in analysis_6.rules.matches if m.rule == 1)
    assert rule1.options == ("A",)

    # Statistical footing for the paper's verdicts: the green question's
    # PH/PL difference is significant in a class of 44; the red one's is
    # indistinguishable from noise — exactly what "eliminate or fix" says.
    assert discrimination_significance(10, 11, 4, 11).significant
    assert not discrimination_significance(5, 11, 4, 11).significant

    # Table 3's band boundaries.
    assert DEFAULT_POLICY.classify(0.30) is Signal.GREEN
    assert DEFAULT_POLICY.classify(0.29) is Signal.YELLOW
    assert DEFAULT_POLICY.classify(0.20) is Signal.YELLOW
    assert DEFAULT_POLICY.classify(0.19) is Signal.RED

    def analyze_both():
        return (
            analyze_matrix(QUESTION_2, 11, 11, number=2),
            analyze_matrix(QUESTION_6, 11, 11, number=6),
        )

    results = benchmark(analyze_both)
    assert results[0].signal is Signal.GREEN
