"""Figure 1 — the MINE SCORM Meta-data tree.

Regenerates the ten-section metadata tree and times a full
document-build + XML round trip, the operation the authoring system
performs per problem.
"""

from repro.core.cognition import CognitionLevel
from repro.core.metadata import (
    MINE_SECTION_NAMES,
    MineMetadata,
    QuestionStyle,
)
from repro.core.metadata_xml import from_xml, to_xml

from conftest import show


def build_rich_document() -> MineMetadata:
    metadata = MineMetadata()
    metadata.general.identifier = "exam-figure1"
    metadata.general.title = "Figure 1 demonstration"
    metadata.assessment.cognition_level = CognitionLevel.APPLICATION
    metadata.assessment.question_style = QuestionStyle.MULTIPLE_CHOICE
    metadata.assessment.individual_test.item_difficulty_index = 0.635
    metadata.assessment.individual_test.item_discrimination_index = 0.55
    metadata.assessment.exam.test_time_seconds = 2700
    return metadata


def test_bench_figure1_metadata_tree(benchmark):
    metadata = build_rich_document()

    # The regenerated figure: ten sections, assessment subtree expanded.
    tree = metadata.render_tree()
    show("Figure 1: MINE SCORM Meta-data tree", tree)

    # Shape assertions: ten sections (nine LOM + assessment), the §3
    # leaves present.
    assert len(MINE_SECTION_NAMES) == 10
    for section in MINE_SECTION_NAMES:
        assert section in tree
    for leaf in (
        "cognition_level",
        "question_style",
        "item_difficulty_index",
        "item_discrimination_index",
        "instructional_sensitivity_index",
        "resumable",
        "display_type",
    ):
        assert leaf in tree

    def round_trip():
        document = build_rich_document()
        document.validate()
        return from_xml(to_xml(document))

    restored = benchmark(round_trip)
    assert restored == metadata
