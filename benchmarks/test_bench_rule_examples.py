"""§4.1.2 Examples 1-4 — the four diagnostic rules on the paper's exact
matrices.

These are the paper's own worked numbers (high/low groups of 20); the
bench asserts every firing the text derives and times the rule engine on
the full example set.
"""

import pytest

from repro.core.rules import OptionMatrix, Status, evaluate_rules

from conftest import show

EXAMPLES = {
    1: OptionMatrix.from_rows([12, 2, 0, 3, 3], [6, 4, 0, 5, 5], correct="A"),
    2: OptionMatrix.from_rows([1, 2, 10, 0, 7], [2, 2, 13, 1, 2], correct="C"),
    3: OptionMatrix.from_rows([15, 2, 2, 0, 1], [5, 4, 5, 4, 2], correct="A"),
    4: OptionMatrix.from_rows([4, 4, 4, 2, 6], [5, 4, 5, 4, 2], correct="A"),
}


def test_bench_rule_examples(benchmark):
    outcomes = {
        number: evaluate_rules(matrix) for number, matrix in EXAMPLES.items()
    }
    lines = []
    for number, matrix in EXAMPLES.items():
        lines.append(f"Example {number} (correct {matrix.correct}):")
        lines.append(matrix.render())
        for match in outcomes[number].matches:
            lines.append(f"  -> {match.explanation}")
        lines.append("")
    show("Paper §4.1.2 Examples 1-4", "\n".join(lines))

    # Example 1: "The option C didn't attract any one of the low score
    # group ... the option's allure is low."
    example1 = outcomes[1]
    assert example1.rule_fired(1)
    rule1 = next(m for m in example1.matches if m.rule == 1)
    assert rule1.options == ("C",)
    assert Status.LOW_ALLURE in rule1.statuses

    # Example 2: correct option C has HC(10) < LC(13); wrong option E has
    # HE(7) > LE(2) — both flagged as not well-defined.
    example2 = outcomes[2]
    assert example2.rule_fired(2)
    rule2 = next(m for m in example2.matches if m.rule == 2)
    assert set(rule2.options) == {"C", "E"}

    # Example 3: |LM-Lm| = |5-2| = 3 <= 20*20% = 4, high group uneven.
    example3 = outcomes[3]
    assert example3.rule_fired(3)
    assert not example3.rule_fired(4)

    # Example 4: both spreads small -> both groups lack the concept.
    example4 = outcomes[4]
    assert example4.rule_fired(3)
    assert example4.rule_fired(4)
    rule4 = next(m for m in example4.matches if m.rule == 4)
    assert set(rule4.statuses) == {
        Status.LOW_GROUP_LACKS_CONCEPT,
        Status.HIGH_GROUP_LACKS_CONCEPT,
    }

    def run_all():
        return [evaluate_rules(matrix) for matrix in EXAMPLES.values()]

    results = benchmark(run_all)
    assert len(results) == 4
