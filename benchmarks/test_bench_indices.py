"""§3.3 — the Item Difficulty Index worked example and index properties.

"For example, R=800, N=1000, then P = R/N = 800/1000 = 0.8 (80%).
Generally speaking, the more Item Difficulty Index increase, the question
is easier."  The bench reproduces the worked number, demonstrates the
monotonicity claim on simulated items of increasing IRT difficulty, and
times the index computations.
"""

import pytest

from repro.core.grouping import GroupSplit
from repro.core.indices import (
    difficulty_index,
    discrimination_index,
    split_difficulty_index,
)
from repro.core.question_analysis import analyze_cohort
from repro.sim.learner_model import ItemParameters
from repro.sim.population import make_population
from repro.sim.workloads import simulate_sitting_data
from repro.exams.authoring import ExamBuilder
from repro.items.choice import MultipleChoiceItem

from conftest import show


def graded_difficulty_exam():
    """Five items with IRT difficulty rising from -2 to +2 logits."""
    builder = ExamBuilder("graded", "Graded difficulty")
    parameters = {}
    for index, b in enumerate((-2.0, -1.0, 0.0, 1.0, 2.0)):
        item_id = f"g{index}"
        builder.add_item(
            MultipleChoiceItem.build(
                item_id, f"Item at b={b}?", ["a", "b", "c", "d"], correct_index=0
            )
        )
        parameters[item_id] = ItemParameters(a=1.5, b=b)
    return builder.build(), parameters


def test_bench_indices(benchmark):
    # The §3.3 worked example, exactly.
    assert difficulty_index(800, 1000) == pytest.approx(0.8)

    # Monotonicity: easier items (lower IRT b) → higher P, on a simulated
    # 300-student cohort.
    exam, parameters = graded_difficulty_exam()
    learners = make_population(300, seed=21)
    data = simulate_sitting_data(exam, parameters, learners, seed=22)
    analysis = analyze_cohort(data.responses, data.specs, split=GroupSplit())
    ps = [question.difficulty for question in analysis.questions]
    lines = [
        f"item {i} (IRT b={b:+.1f}): P={p:.2f}"
        for i, (b, p) in enumerate(zip((-2.0, -1.0, 0.0, 1.0, 2.0), ps))
    ]
    show("§3.3 difficulty monotonicity (lower b = easier = higher P)", "\n".join(lines))
    assert ps == sorted(ps, reverse=True)
    assert ps[0] > 0.75  # b=-2 is easy for an N(0,1) cohort
    assert ps[-1] < 0.45  # b=+2 is hard

    # D = PH − PL and P = (PH + PL)/2 identities on the paper's numbers.
    assert discrimination_index(0.91, 0.36) == pytest.approx(0.55)
    assert split_difficulty_index(0.91, 0.36) == pytest.approx(0.635)

    def compute_indices():
        return [
            (
                split_difficulty_index(q.p_high, q.p_low),
                discrimination_index(q.p_high, q.p_low),
            )
            for q in analysis.questions
        ]

    results = benchmark(compute_indices)
    assert len(results) == 5
