"""Extension — 2PL item calibration (MML/EM) parameter recovery.

The paper stores per-item difficulty/discrimination as metadata; real
deployments eventually re-estimate IRT parameters from accumulated
response matrices.  Sweeps the calibration cohort size and regenerates
the recovery curve: mean |b̂ − b| and |â − a| shrink as data grows — the
consistency property that justifies trusting calibrated CAT pools.
"""

import random

from repro.adaptive.irt import ItemParameters, probability_correct
from repro.adaptive.item_calibration import calibrate_2pl

from conftest import show

TRUE_PARAMETERS = [
    ItemParameters(a=1.8, b=-1.5),
    ItemParameters(a=1.0, b=-0.5),
    ItemParameters(a=1.4, b=0.0),
    ItemParameters(a=0.8, b=0.8),
    ItemParameters(a=2.0, b=1.5),
    ItemParameters(a=1.2, b=-1.0),
]
SIZES = (100, 400, 1600)


def simulate(examinees, seed):
    rng = random.Random(seed)
    matrix = []
    for _ in range(examinees):
        theta = rng.gauss(0, 1)
        matrix.append(
            [
                rng.random() < probability_correct(theta, params)
                for params in TRUE_PARAMETERS
            ]
        )
    return matrix


def recovery_errors(result):
    b_error = sum(
        abs(est.b - true.b)
        for est, true in zip(result.parameters, TRUE_PARAMETERS)
    ) / len(TRUE_PARAMETERS)
    a_error = sum(
        abs(est.a - true.a)
        for est, true in zip(result.parameters, TRUE_PARAMETERS)
    ) / len(TRUE_PARAMETERS)
    return b_error, a_error


def test_bench_item_calibration(benchmark):
    rows = []
    for size in SIZES:
        result = calibrate_2pl(simulate(size, seed=size))
        b_error, a_error = recovery_errors(result)
        rows.append((size, b_error, a_error, result.iterations))
    lines = ["examinees   mean|b err|   mean|a err|   EM iterations"]
    for size, b_error, a_error, iterations in rows:
        lines.append(
            f"{size:>9}   {b_error:.3f}         {a_error:.3f}         "
            f"{iterations}"
        )
    show("Extension: 2PL calibration recovery vs cohort size", "\n".join(lines))

    # Shape: difficulty error shrinks with data and is small at N=1600.
    b_errors = [row[1] for row in rows]
    assert b_errors[-1] < b_errors[0]
    assert b_errors[-1] < 0.15
    # discrimination recovers too, more noisily
    assert rows[-1][2] < 0.35

    matrix_400 = simulate(400, seed=77)
    result = benchmark.pedantic(
        calibrate_2pl, args=(matrix_400,), rounds=3, iterations=1
    )
    assert result.converged
