"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (see
DESIGN.md §4): it prints the regenerated rows/series, asserts the *shape*
the paper reports (who wins, which rules fire, which signals light), and
times the underlying computation with pytest-benchmark.

Run everything with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.core.grouping import GroupSplit
from repro.sim.population import make_population
from repro.sim.workloads import (
    classroom_exam,
    classroom_parameters,
    simulate_sitting_data,
)

#: One shared classroom administration: 200 simulated students, the
#: 10-question engineered exam.  Session-scoped so the expensive
#: simulation runs once per benchmark session.
@pytest.fixture(scope="session")
def classroom():
    exam = classroom_exam()
    parameters = classroom_parameters()
    learners = make_population(200, seed=11)
    data = simulate_sitting_data(exam, parameters, learners, seed=12)
    return exam, parameters, data


@pytest.fixture(scope="session")
def classroom_analysis(classroom):
    _, _, data = classroom
    # routed through the engine switch: columnar by default
    return data.analyze(split=GroupSplit())


def show(title: str, body: str) -> None:
    """Print a regenerated artifact under a banner (visible with -s)."""
    print(f"\n===== {title} =====")
    print(body)
