"""§4.2.1 figure (2) — test score vs degree of difficulty.

"The figure shows the distribution of score and difficulty."  The
regenerated distribution must show the signature shape: low scorers earn
their few points on the *easy* (high-P) questions, so the mean difficulty
of correctly-answered questions falls as the total score rises.
"""

from repro.core.exam_analysis import score_vs_difficulty
from repro.core.figures import render_score_difficulty_figure

from conftest import show


def test_bench_fig_score_difficulty(benchmark, classroom, classroom_analysis):
    _, _, data = classroom
    analysis = classroom_analysis
    correct_flags = {
        response.examinee_id: [
            selection == spec.correct
            for selection, spec in zip(response.selections, data.specs)
        ]
        for response in data.responses
    }
    figure = score_vs_difficulty(
        analysis.scores, correct_flags, analysis.questions
    )
    show(
        "§4.2.1 figure (2): score vs difficulty",
        render_score_difficulty_figure(figure),
    )

    # Shape: every achieved score appears, counts sum to the cohort.
    assert sum(band.examinees for band in figure.bands) == 200
    assert set(figure.scores) == set(analysis.scores.values())

    # Signature trend: mean difficulty of correct answers is higher for
    # low scorers than for the top scorers (they only get the easy ones).
    scored_bands = [
        band for band in figure.bands
        if band.mean_difficulty_of_correct is not None and band.examinees >= 3
    ]
    assert len(scored_bands) >= 3
    low_band = scored_bands[0]
    high_band = scored_bands[-1]
    assert low_band.mean_difficulty_of_correct >= (
        high_band.mean_difficulty_of_correct - 0.05
    )

    result = benchmark(
        score_vs_difficulty, analysis.scores, correct_flags, analysis.questions
    )
    assert result.bands
