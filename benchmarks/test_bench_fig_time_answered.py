"""§4.2.1 figure (1) — time vs number of answered questions.

"The figure shows the test time is enough or not."  Regenerates the
cumulative-answers series for the simulated classroom under two time
limits: a generous one (verdict: enough) and a tight one (verdict: not
enough) — the crossover the figure exists to reveal.
"""

import pytest

from repro.core.exam_analysis import time_vs_answered
from repro.core.figures import render_time_figure

from conftest import show


def test_bench_fig_time_answered(benchmark, classroom):
    _, _, data = classroom

    generous = time_vs_answered(
        data.answer_times, time_limit_seconds=45 * 60
    )
    tight = time_vs_answered(data.answer_times, time_limit_seconds=5 * 60)

    show(
        "§4.2.1 figure (1): generous 45-minute limit",
        render_time_figure(generous),
    )
    show(
        "§4.2.1 figure (1): tight 5-minute limit",
        render_time_figure(tight),
    )

    # Shape: the series is cumulative from 0 to the question count.
    answered = [point.answered for point in generous.series]
    assert answered[0] == pytest.approx(0.0)
    assert answered[-1] == pytest.approx(10.0)
    assert answered == sorted(answered)

    # The verdicts cross over: 45 minutes is enough, 5 minutes is not.
    assert generous.time_enough is True
    assert tight.time_enough is False
    assert (
        tight.fraction_finished_in_limit < generous.fraction_finished_in_limit
    )

    result = benchmark(
        time_vs_answered, data.answer_times, time_limit_seconds=45 * 60
    )
    assert result.time_enough is True
