"""Durability cost — what the write-ahead journal charges per mutation.

Five measurements, written to ``BENCH_store.json``:

* **append throughput** per fsync policy: ``never`` and ``interval``
  should sit within the same order of magnitude (both are buffered
  writes + an OS-level flush); ``always`` pays a real ``fsync()`` per
  record and is orders of magnitude slower — that is the price of
  power-loss durability, and the reason ``interval`` is the default;
* **batch + group commit** under ``always``: ``append_batch`` amortizes
  one fsync over K records, and group commit coalesces concurrent
  writers into shared flushes.  The acceptance targets from the batch
  milestone: **batched always-fsync appends >= 3x the single-record
  rate**, and it must never regress below the *v1 JSONL* single-record
  number (the pre-batch baseline);
* **wire formats**: binary v2 vs JSONL v1 append rate and bytes per
  record — v2 must be strictly smaller on disk;
* **replay throughput**: records/second through ``recover()``, which
  re-executes real LMS mutators (sessions, SCORM API, monitor) rather
  than patching dicts — replay is expected to cost roughly what the
  live mutation cost;
* **end-to-end overhead**: the full loadgen cohort against an
  ``ExamServer`` with and without ``--wal-dir``.  The acceptance target
  from the durability milestone: **interval-fsync journaling keeps
  loadgen throughput within 15% of the no-WAL server**.  The CI
  assertion is deliberately looser (shared runners jitter); the precise
  ratio lands in the artifact for trend tracking.
"""

import json
import os
import threading
import time

from repro.server.app import ExamServer
from repro.server.loadgen import run_loadgen
from repro.store import Journal, recover, segment_files
from repro.store.events import answer_event

from conftest import show

ARTIFACT = os.path.join(os.path.dirname(__file__), "..", "BENCH_store.json")

#: the acceptance bar (docs/durability.md) and the looser CI tripwire
TARGET_OVERHEAD_RATIO = 0.85
MIN_CI_RATIO = 0.60

#: batch-milestone bars: target tracked in the artifact, tripwire in CI
TARGET_BATCH_SPEEDUP = 3.0
MIN_BATCH_SPEEDUP = 2.0
BATCH_K = 10

LOADGEN_LEARNERS = 100
LOADGEN_QUESTIONS = 10
LOADGEN_WORKERS = 4


def sample_event(index):
    return answer_event(
        learner_id=f"s{index % 50}",
        exam_id="bench",
        item_id=f"q{index % 20}",
        response="A",
        ts=float(index),
    )


def append_run(directory, policy, count, format=2):
    with Journal.open(directory, fsync=policy, format=format) as journal:
        start = time.perf_counter()
        for index in range(count):
            journal.append("answer", sample_event(index))
        elapsed = time.perf_counter() - start
        size = sum(p.stat().st_size for p in segment_files(directory))
    return count / elapsed, elapsed, size


def batch_append_run(directory, batches, k):
    """``batches`` x ``append_batch(K)`` under always-fsync."""
    with Journal.open(directory, fsync="always") as journal:
        start = time.perf_counter()
        for index in range(batches):
            journal.append_batch(
                [
                    ("answer", sample_event(index * k + offset))
                    for offset in range(k)
                ]
            )
        elapsed = time.perf_counter() - start
        fsyncs = journal.fsyncs
    return (batches * k) / elapsed, elapsed, fsyncs


def concurrent_append_run(directory, threads, per_thread, group_commit):
    """N always-fsync writer threads, with or without group commit."""
    journal = Journal.open(
        directory, fsync="always", group_commit=group_commit
    )

    def writer(worker):
        for index in range(per_thread):
            journal.append(
                "answer", sample_event(worker * per_thread + index)
            )

    pool = [
        threading.Thread(target=writer, args=(worker,))
        for worker in range(threads)
    ]
    start = time.perf_counter()
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    elapsed = time.perf_counter() - start
    fsyncs = journal.fsyncs
    journal.close()
    return (threads * per_thread) / elapsed, elapsed, fsyncs


def journaled_cohort(wal_dir, learners=40, questions=6):
    """Drive a full cohort through a journaled LMS; return record count."""
    from repro.delivery.clock import ManualClock
    from repro.lms.learners import Learner
    from repro.lms.lms import Lms
    from repro.sim.workloads import classroom_exam

    journal = Journal.open(wal_dir, fsync="never")
    lms = Lms(clock=ManualClock(10.0), journal=journal)
    exam = classroom_exam(questions)
    lms.offer_exam(exam)
    for index in range(learners):
        learner_id = f"s{index:03d}"
        lms.register_learner(Learner(learner_id=learner_id, name=learner_id))
        lms.enroll(learner_id, exam.exam_id)
        lms.start_exam(learner_id, exam.exam_id)
        for question in range(1, questions + 1):
            lms.clock.advance(1.0)
            lms.answer(
                learner_id, exam.exam_id, f"q{question:02d}",
                "ABCDE"[(index + question) % 5],
            )
        lms.submit(learner_id, exam.exam_id)
    count = journal.last_lsn
    journal.close()
    return count


def loadgen_run(tmp_path, wal_dir=None):
    kwargs = {"max_in_flight": 64}
    if wal_dir is not None:
        kwargs.update(wal_dir=wal_dir, fsync="interval")
    with ExamServer(**kwargs) as server:
        report = run_loadgen(
            server.url,
            learners=LOADGEN_LEARNERS,
            questions=LOADGEN_QUESTIONS,
            seed=7,
            workers=LOADGEN_WORKERS,
        )
    assert report.errors == 0
    return report


def test_bench_store(benchmark, tmp_path):
    # -- append throughput per fsync policy -------------------------------
    append = {}
    for policy, count in (("never", 5000), ("interval", 5000), ("always", 300)):
        rps, elapsed, _ = append_run(tmp_path / f"wal-{policy}", policy, count)
        append[policy] = {
            "records": count,
            "seconds": round(elapsed, 4),
            "records_per_second": round(rps, 1),
        }

    # -- batched ingestion + group commit under always-fsync --------------
    single_always_rps = append["always"]["records_per_second"]
    v1_always_rps, _, _ = append_run(
        tmp_path / "wal-always-v1", "always", 300, format=1
    )
    batched_rps, batched_elapsed, batched_fsyncs = batch_append_run(
        tmp_path / "wal-batch", batches=300, k=BATCH_K
    )
    plain_mt_rps, _, plain_mt_fsyncs = concurrent_append_run(
        tmp_path / "wal-mt-plain", threads=8, per_thread=250,
        group_commit=False,
    )
    gc_rps, _, gc_fsyncs = concurrent_append_run(
        tmp_path / "wal-mt-gc", threads=8, per_thread=250, group_commit=True
    )
    batch = {
        "k": BATCH_K,
        "single_always_rps": round(single_always_rps, 1),
        "single_always_v1_rps": round(v1_always_rps, 1),
        "batched_always_rps": round(batched_rps, 1),
        "batched_fsyncs": batched_fsyncs,
        "batched_ms_per_record": round(
            1000.0 * batched_elapsed / (300 * BATCH_K), 4
        ),
        "batch_speedup": round(batched_rps / single_always_rps, 2),
        "target_batch_speedup": TARGET_BATCH_SPEEDUP,
        "concurrent_plain_rps": round(plain_mt_rps, 1),
        "concurrent_plain_fsyncs": plain_mt_fsyncs,
        "concurrent_group_commit_rps": round(gc_rps, 1),
        "concurrent_group_commit_fsyncs": gc_fsyncs,
        "group_commit_speedup": round(gc_rps / plain_mt_rps, 2),
    }

    # -- wire formats: binary v2 vs JSONL v1 ------------------------------
    formats = {}
    for fmt in (1, 2):
        rps, _, size = append_run(
            tmp_path / f"wal-fmt{fmt}", "never", 5000, format=fmt
        )
        formats[f"v{fmt}"] = {
            "records_per_second": round(rps, 1),
            "bytes_per_record": round(size / 5000, 1),
        }

    # pytest-benchmark timing of the hot path: one buffered append
    journal = Journal.open(tmp_path / "wal-hot", fsync="interval")
    counter = iter(range(10_000_000))

    def one_append():
        journal.append("answer", sample_event(next(counter)))

    benchmark(one_append)
    journal.close()

    # -- replay throughput ------------------------------------------------
    replay_dir = tmp_path / "wal-replay"
    record_count = journaled_cohort(replay_dir)
    start = time.perf_counter()
    report = recover(replay_dir)
    replay_seconds = time.perf_counter() - start
    assert report.records_replayed == record_count
    replay = {
        "records": record_count,
        "seconds": round(replay_seconds, 4),
        "records_per_second": round(record_count / replay_seconds, 1),
    }

    # -- end-to-end loadgen overhead --------------------------------------
    bare = loadgen_run(tmp_path)
    journaled = loadgen_run(tmp_path, wal_dir=tmp_path / "wal-serve")
    ratio = journaled.throughput_rps / bare.throughput_rps
    e2e = {
        "workload": (
            f"{LOADGEN_LEARNERS} x {LOADGEN_QUESTIONS} sittings over HTTP, "
            f"{LOADGEN_WORKERS} workers"
        ),
        "no_wal_rps": round(bare.throughput_rps, 1),
        "wal_interval_rps": round(journaled.throughput_rps, 1),
        "throughput_ratio": round(ratio, 4),
        "target_ratio": TARGET_OVERHEAD_RATIO,
    }

    payload = {
        "append": append,
        "batch": batch,
        "formats": formats,
        "replay": replay,
        "loadgen": e2e,
    }
    with open(ARTIFACT, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    show(
        "Durable store",
        "\n".join(
            [
                *(
                    f"append[{policy}]: "
                    f"{stats['records_per_second']:>10.1f} rec/s"
                    for policy, stats in append.items()
                ),
                f"batch[K={BATCH_K}]:    "
                f"{batch['batched_always_rps']:>10.1f} rec/s "
                f"({batch['batch_speedup']}x single always)",
                f"group commit:    "
                f"{batch['concurrent_group_commit_rps']:>10.1f} rec/s "
                f"({batch['group_commit_speedup']}x plain, "
                f"{gc_fsyncs} vs {plain_mt_fsyncs} fsyncs)",
                f"format v1/v2:    "
                f"{formats['v1']['bytes_per_record']:.0f} -> "
                f"{formats['v2']['bytes_per_record']:.0f} bytes/rec",
                f"replay:          {replay['records_per_second']:>10.1f} rec/s",
                f"loadgen no-WAL:  {e2e['no_wal_rps']:>10.1f} req/s",
                f"loadgen WAL:     {e2e['wal_interval_rps']:>10.1f} req/s "
                f"(ratio {ratio:.3f}, target >= {TARGET_OVERHEAD_RATIO})",
            ]
        ),
    )

    # shape assertions: buffered policies are fast, always pays fsync
    assert append["never"]["records_per_second"] > 10_000
    assert append["interval"]["records_per_second"] > 10_000
    assert (
        append["always"]["records_per_second"]
        < append["interval"]["records_per_second"]
    )
    assert replay["records_per_second"] > 100
    # batch-milestone gates: K-record batches amortize the fsync ...
    assert batch["batch_speedup"] >= MIN_BATCH_SPEEDUP, (
        f"batched always-fsync at {batch['batch_speedup']}x single-record, "
        f"CI floor {MIN_BATCH_SPEEDUP}x (target {TARGET_BATCH_SPEEDUP}x)"
    )
    # ... and never fall below the pre-batch v1 single-record baseline
    assert batched_rps >= v1_always_rps, (
        f"batched v2 throughput {batched_rps:.0f} rec/s regressed below "
        f"the v1 single-record baseline {v1_always_rps:.0f} rec/s"
    )
    # group commit coalesces concurrent writers into shared flushes
    assert gc_fsyncs < plain_mt_fsyncs
    assert gc_rps >= plain_mt_rps, (
        f"group commit ({gc_rps:.0f} rec/s) slower than plain "
        f"always-fsync under contention ({plain_mt_rps:.0f} rec/s)"
    )
    # the binary format is strictly smaller on the wire
    assert (
        formats["v2"]["bytes_per_record"] < formats["v1"]["bytes_per_record"]
    )
    # the loose CI tripwire; the 15% target is tracked via the artifact
    assert ratio >= MIN_CI_RATIO, (
        f"WAL loadgen at {ratio:.2f}x of no-WAL throughput, "
        f"CI floor {MIN_CI_RATIO}"
    )
