"""§4.2.3 — the whole-test analyses: concept lost, the cognition pyramid,
and the distribution paint algorithm.

Regenerates each §4.2.3 analysis on exams constructed to exhibit them:
an exam missing a concept, an exam violating the expected
SUM(A) ≥ ... ≥ SUM(F) ordering, and the paint rendering of the
distribution.
"""

from repro.core.cognition import COGNITIVE_LEVELS, CognitionLevel
from repro.core.spec_table import SpecificationTable, TaggedQuestion

from conftest import show


def pyramid_exam_tags():
    """A well-formed exam: 5/4/3/2/1/1 questions from knowledge down."""
    tags = []
    number = 1
    for level, count in zip(COGNITIVE_LEVELS, (5, 4, 3, 2, 1, 1)):
        for _ in range(count):
            tags.append(
                TaggedQuestion(number=number, concept=f"c{number % 4}", level=level)
            )
            number += 1
    return tags


def inverted_exam_tags():
    """A malformed exam: all questions at evaluation level."""
    return [
        TaggedQuestion(number=n, concept="c1", level=CognitionLevel.EVALUATION)
        for n in range(1, 7)
    ]


def test_bench_total_test_analysis(benchmark):
    healthy = SpecificationTable.from_questions(pyramid_exam_tags())
    inverted = SpecificationTable.from_questions(
        inverted_exam_tags(), concepts=["c1", "c2-never-examined"]
    )

    show("§4.2.3 paint: healthy pyramid exam", "\n".join(healthy.paint()))
    show("§4.2.3 paint: inverted exam", "\n".join(inverted.paint()))

    # (1) concept lost
    assert healthy.lost_concepts() == []
    assert inverted.lost_concepts() == ["c2-never-examined"]

    # (2) cognition-level / question-sum relation
    assert healthy.pyramid_violations() == []
    violations = inverted.pyramid_violations()
    assert (CognitionLevel.SYNTHESIS, CognitionLevel.EVALUATION) in violations

    # (3) the paint grid is one row per concept plus a header
    paint = healthy.paint()
    assert len(paint) == 1 + len(healthy.concepts)

    def analyze():
        table = SpecificationTable.from_questions(pyramid_exam_tags())
        return (
            table.lost_concepts(),
            table.pyramid_violations(),
            table.paint(),
        )

    lost, pyramid, painted = benchmark(analyze)
    assert lost == [] and pyramid == [] and painted
