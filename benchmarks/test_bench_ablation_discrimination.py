"""Ablation — the paper's D = PH − PL vs the point-biserial baseline,
and split-group P = (PH+PL)/2 vs whole-group P = R/N.

Both discrimination measures must rank items the same way (the paper's
cheap statistic agrees with the textbook correlation), and the two
difficulty definitions must track each other closely — the evidence that
the paper's simplified §4.1.1 arithmetic is a sound stand-in for
classical item analysis.
"""

from repro.baselines.classical import classical_item_analysis

from conftest import show


def rank_order(values):
    return sorted(range(len(values)), key=lambda index: -values[index])


def spearman(xs, ys):
    """Spearman rank correlation without scipy (ties broken by index)."""
    n = len(xs)
    rank_x = {item: rank for rank, item in enumerate(rank_order(xs))}
    rank_y = {item: rank for rank, item in enumerate(rank_order(ys))}
    d_squared = sum((rank_x[i] - rank_y[i]) ** 2 for i in range(n))
    return 1 - 6 * d_squared / (n * (n * n - 1))


def test_bench_ablation_discrimination(benchmark, classroom, classroom_analysis):
    _, _, data = classroom
    analysis = classroom_analysis
    classical = classical_item_analysis(data.responses, data.specs)

    paper_d = [question.discrimination for question in analysis.questions]
    baseline_rpb = [stats.point_biserial for stats in classical]
    paper_p = [question.difficulty for question in analysis.questions]
    baseline_p = [stats.difficulty for stats in classical]

    lines = ["item   D(paper)  r_pb(baseline)  P(split)  P(whole)"]
    for index in range(len(paper_d)):
        lines.append(
            f"q{index + 1:02d}    {paper_d[index]:+.3f}    "
            f"{baseline_rpb[index]:+.3f}          "
            f"{paper_p[index]:.3f}     {baseline_p[index]:.3f}"
        )
    rho_d = spearman(paper_d, baseline_rpb)
    rho_p = spearman(paper_p, baseline_p)
    lines.append(f"rank correlation: D vs r_pb = {rho_d:.3f}, "
                 f"P_split vs P_whole = {rho_p:.3f}")
    show("Ablation: paper's statistics vs classical baselines", "\n".join(lines))

    # Shape: the two discrimination measures rank items nearly
    # identically, and the two difficulty definitions agree strongly.
    assert rho_d > 0.8
    assert rho_p > 0.9
    # both measures agree on the single worst item (the engineered q5).
    assert rank_order(paper_d)[-1] == rank_order(baseline_rpb)[-1]
    # split-group P and whole-group P never diverge wildly on any item
    for split_p, whole_p in zip(paper_p, baseline_p):
        assert abs(split_p - whole_p) < 0.15

    result = benchmark(classical_item_analysis, data.responses, data.specs)
    assert len(result) == 10
