"""Figures 3-5 — the authoring interfaces, as their programmatic
equivalents.

The paper's Figures 3 (choice problem authoring), 4 (edited problem
presentation style) and 5 (exam authoring interface) are GUI
screenshots; the reproduction substitutes the underlying operations
(DESIGN.md §2): authoring a choice problem with positioned pictures,
re-laying it out by moving template slots, and assembling a grouped exam
rendered as the paper a learner receives.
"""

from repro.core.cognition import CognitionLevel
from repro.exams.authoring import ExamBuilder
from repro.exams.render import render_answer_key, render_exam_paper
from repro.items.base import Picture
from repro.items.choice import MultipleChoiceItem
from repro.items.rendering import render_item, render_layout
from repro.items.templates import apply_template, default_choice_template

from conftest import show


def authored_choice_problem():
    """Figure 3's product: a choice problem with metadata and a picture."""
    item = MultipleChoiceItem.build(
        "fig3-choice",
        "Which traversal visits the root first?",
        ["preorder", "inorder", "postorder", "level order"],
        correct_index=0,
        hint="root, left, right",
        subject="trees",
        cognition_level=CognitionLevel.COMPREHENSION,
    )
    item.pictures = [Picture(resource="tree-diagram.gif", x=50, y=1)]
    return item


def test_bench_figures3to5_authoring(benchmark):
    # Figure 3: the authored choice problem.
    item = authored_choice_problem()
    show("Figure 3: choice problem authoring (rendered)", render_item(item, 1))
    assert item.metadata.assessment.individual_test.answer == "A"
    assert item.metadata.assessment.question_style.value == "multiple_choice"

    # Figure 4: "We set the presentation style by moving each item."
    template = default_choice_template()
    template.move_slot("question", 4, 0)
    template.move_slot("option0", 8, 2)
    layout = apply_template(item, template)
    canvas = render_layout(layout)
    show("Figure 4: edited problem presentation style", canvas)
    question_element = next(e for e in layout if e.role == "question")
    assert (question_element.x, question_element.y) == (4, 0)
    picture_element = next(e for e in layout if e.role == "picture0")
    assert (picture_element.x, picture_element.y) == (50, 1)  # §5.3 x/y
    assert "tree-diagram.gif" in canvas

    # Figure 5: the exam authoring interface's product — a grouped exam.
    exam = (
        ExamBuilder("fig5-exam", "Figure 5 Exam")
        .add_item(item)
        .add_item(
            MultipleChoiceItem.build(
                "q2", "Which structure backs BFS?", ["queue", "stack"],
                correct_index=0, subject="graphs",
            )
        )
        .add_item(
            MultipleChoiceItem.build(
                "q3", "Which structure backs DFS?", ["stack", "queue"],
                correct_index=0, subject="graphs",
            )
        )
        .group("graph-part", ["q2", "q3"], template_name="default-choice")
        .time_limit(1200)
        .build()
    )
    paper = render_exam_paper(exam)
    show("Figure 5: exam authoring -> the learner's paper", paper)
    assert "--- graph-part ---" in paper
    assert "time limit 20 minutes" in paper
    key = render_answer_key(exam)
    assert "[fig3-choice] A" in key

    def author_and_render():
        fresh = authored_choice_problem()
        fresh_template = default_choice_template()
        fresh_template.move_slot("question", 4, 0)
        return render_layout(apply_template(fresh, fresh_template))

    result = benchmark(author_and_render)
    assert "preorder" in result
