"""Observability tax — what does the instrumentation cost when off?

The ``repro.obs`` helpers sit on the hottest paths in the system
(cohort generation, columnar analysis, report building).  Their design
contract is that the *disabled* path — one flag check returning a
shared no-op — costs under 5% on the 10k x 50 end-to-end benchmark.

Three configurations are timed over the same workload:

* **bare** — the module helpers replaced by empty stubs, approximating
  the un-instrumented code of PR 2;
* **disabled** — the shipping default (registry off, flag check taken);
* **enabled** — full span/counter recording into the registry.

Results go into ``BENCH_obs.json`` at the repo root; the acceptance
assertion holds the disabled overhead under 5% (with a small absolute
floor so scheduler noise on a quiet run cannot fail the build).
"""

import json
import os
import time

from repro import obs
from repro.obs import NOOP_SPAN, Registry
from repro.sim.population import make_population
from repro.sim.vectorized import simulate_sitting_arrays
from repro.sim.workloads import classroom_exam, classroom_parameters

from conftest import show

try:
    import numpy  # noqa: F401 - recorded into the artifact

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    HAVE_NUMPY = False

QUESTIONS = 50
LEARNERS = 10_000
RUNS = 3
#: the acceptance ceiling, plus an absolute floor under which a "miss"
#: is indistinguishable from timer noise
OVERHEAD_CEILING_PCT = 5.0
NOISE_FLOOR_S = 0.010

ARTIFACT = os.path.join(os.path.dirname(__file__), "..", "BENCH_obs.json")


def best_of(runs, fn):
    timings = []
    for _ in range(runs):
        start = time.perf_counter()
        fn()
        timings.append(time.perf_counter() - start)
    return min(timings)


def _bare_span(name, **tags):
    return NOOP_SPAN


def _bare_count(name, value=1, **tags):
    return None


def _bare_gauge(name, value, **tags):
    return None


class _PatchedObs:
    """Swap the module-level helpers for stubs, restore on exit."""

    def __enter__(self):
        self._saved = (obs.span, obs.count, obs.gauge)
        obs.span, obs.count, obs.gauge = _bare_span, _bare_count, _bare_gauge
        return self

    def __exit__(self, *exc_info):
        obs.span, obs.count, obs.gauge = self._saved


def test_bench_obs_overhead(benchmark):
    exam = classroom_exam(QUESTIONS)
    parameters = classroom_parameters(QUESTIONS)
    learners = make_population(LEARNERS, seed=LEARNERS)

    def workload():
        data = simulate_sitting_arrays(exam, parameters, learners, seed=1)
        return data.analyze()

    workload()  # warm-up: imports, interning caches

    with _PatchedObs():
        bare_s = best_of(RUNS, workload)

    previous = obs.set_registry(Registry(enabled=False))
    try:
        disabled_s = best_of(RUNS, workload)

        obs.enable()
        enabled_s = best_of(RUNS, workload)
        spans_recorded = len(obs.get_registry().roots)
        counters = obs.get_registry().counters()
    finally:
        obs.set_registry(previous)

    disabled_pct = (disabled_s - bare_s) / bare_s * 100.0
    enabled_pct = (enabled_s - bare_s) / bare_s * 100.0

    payload = {
        "workload": f"{LEARNERS} x {QUESTIONS} generate+analyze",
        "numpy": HAVE_NUMPY,
        "bare_s": round(bare_s, 6),
        "disabled_s": round(disabled_s, 6),
        "enabled_s": round(enabled_s, 6),
        "disabled_overhead_pct": round(disabled_pct, 2),
        "enabled_overhead_pct": round(enabled_pct, 2),
        "enabled_spans_per_run": spans_recorded // RUNS,
    }
    with open(ARTIFACT, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    show(
        f"Observability overhead ({LEARNERS} x {QUESTIONS})",
        f"bare: {bare_s * 1000:.1f} ms   disabled: {disabled_s * 1000:.1f} ms"
        f" ({disabled_pct:+.1f}%)   enabled: {enabled_s * 1000:.1f} ms"
        f" ({enabled_pct:+.1f}%)",
    )

    # instrumentation actually fired when enabled
    assert spans_recorded >= RUNS  # at least the sim.generate roots
    assert counters.get("sim.learners.generated", 0) == LEARNERS * RUNS

    # the acceptance bar: disabled is within 5% of bare (or within the
    # absolute noise floor, whichever is more permissive)
    assert (
        disabled_pct < OVERHEAD_CEILING_PCT
        or (disabled_s - bare_s) < NOISE_FLOOR_S
    ), f"disabled-path overhead {disabled_pct:.1f}% over bare"

    benchmark(workload)
