"""Table 1 — the problem-attribute matrix (option × score group).

Regenerates Table 1 for every question of the simulated classroom and
times building all ten matrices from 200 learners' raw responses — the
data-preparation step behind the whole signal representation.
"""

from repro.core.grouping import GroupSplit
from repro.core.question_analysis import analyze_cohort

from conftest import show


def test_bench_table1_problem_attribute(benchmark, classroom, classroom_analysis):
    _, _, data = classroom
    analysis = classroom_analysis

    # The regenerated Table 1 for the first three questions.
    blocks = []
    for question in analysis.questions[:3]:
        blocks.append(f"Question {question.number}:")
        blocks.append(question.matrix.render())
        blocks.append("")
    show("Table 1: problem attribute matrices (first 3 questions)", "\n".join(blocks))

    # Shape: every matrix covers the five options, counts bounded by the
    # group sizes, and HA..HE / LA..LE are non-negative integers.
    group_size = len(analysis.high_group)
    assert group_size == 50  # 200 students at 25%
    for question in analysis.questions:
        assert len(question.matrix.options) == 5
        assert 0 <= question.matrix.high_sum <= group_size
        assert 0 <= question.matrix.low_sum <= group_size

    def rebuild():
        return analyze_cohort(data.responses, data.specs, split=GroupSplit())

    result = benchmark(rebuild)
    assert len(result.questions) == 10
