"""Sharded delivery tier — aggregate capacity and scatter-gather parity.

The scaling claim for ``serve --workers N``: sharding the LMS across N
worker processes multiplies deliverable throughput, because the shards
share *nothing* on the hot path — each owns its learners' state, locks,
WAL, and socket accept queue.

**Methodology (CPU-honest).**  This container has a single CPU, so
running four workers concurrently would measure timeslicing, not
sharding.  Instead the bench measures *per-shard capacity*: the cohort
is partitioned by the consistent-hash ring and each shard is driven in
isolation (topology-aware client, direct connections, no proxy hop)
while its peers idle.  The aggregate is the sum of per-shard rates —
what the tier sustains when each worker has its own core, which is the
deployment the architecture targets.  Every measurement is the best of
two independent cohorts (a capacity number, resistant to scheduler
noise on a shared host).  The artifact records the methodology and the
host CPU count so the number cannot be mistaken for a
measured-concurrent one; on a multi-core host the same harness measures
true concurrency headroom.

The second claim is exactness: after both cohorts land across the
shards (400 learners live), one front-door ``GET /exams/{id}/analysis``
scatter-gathers the per-shard columnar partials and must be
**bit-identical** to a single-process ``analyze_cohort`` over the same
responses.

Results merge into ``BENCH_server.json`` under ``"sharded"``.
"""

import http.client
import json
import os

from repro.cluster.ring import HashRing
from repro.core.question_analysis import analyze_cohort
from repro.server.app import ExamServer
from repro.server.loadgen import run_loadgen
from repro.server.serialize import analysis_to_dict
from repro.sim.population import make_population
from repro.sim.workloads import classroom_exam

from conftest import show
from test_bench_server_loadgen import merge_artifact

LEARNERS = 200
QUESTIONS = 20
CLUSTER_WORKERS = 4
THREADS = 8
BATCH_K = 10
SEED = 7
ATTEMPTS = 2

#: the tentpole acceptance bar: aggregate capacity at 4 workers vs 1
MIN_SPEEDUP = 2.5


def get_json(url, path):
    host, port = url.rsplit(":", 1)
    connection = http.client.HTTPConnection(
        host.split("//")[1], int(port), timeout=30
    )
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        assert response.status == 200, (path, response.status)
        return json.loads(response.read())
    finally:
        connection.close()


def test_bench_sharded_tier(benchmark, tmp_path):
    exam = classroom_exam(QUESTIONS)
    # two disjoint cohorts: each measurement is best-of-two, and a
    # learner can only sit the exam once
    everyone = make_population(LEARNERS * ATTEMPTS, seed=SEED)
    cohorts = [
        everyone[index * LEARNERS: (index + 1) * LEARNERS]
        for index in range(ATTEMPTS)
    ]

    # -- baseline: whole cohorts against one process, best of two ----------
    # same durability as the shards (WAL journal), so the comparison
    # isolates sharding, not fsync policy
    baseline_rps = 0.0
    for attempt, cohort in enumerate(cohorts):
        with ExamServer(
            max_in_flight=64, wal_dir=tmp_path / f"baseline-wal-{attempt}"
        ) as server:
            report = run_loadgen(
                server.url,
                questions=QUESTIONS,
                seed=SEED,
                workers=THREADS,
                batch=BATCH_K,
                population=cohort,
            )
        assert report.errors == 0
        baseline_rps = max(baseline_rps, report.throughput_rps)

    # -- the sharded tier: per-shard capacity, one shard at a time ---------
    from repro.cluster.supervisor import ExamCluster

    ring = HashRing([f"shard-{index}" for index in range(CLUSTER_WORKERS)])
    responses = []
    attempts = []  # one {shard: report} per cohort
    with ExamCluster(
        workers=CLUSTER_WORKERS, wal_root=tmp_path / "wal"
    ) as cluster:
        for cohort in cohorts:
            shard_population = {shard: [] for shard in ring.shards}
            for learner in cohort:
                shard_population[ring.route(learner.learner_id)].append(
                    learner
                )
            assert all(shard_population.values())  # every shard loaded
            per_shard = {}
            for shard in cluster.shards:
                report = run_loadgen(
                    cluster.url,
                    questions=QUESTIONS,
                    seed=SEED,
                    workers=THREADS,
                    batch=BATCH_K,
                    cluster=True,
                    population=shard_population[shard],
                )
                assert report.errors == 0
                per_shard[shard] = report
                responses.extend(report.responses)
            attempts.append(per_shard)

        # -- scatter-gather parity over the live 400-learner cohort --------
        sharded_analysis = get_json(
            cluster.url, f"/exams/{exam.exam_id}/analysis"
        )

        def scatter_gather():
            get_json(cluster.url, f"/exams/{exam.exam_id}/analysis")

        benchmark(scatter_gather)

    ordered = sorted(responses, key=lambda response: response.examinee_id)
    local_analysis = analysis_to_dict(
        analyze_cohort(ordered, exam.question_specs())
    )
    bit_identical = json.dumps(
        sharded_analysis, sort_keys=True
    ) == json.dumps(local_analysis, sort_keys=True)

    aggregates = [
        sum(report.throughput_rps for report in per_shard.values())
        for per_shard in attempts
    ]
    best = attempts[aggregates.index(max(aggregates))]
    aggregate_rps = max(aggregates)
    speedup = aggregate_rps / baseline_rps

    merge_artifact(
        {
            "sharded": {
                "workers": CLUSTER_WORKERS,
                "workload": (
                    f"{LEARNERS} x {QUESTIONS} sittings (batch={BATCH_K}) "
                    f"hash-partitioned over {CLUSTER_WORKERS} shards, "
                    f"best of {ATTEMPTS} cohorts"
                ),
                "methodology": (
                    "per-shard capacity: each shard driven in isolation "
                    "over direct connections, aggregate = sum of "
                    "per-shard rates (one core per worker deployment "
                    "model); not measured-concurrent on this host"
                ),
                "host_cpus": os.cpu_count(),
                "baseline_rps_1_worker": round(baseline_rps, 1),
                "per_shard_rps": {
                    shard: round(report.throughput_rps, 1)
                    for shard, report in sorted(best.items())
                },
                "aggregate_rps": round(aggregate_rps, 1),
                "speedup_vs_1_worker": round(speedup, 2),
                "min_speedup_bar": MIN_SPEEDUP,
                "scatter_gather_bit_identical": bit_identical,
                "scatter_gather_cohort": len(ordered),
            }
        }
    )

    show(
        f"Sharded tier ({CLUSTER_WORKERS} workers, per-shard capacity)",
        "\n".join(
            [
                f"baseline (1 process): {baseline_rps:8.0f} req/s",
                *(
                    f"{shard}:              {report.throughput_rps:8.0f} "
                    f"req/s"
                    for shard, report in sorted(best.items())
                ),
                f"aggregate:            {aggregate_rps:8.0f} req/s "
                f"({speedup:.2f}x, bar >= {MIN_SPEEDUP}x)",
                f"scatter-gather over {len(ordered)} learners "
                f"bit-identical: {bit_identical}",
            ]
        ),
    )

    # every learner sat exactly once and landed on the ring's shard
    assert len(ordered) == LEARNERS * ATTEMPTS
    assert len({response.examinee_id for response in ordered}) == len(
        ordered
    )
    # the cohort-level answer is exact, not approximately merged
    assert bit_identical, "scatter-gather analysis diverged from local"
    # the tentpole bar: near-linear aggregate capacity
    assert speedup >= MIN_SPEEDUP, (
        f"aggregate {aggregate_rps:.0f} req/s is only {speedup:.2f}x the "
        f"single-process {baseline_rps:.0f} req/s, need >= {MIN_SPEEDUP}x"
    )
