"""§5 architecture — the full author → package → LMS → analysis pipeline.

Times one complete pass of the paper's Figure 3 architecture with a class
of 44 (the paper's worked-example class size): offering the exam,
enrolling, delivering through the SCORM RTE with the monitor capturing,
grading, and producing the §4 report.
"""

import random

from repro.core.signals import Signal
from repro.delivery.clock import ManualClock
from repro.lms.learners import Learner
from repro.lms.lms import Lms
from repro.lms.tracking import EventKind
from repro.sim.learner_model import sample_selection
from repro.sim.population import make_population
from repro.sim.workloads import classroom_exam, classroom_parameters

from conftest import show


def run_class(seed: int = 0):
    exam = classroom_exam()
    parameters = classroom_parameters()
    clock = ManualClock()
    lms = Lms(clock=clock)
    lms.offer_exam(exam)
    rng = random.Random(seed)
    for learner in make_population(44, seed=seed):
        lms.register_learner(
            Learner(learner_id=learner.learner_id, name=learner.learner_id)
        )
        lms.enroll(learner.learner_id, exam.exam_id)
        lms.start_exam(learner.learner_id, exam.exam_id)
        for item in exam.items:
            clock.advance(rng.uniform(20, 80))
            selection = sample_selection(
                rng,
                learner,
                parameters[item.item_id],
                item.labels,
                item.correct_label,
            )
            if selection is not None:
                lms.answer(
                    learner.learner_id, exam.exam_id, item.item_id, selection
                )
        lms.submit(learner.learner_id, exam.exam_id)
    return lms, exam


def test_bench_end_to_end(benchmark):
    lms, exam = run_class(seed=3)
    report = lms.report_for(exam.exam_id)
    show("§5 end-to-end: the teacher's report", report.render()[:2000] + "\n...")

    # Shape: 44 sittings, all tracked, all monitored, groups of 11.
    assert len(lms.results_for(exam.exam_id)) == 44
    counts = lms.tracking.counts_by_kind()
    assert counts[EventKind.SUBMITTED] == 44
    assert len(lms.monitor.monitored_sittings()) == 44
    assert len(report.cohort.high_group) == 11  # 44 x 25%, as in the paper
    assert any(signal is Signal.GREEN for signal in report.cohort.signals)

    def pipeline():
        lms_run, exam_run = run_class(seed=4)
        return lms_run.report_for(exam_run.exam_id)

    result = benchmark.pedantic(pipeline, rounds=3, iterations=1)
    assert result.cohort.questions
