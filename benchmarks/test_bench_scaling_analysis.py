"""Scaling — the §4.1 analysis pipeline across cohort sizes.

No table in the paper reports runtime, but a production deployment needs
the analysis to stay interactive as classes grow.  Sweeps the cohort
size at a fixed 20-question exam and asserts the empirical scaling is
near-linear in examinees (the algorithm is O(N·Q + N log N) — the sort
dominates only at extreme N).
"""

import time

from repro.core.grouping import GroupSplit
from repro.core.question_analysis import analyze_cohort
from repro.sim.learner_model import ItemParameters
from repro.sim.population import make_population
from repro.sim.workloads import simulate_sitting_data
from repro.exams.authoring import ExamBuilder
from repro.items.choice import MultipleChoiceItem

from conftest import show

SIZES = (50, 200, 800)
QUESTIONS = 20


def exam_20q():
    builder = ExamBuilder("scale", "Scaling exam")
    parameters = {}
    for index in range(QUESTIONS):
        item_id = f"i{index:02d}"
        builder.add_item(
            MultipleChoiceItem.build(
                item_id, f"Item {index}?", ["a", "b", "c", "d"],
                correct_index=0,
            )
        )
        parameters[item_id] = ItemParameters(a=1.3, b=-1.5 + 0.15 * index)
    return builder.build(), parameters


def test_bench_scaling_analysis(benchmark):
    exam, parameters = exam_20q()
    datasets = {}
    for size in SIZES:
        learners = make_population(size, seed=size)
        datasets[size] = simulate_sitting_data(
            exam, parameters, learners, seed=size + 1
        )

    timings = {}
    for size, data in datasets.items():
        start = time.perf_counter()
        result = analyze_cohort(data.responses, data.specs, split=GroupSplit())
        timings[size] = time.perf_counter() - start
        assert len(result.questions) == QUESTIONS

    lines = ["students   analysis time    per-student"]
    for size in SIZES:
        lines.append(
            f"{size:>8}   {timings[size] * 1000:>9.2f} ms   "
            f"{timings[size] / size * 1e6:>8.1f} us"
        )
    ratio = (timings[SIZES[-1]] / SIZES[-1]) / (timings[SIZES[0]] / SIZES[0])
    lines.append(f"per-student cost ratio (800 vs 50): {ratio:.2f}x")
    show("Scaling: §4.1 analysis vs cohort size", "\n".join(lines))

    # Shape: near-linear — per-student cost grows by at most ~4x across a
    # 16x size increase (generous bound; wall-clock noise on small sizes).
    assert ratio < 4.0

    data_800 = datasets[800]

    def analyze_large():
        return analyze_cohort(
            data_800.responses, data_800.specs, split=GroupSplit()
        )

    result = benchmark(analyze_large)
    assert len(result.scores) == 800
