"""Figure 2 — the signal-representation interface for a whole test.

Regenerates the traffic-light board for the simulated classroom exam and
checks the expected pattern: engineered-healthy items green,
engineered-broken items yellow/red.
"""

from repro.core.signals import Signal, render_signal_board

from conftest import show


def test_bench_figure2_signal_board(benchmark, classroom_analysis):
    analysis = classroom_analysis
    board = render_signal_board(analysis.signals)
    show("Figure 2: signal board for the whole test", board)

    # Shape: one light per question plus the legend.
    assert board.count("Q") == 10
    assert "legend" in board

    # The engineered scenario: most items healthy (green); the flat
    # guessing item q5 must not be green.
    greens = sum(1 for signal in analysis.signals if signal is Signal.GREEN)
    assert greens >= 6
    assert analysis.question(5).signal is not Signal.GREEN

    result = benchmark(render_signal_board, analysis.signals)
    assert "legend" in result
