"""Ablation — the extreme-group split fraction.

The paper fixes 25%; Kelly (1939) calls 27% optimal and 25-33% acceptable.
Sweeps the fraction over 15%-50% on the simulated classroom and shows the
estimated discrimination D for a healthy item across the sweep: D shrinks
as the fraction grows (the extreme groups dilute toward the middle), with
the Kelly range giving near-maximal separation — the reason the paper's
choice of 25% is sound.
"""

from repro.core.grouping import ACCEPTABLE_RANGE, KELLY_OPTIMUM, GroupSplit
from repro.core.question_analysis import analyze_cohort

from conftest import show

FRACTIONS = (0.15, 0.20, 0.25, 0.27, 0.33, 0.40, 0.50)


def test_bench_ablation_split_fraction(benchmark, classroom):
    _, _, data = classroom

    results = {}
    for fraction in FRACTIONS:
        analysis = analyze_cohort(
            data.responses, data.specs, split=GroupSplit(fraction=fraction)
        )
        results[fraction] = analysis

    lines = ["fraction  group  D(q1)   D(q7)   mean D"]
    for fraction, analysis in results.items():
        ds = [question.discrimination for question in analysis.questions]
        marker = " <- paper" if fraction == 0.25 else (
            " <- Kelly optimum" if fraction == KELLY_OPTIMUM else ""
        )
        lines.append(
            f"{fraction:.2f}      {len(analysis.high_group):>4}  "
            f"{analysis.question(1).discrimination:.3f}   "
            f"{analysis.question(7).discrimination:.3f}   "
            f"{sum(ds) / len(ds):.3f}{marker}"
        )
    show("Ablation: extreme-group fraction sweep", "\n".join(lines))

    # Shape: D for the healthy q1 decreases monotonically (within noise)
    # as the fraction grows from 15% to 50%.
    d_by_fraction = [results[f].question(1).discrimination for f in FRACTIONS]
    assert d_by_fraction[0] >= d_by_fraction[-1]
    # extreme (15%) and Kelly-range fractions separate better than 50/50
    assert results[0.25].question(1).discrimination >= (
        results[0.50].question(1).discrimination
    )
    # the paper's 25% lies inside Kelly's acceptable range
    assert ACCEPTABLE_RANGE[0] <= 0.25 <= ACCEPTABLE_RANGE[1]

    def sweep():
        return [
            analyze_cohort(
                data.responses, data.specs, split=GroupSplit(fraction=f)
            )
            for f in (0.25, 0.27, 0.33)
        ]

    swept = benchmark(sweep)
    assert len(swept) == 3
