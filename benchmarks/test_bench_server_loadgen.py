"""Serving throughput — the wire cost of exam delivery at cohort scale.

``run_loadgen`` drives the full classroom scenario (200 simulated
learners x 20 items; offer, register, enroll, start, answer item by
item, submit) against an in-process :class:`ExamServer` over real
sockets with keep-alive connections.  The acceptance bar from the
serving milestone: **>= 500 requests/second sustained** with the
**answer-route p99 under 50 ms** — comfortably within reach of the
stdlib threaded server once Nagle is disabled on both ends, and a
regression tripwire for anything that puts a syscall or a lock sleep
back on the per-request path.

Results go into ``BENCH_server.json`` at the repo root.
"""

import http.client
import json
import os

from repro.server.app import ExamServer
from repro.server.loadgen import run_loadgen

from conftest import show

LEARNERS = 200
QUESTIONS = 20
WORKERS = 8

#: the acceptance bars (see docs/server.md)
MIN_THROUGHPUT_RPS = 500.0
MAX_ANSWER_P99_MS = 50.0

ARTIFACT = os.path.join(os.path.dirname(__file__), "..", "BENCH_server.json")


def test_bench_server_loadgen(benchmark):
    with ExamServer(max_in_flight=64) as server:
        report = run_loadgen(
            server.url,
            learners=LEARNERS,
            questions=QUESTIONS,
            seed=7,
            workers=WORKERS,
        )
        in_flight_after = server.in_flight.current()

        # time one keep-alive round trip for the per-request floor
        connection = http.client.HTTPConnection(
            server.host, server.port, timeout=10
        )

        def round_trip():
            connection.request("GET", "/healthz")
            response = connection.getresponse()
            response.read()

        try:
            benchmark(round_trip)
        finally:
            connection.close()

    answer = report.routes["answer"]
    payload = {
        "workload": (
            f"{LEARNERS} x {QUESTIONS} full sittings over HTTP, "
            f"{WORKERS} workers"
        ),
        **report.to_dict(),
    }
    with open(ARTIFACT, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    show(
        f"Server load ({LEARNERS} x {QUESTIONS}, {WORKERS} workers)",
        report.render(),
    )

    # sanity: the run actually happened, cleanly
    assert report.errors == 0
    assert report.routes["submit"].count == LEARNERS
    assert answer.count == LEARNERS * QUESTIONS
    assert in_flight_after == 0  # the server drained

    # the acceptance bars
    assert report.throughput_rps >= MIN_THROUGHPUT_RPS, (
        f"{report.throughput_rps:.0f} req/s sustained, "
        f"need >= {MIN_THROUGHPUT_RPS:.0f}"
    )
    assert answer.p99_ms < MAX_ANSWER_P99_MS, (
        f"answer p99 {answer.p99_ms:.2f} ms, need < {MAX_ANSWER_P99_MS} ms"
    )
