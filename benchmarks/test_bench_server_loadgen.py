"""Serving throughput — the wire cost of exam delivery at cohort scale.

``run_loadgen`` drives the full classroom scenario (200 simulated
learners x 20 items; offer, register, enroll, start, answer item by
item, submit) against an in-process :class:`ExamServer` over real
sockets with keep-alive connections.  The acceptance bar from the
serving milestone: **>= 500 requests/second sustained** with the
**answer-route p99 under 50 ms** — comfortably within reach of the
stdlib threaded server once Nagle is disabled on both ends, and a
regression tripwire for anything that puts a syscall or a lock sleep
back on the per-request path.

Results go into ``BENCH_server.json`` at the repo root.
"""

import http.client
import json
import os

from repro.server.app import ExamServer
from repro.server.loadgen import run_loadgen

from conftest import show

LEARNERS = 200
QUESTIONS = 20
WORKERS = 8
BATCH_K = 10

#: the acceptance bars (see docs/server.md)
MIN_THROUGHPUT_RPS = 500.0
MAX_ANSWER_P99_MS = 50.0
#: batch-milestone bar: effective wire cost per answer at K=10; the
#: precise target (< 2 ms) is tracked in the artifact, CI stays loose
TARGET_BATCH_ANSWER_MS = 2.0
MAX_BATCH_ANSWER_MS = 5.0

ARTIFACT = os.path.join(os.path.dirname(__file__), "..", "BENCH_server.json")


def merge_artifact(updates):
    """Read-modify-write ``BENCH_server.json``: each bench owns its own
    keys (this one the single-process numbers, the cluster bench the
    ``sharded`` section) and must not clobber the others'."""
    payload = {}
    if os.path.exists(ARTIFACT):
        try:
            with open(ARTIFACT) as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            payload = {}
    payload.update(updates)
    with open(ARTIFACT, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def test_bench_server_loadgen(benchmark):
    with ExamServer(max_in_flight=64) as server:
        report = run_loadgen(
            server.url,
            learners=LEARNERS,
            questions=QUESTIONS,
            seed=7,
            workers=WORKERS,
        )
        in_flight_after = server.in_flight.current()

        # time one keep-alive round trip for the per-request floor
        connection = http.client.HTTPConnection(
            server.host, server.port, timeout=10
        )

        def round_trip():
            connection.request("GET", "/healthz")
            response = connection.getresponse()
            response.read()

        try:
            benchmark(round_trip)
        finally:
            connection.close()

    # -- the same cohort again, K answers per request ----------------------
    with ExamServer(max_in_flight=64) as batch_server:
        batch_report = run_loadgen(
            batch_server.url,
            learners=LEARNERS,
            questions=QUESTIONS,
            seed=7,
            workers=WORKERS,
            batch=BATCH_K,
        )
    # QUESTIONS divides by BATCH_K: every batch request carries exactly
    # K answers, so the route mean / K is the wire cost per answer
    effective_answer_ms = batch_report.routes["answer_batch"].mean_ms / BATCH_K

    answer = report.routes["answer"]
    merge_artifact(
        {
            "workload": (
                f"{LEARNERS} x {QUESTIONS} full sittings over HTTP, "
                f"{WORKERS} workers"
            ),
            **report.to_dict(),
            "batched": {
                **batch_report.to_dict(),
                "effective_ms_per_answer": round(effective_answer_ms, 4),
                "target_ms_per_answer": TARGET_BATCH_ANSWER_MS,
            },
        }
    )

    show(
        f"Server load ({LEARNERS} x {QUESTIONS}, {WORKERS} workers)",
        "\n".join(
            [
                report.render(),
                batch_report.render(),
                f"batched effective per-answer: "
                f"{effective_answer_ms:.3f} ms "
                f"(target < {TARGET_BATCH_ANSWER_MS} ms)",
            ]
        ),
    )

    # sanity: the runs actually happened, cleanly
    assert report.errors == 0
    assert report.routes["submit"].count == LEARNERS
    assert answer.count == LEARNERS * QUESTIONS
    assert in_flight_after == 0  # the server drained
    assert batch_report.errors == 0
    assert batch_report.answers_posted == LEARNERS * QUESTIONS
    # every answer travelled in a K-sized batch request
    assert batch_report.routes["answer_batch"].count == (
        LEARNERS * ((QUESTIONS + BATCH_K - 1) // BATCH_K)
    )
    # batching spends far fewer requests on the same cohort
    assert batch_report.requests < report.requests

    # the acceptance bars
    assert report.throughput_rps >= MIN_THROUGHPUT_RPS, (
        f"{report.throughput_rps:.0f} req/s sustained, "
        f"need >= {MIN_THROUGHPUT_RPS:.0f}"
    )
    assert answer.p99_ms < MAX_ANSWER_P99_MS, (
        f"answer p99 {answer.p99_ms:.2f} ms, need < {MAX_ANSWER_P99_MS} ms"
    )
    assert effective_answer_ms < MAX_BATCH_ANSWER_MS, (
        f"batched effective per-answer {effective_answer_ms:.2f} ms, "
        f"CI ceiling {MAX_BATCH_ANSWER_MS} ms "
        f"(target {TARGET_BATCH_ANSWER_MS} ms)"
    )
