"""Extension — adaptive testing (the paper's stated future work).

Compares CAT against a fixed-form test across an ability grid: at equal
test length, adaptive item selection achieves a smaller mean standard
error, and the advantage grows at extreme abilities (where a fixed form
wastes items of the wrong difficulty) — the standard result the paper's
planned "adaptive test algorithm" exists to obtain.
"""

import random

from repro.adaptive.cat import CatConfig, CatSession
from repro.adaptive.estimation import estimate_ability_eap
from repro.adaptive.irt import ItemParameters, probability_correct
from repro.sim.population import ability_grid

from conftest import show

TEST_LENGTH = 12
REPLICATES = 6


def make_pool(size=60, seed=17):
    rng = random.Random(seed)
    return {
        f"item-{index:03d}": ItemParameters(
            a=rng.uniform(0.9, 2.0), b=rng.uniform(-3.0, 3.0)
        )
        for index in range(size)
    }


def oracle(theta, pool, seed):
    rng = random.Random(seed)

    def answer(item_id):
        return rng.random() < probability_correct(theta, pool[item_id])

    return answer


def run_comparison(pool, thetas):
    fixed_ids = sorted(pool)[:TEST_LENGTH]
    fixed_params = [pool[item_id] for item_id in fixed_ids]
    rows = []
    for theta in thetas:
        fixed_ses, cat_ses = [], []
        for replicate in range(REPLICATES):
            seed = 1000 * replicate + int((theta + 4) * 10)
            answer = oracle(theta, pool, seed)
            responses = [answer(item_id) for item_id in fixed_ids]
            _, fixed_se = estimate_ability_eap(responses, fixed_params)
            fixed_ses.append(fixed_se)
            session = CatSession(
                pool=dict(pool),
                config=CatConfig(
                    max_items=TEST_LENGTH,
                    min_items=TEST_LENGTH,
                    se_target=0.01,
                ),
            )
            _, cat_se = session.run(oracle(theta, pool, seed))
            cat_ses.append(cat_se)
        rows.append(
            (
                theta,
                sum(fixed_ses) / REPLICATES,
                sum(cat_ses) / REPLICATES,
            )
        )
    return rows


def test_bench_adaptive_testing(benchmark):
    pool = make_pool()
    thetas = ability_grid(-2.5, 2.5, 5)
    rows = run_comparison(pool, thetas)

    lines = ["ability   SE(fixed)  SE(CAT)   CAT advantage"]
    for theta, fixed_se, cat_se in rows:
        advantage = (1 - cat_se / fixed_se) * 100
        lines.append(
            f"{theta:+.2f}     {fixed_se:.3f}      {cat_se:.3f}     "
            f"{advantage:+.0f}%"
        )
    mean_fixed = sum(row[1] for row in rows) / len(rows)
    mean_cat = sum(row[2] for row in rows) / len(rows)
    lines.append(f"mean      {mean_fixed:.3f}      {mean_cat:.3f}")
    show("Extension: CAT vs fixed form at equal length", "\n".join(lines))

    # Shape: CAT wins on average, and wins at every extreme ability.
    assert mean_cat < mean_fixed
    assert rows[0][2] < rows[0][1]  # theta = -2.5
    assert rows[-1][2] < rows[-1][1]  # theta = +2.5

    def one_cat_session():
        session = CatSession(
            pool=dict(pool),
            config=CatConfig(max_items=TEST_LENGTH, min_items=TEST_LENGTH,
                             se_target=0.01),
        )
        return session.run(oracle(1.0, pool, seed=99))

    ability, se = benchmark(one_cat_session)
    assert se < 1.0
