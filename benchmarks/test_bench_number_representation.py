"""§4.1.1 — the number representation table (No / PH / PL / D / P).

Regenerates the five-step procedure's output for the simulated classroom
and checks the identities the paper defines: D = PH − PL,
P = (PH + PL)/2, and the Kelly-split group sizes.
"""

import pytest

from repro.core.question_analysis import (
    number_representation_rows,
    render_number_representation,
)

from conftest import show


def test_bench_number_representation(benchmark, classroom_analysis):
    analysis = classroom_analysis
    show(
        "§4.1.1 number representation",
        render_number_representation(analysis.questions),
    )

    rows = number_representation_rows(analysis.questions)
    assert len(rows) == 10
    for number, p_high, p_low, d, p in rows:
        assert d == pytest.approx(p_high - p_low)
        assert p == pytest.approx((p_high + p_low) / 2)
        assert 0.0 <= p_high <= 1.0
        assert 0.0 <= p_low <= 1.0

    # Step 2 of the procedure: the 25% extreme groups.
    assert len(analysis.high_group) == len(analysis.low_group) == 50

    # Healthy engineered items (q1, q7) discriminate strongly.
    assert analysis.question(1).discrimination > 0.3
    assert analysis.question(7).discrimination > 0.3

    result = benchmark(number_representation_rows, analysis.questions)
    assert len(result) == 10
