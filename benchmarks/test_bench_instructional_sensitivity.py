"""§3.4 — the Instructional Sensitivity Index.

"With the comparison between the test result before teaching and the test
result after teaching to analysis Instructional Sensitivity Index."
Simulates the same class before and after instruction (+1.2 logits of
ability) and regenerates the per-item ISI: teaching must raise P on every
teachable item, so ISI > 0 for the bulk of the exam.
"""

from repro.core.indices import instructional_sensitivity_index
from repro.baselines.classical import whole_group_difficulty
from repro.sim.workloads import (
    classroom_exam,
    classroom_parameters,
    pre_post_cohorts,
)

from conftest import show


def per_item_p(data):
    flags_per_item = [[] for _ in data.specs]
    for response in data.responses:
        for index, (selection, spec) in enumerate(
            zip(response.selections, data.specs)
        ):
            flags_per_item[index].append(selection == spec.correct)
    return [whole_group_difficulty(flags) for flags in flags_per_item]


def test_bench_instructional_sensitivity(benchmark):
    exam = classroom_exam()
    parameters = classroom_parameters()
    pre, post = pre_post_cohorts(exam, parameters, size=120, seed=31)

    p_pre = per_item_p(pre)
    p_post = per_item_p(post)
    isi = [
        instructional_sensitivity_index(before, after)
        for before, after in zip(p_pre, p_post)
    ]
    lines = [
        f"q{index + 1:02d}: P_pre={before:.2f} P_post={after:.2f} "
        f"ISI={value:+.2f}"
        for index, (before, after, value) in enumerate(zip(p_pre, p_post, isi))
    ]
    show("§3.4 Instructional Sensitivity Index (pre vs post teaching)", "\n".join(lines))

    # Shape: most items are instruction-sensitive (ISI > 0); the overall
    # mean gain is clearly positive; the flat guessing items (q3, q5 —
    # IRT b ≈ 4+) gain the least.
    positive = sum(1 for value in isi if value > 0)
    assert positive >= 8
    mean_isi = sum(isi) / len(isi)
    assert mean_isi > 0.1
    teachable_mean = sum(
        value for index, value in enumerate(isi) if index not in (2, 4)
    ) / 8
    flat_mean = (isi[2] + isi[4]) / 2
    assert flat_mean < teachable_mean

    def compute():
        return [
            instructional_sensitivity_index(before, after)
            for before, after in zip(p_pre, p_post)
        ]

    result = benchmark(compute)
    assert len(result) == 10
