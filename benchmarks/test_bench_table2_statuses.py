"""Table 2 — the status × rule matrix.

Regenerates the paper's Table 2 (which statuses each rule can assert) and
verifies it against the rule engine's behaviour on matrices constructed
to fire each rule in isolation, then times the advice engine.
"""

from repro.core.advice import advise
from repro.core.rules import (
    STATUSES_BY_RULE,
    OptionMatrix,
    Status,
    evaluate_rules,
)
from repro.core.signals import Signal

from conftest import show

ALL_STATUSES = list(Status)


def test_bench_table2_statuses(benchmark):
    # Regenerate Table 2 from the rule engine's declaration.
    header = ["      "] + [status.name[:12].ljust(13) for status in ALL_STATUSES]
    lines = ["".join(header)]
    for rule in (1, 2, 3, 4):
        cells = [
            ("V" if status in STATUSES_BY_RULE[rule] else "X").ljust(13)
            for status in ALL_STATUSES
        ]
        lines.append(f"Rule {rule} " + "".join(cells))
    show("Table 2: every status in four rules", "\n".join(lines))

    # The paper's exact Table 2 cells.
    assert STATUSES_BY_RULE[1] == (Status.LOW_ALLURE,)
    assert set(STATUSES_BY_RULE[2]) == {
        Status.OPTION_NOT_CLEAR,
        Status.CARELESS,
        Status.NOT_ONLY_ONE_ANSWER,
    }
    assert STATUSES_BY_RULE[3] == (Status.LOW_GROUP_LACKS_CONCEPT,)
    assert set(STATUSES_BY_RULE[4]) == {
        Status.LOW_GROUP_LACKS_CONCEPT,
        Status.HIGH_GROUP_LACKS_CONCEPT,
    }

    # Behavioural check: matrices that isolate each rule assert exactly
    # those statuses.
    rule1_only = evaluate_rules(
        OptionMatrix.from_rows([15, 0, 3, 2], [9, 0, 6, 5], correct="A")
    )
    assert rule1_only.fired_rules == (1,)
    assert set(rule1_only.statuses) == set(STATUSES_BY_RULE[1])

    rule2_only = evaluate_rules(
        OptionMatrix.from_rows([8, 11, 1, 0], [12, 2, 4, 2], correct="A")
    )
    assert 2 in rule2_only.fired_rules and 1 not in rule2_only.fired_rules

    # Advice engine: every status maps to a concrete action.
    matrix = OptionMatrix.from_rows([4, 4, 4, 2, 6], [5, 4, 5, 4, 2], correct="A")
    outcome = evaluate_rules(matrix)
    advice = advise(Signal.RED, outcome.matches)
    assert len(advice.actions) == len(set(outcome.statuses))

    def advise_all():
        result = evaluate_rules(matrix)
        return advise(Signal.RED, result.matches)

    produced = benchmark(advise_all)
    assert produced.actions
