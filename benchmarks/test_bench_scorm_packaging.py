"""§5.5 — SCORM format output: package build/parse throughput.

The paper's output service packages "the original problem and exam files
to SCORM compatible files".  The bench regenerates packages for exams of
growing size, validates every manifest invariant, and times the
build → validate → extract round trip at the 50-item size.
"""

from repro.scorm.package import ContentPackage, extract_exam, package_exam
from repro.sim.workloads import classroom_exam

from conftest import show


def test_bench_scorm_packaging(benchmark):
    sizes = (5, 10, 25, 50)
    lines = []
    for size in sizes:
        exam = classroom_exam(question_count=size)
        payload = package_exam(exam)
        package = ContentPackage(payload)
        file_count = len(package.names())
        lines.append(
            f"{size:>3} items -> {len(payload):>7} bytes, "
            f"{file_count:>3} files, "
            f"{len(package.manifest.resources):>3} resources"
        )
        # §5.5 invariants: manifest + per-item QTI + per-item metadata +
        # API script, all referenced files present (ContentPackage checks).
        assert f"items/q{size:02d}.xml" in package.names()
        assert f"items/q{size:02d}.metadata.xml" in package.names()
        assert "APIWrapper.js" in package.names()
        restored = extract_exam(package)
        assert len(restored.items) == size
    show("§5.5 package output scaling", "\n".join(lines))

    exam_50 = classroom_exam(question_count=50)

    def round_trip():
        payload = package_exam(exam_50)
        package = ContentPackage(payload)
        return extract_exam(package)

    restored = benchmark(round_trip)
    assert restored.exam_id == exam_50.exam_id
